"""Entry point: ``PYTHONPATH=src python -m benchmarks.perf [args]``.

Delegates to the ``repro perf`` CLI subcommand, defaulting ``--out`` to
``BENCH_kernel.json`` at the repository root so repeated runs overwrite
the canonical artifact.
"""

import pathlib
import sys

from repro.cli import main

REPO_ROOT = pathlib.Path(__file__).resolve().parents[2]

if __name__ == "__main__":
    argv = list(sys.argv[1:])
    if not any(arg == "--out" or arg.startswith("--out=") for arg in argv):
        argv += ["--out", str(REPO_ROOT / "BENCH_kernel.json")]
    sys.exit(main(["perf", *argv]))
