"""Wall-clock kernel benchmark for the simulator itself.

Unlike the sibling ``bench_*`` modules — which regenerate the *paper's*
tables and figures — this package measures how fast the simulator runs
on the host: events/sec and wall seconds over the Figure 7 workload set,
by default all eleven applications at 32 processors.

Run it (writes ``BENCH_kernel.json`` at the repo root):

    PYTHONPATH=src python -m benchmarks.perf
    PYTHONPATH=src python -m benchmarks.perf --quick   # CI smoke, seconds

Equivalently: ``python -m repro perf --out BENCH_kernel.json``.  The
implementation lives in :mod:`repro.analysis.perf`; this package only
pins the canonical output location and default configuration.
"""
