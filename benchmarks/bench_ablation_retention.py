"""Ablation A4 — TID retention (starvation avoidance).

Section 3.3: "a starved transaction keeps its TID at violation time,
thus over time it will become the lowest in the system" — directories
then wait for it and nothing can violate it, guaranteeing forward
progress at a performance cost.  This ablation pits one long reader
against a storm of small writers at several retention thresholds.
"""

from repro import ScalableTCCSystem, SystemConfig
from repro.analysis import format_table
from repro.workloads import StarvationWorkload

N = 8
THRESHOLDS = (2, 4, 8)


def _run(threshold: int):
    workload = StarvationWorkload(writer_txs=24, long_compute=3000)
    system = ScalableTCCSystem(
        SystemConfig(n_processors=N, retention_threshold=threshold)
    )
    return system.run(workload, max_cycles=2_000_000_000)


def _collect():
    return {t: _run(t) for t in THRESHOLDS}


def test_bench_ablation_retention(benchmark, save_artifact):
    results = benchmark.pedantic(_collect, rounds=1, iterations=1)

    rows = []
    for threshold, result in results.items():
        long_reader = result.proc_stats[0]
        rows.append([
            str(threshold),
            f"{result.cycles:,}",
            str(long_reader.violations),
            str(sum(s.tid_retentions for s in result.proc_stats)),
            str(result.total_violations),
        ])
    save_artifact(
        "ablation_retention",
        f"Ablation A4 — TID retention threshold @ {N} CPUs "
        f"(1 long reader vs 7 writer storms)\n"
        + format_table(
            ["threshold", "cycles", "long-reader violations",
             "retentions", "total violations"],
            rows,
        ),
    )

    expected_commits = 1 + (N - 1) * 24
    for threshold, result in results.items():
        # Forward progress under every threshold: everything commits and
        # the long transaction finishes exactly once.
        assert result.committed_transactions == expected_commits, threshold
        assert result.proc_stats[0].committed_transactions == 1

    # A patient threshold lets the long reader be violated at least as
    # often before retention rescues it.
    assert (
        results[8].proc_stats[0].violations
        >= results[2].proc_stats[0].violations
    )
