"""Wall-clock benchmark of the parallel runner and result cache.

Unlike the sibling ``bench_*`` modules — which regenerate the *paper's*
tables and figures — this package measures the execution harness
itself: a chaos campaign run serially vs. in parallel, a config sweep
run cold vs. warm-cache, and the serial-vs-parallel fingerprint
equality that proves parallelism never changes results.

Run it (writes ``BENCH_runner.json`` at the repo root):

    PYTHONPATH=src python -m benchmarks.runner
    PYTHONPATH=src python -m benchmarks.runner --quick   # CI smoke

The implementation lives in :mod:`repro.analysis.runner_bench`; this
package only pins the canonical output location.
"""
