"""Entry point: ``PYTHONPATH=src python -m benchmarks.runner [args]``.

Delegates to :func:`repro.analysis.runner_bench.main`, defaulting
``--out`` to ``BENCH_runner.json`` at the repository root so repeated
runs overwrite the canonical artifact.
"""

import pathlib
import sys

from repro.analysis.runner_bench import main

REPO_ROOT = pathlib.Path(__file__).resolve().parents[2]

if __name__ == "__main__":
    argv = list(sys.argv[1:])
    if not any(arg == "--out" or arg.startswith("--out=") for arg in argv):
        argv += ["--out", str(REPO_ROOT / "BENCH_runner.json")]
    sys.exit(main(argv))
