"""Ablation A6 — full vs coarse sharer bit vectors.

Table 2 specifies a *full-bit-vector* sharers list.  This ablation
quantifies the alternative: a coarse vector (one bit per group of
processors) shrinks directory state but turns every invalidation into a
group multicast.  On a read-mostly sharing workload the coarse designs
multiply invalidation traffic while correctness (and the violation
count) is unchanged — spurious invalidations never violate anyone, they
just burn bandwidth and directory commit time.
"""

import random

from repro import ScalableTCCSystem, SystemConfig, Transaction
from repro.analysis import format_table
from repro.workloads.base import Workload

N = 32
GROUPS = (1, 4, 8)


class ReadMostlySharing(Workload):
    """Everyone reads a pool of hot lines; a few writers update them."""

    def schedule(self, proc, n_procs):
        rng = random.Random(77 + proc)
        base = 1 << 27
        for i in range(8):
            line = rng.randrange(16)
            addr = base + line * 32
            if proc % 8 == 0:
                ops = [("c", 200), ("st", addr, proc * 100 + i)]
            else:
                ops = [("c", 200), ("ld", addr)]
            yield Transaction(proc * 1000 + i, ops)


def _run(group):
    system = ScalableTCCSystem(
        SystemConfig(n_processors=N, sharer_group_size=group)
    )
    result = system.run(ReadMostlySharing(), max_cycles=2_000_000_000)
    invs = sum(d.stats.invalidations_sent for d in system.directories)
    return result, invs


def _collect():
    return {group: _run(group) for group in GROUPS}


def test_bench_ablation_sharers(benchmark, save_artifact):
    results = benchmark.pedantic(_collect, rounds=1, iterations=1)

    rows = []
    for group, (result, invs) in results.items():
        label = "full bit vector" if group == 1 else f"1 bit / {group} CPUs"
        rows.append([
            label,
            f"{invs:,}",
            f"{result.traffic.bytes_by_class['commit']:,}",
            str(result.total_violations),
            f"{result.cycles:,}",
        ])
    save_artifact(
        "ablation_sharers",
        f"Ablation A6 — sharer-vector precision @ {N} CPUs "
        f"(read-mostly sharing)\n"
        + format_table(
            ["sharers encoding", "invalidations", "commit bytes",
             "violations", "cycles"],
            rows,
        ),
    )

    inv_counts = {g: invs for g, (_, invs) in results.items()}
    # Coarser vectors send strictly more invalidations...
    assert inv_counts[4] > inv_counts[1]
    assert inv_counts[8] > inv_counts[4]
    # ...without systematically causing more violations: spurious
    # invalidations hit processors with no speculative state on the
    # line.  (Timing perturbation can shift a race or two either way.)
    violations = {g: r.total_violations for g, (r, _) in results.items()}
    assert violations[8] <= violations[1] + 3
    # The extra fan-out costs real commit time.
    cycles = {g: r.cycles for g, (r, _) in results.items()}
    assert cycles[8] > cycles[1]
