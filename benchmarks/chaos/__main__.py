"""Entry point: ``PYTHONPATH=src python -m benchmarks.chaos [args]``.

Delegates to the ``repro chaos`` CLI subcommand, defaulting ``--out`` to
``CHAOS_report.json`` at the repository root so repeated campaigns
overwrite the canonical artifact.
"""

import pathlib
import sys

from repro.cli import main

REPO_ROOT = pathlib.Path(__file__).resolve().parents[2]

if __name__ == "__main__":
    argv = list(sys.argv[1:])
    if not any(arg == "--out" or arg.startswith("--out=") for arg in argv):
        argv += ["--out", str(REPO_ROOT / "CHAOS_report.json")]
    sys.exit(main(["chaos", *argv]))
