"""Chaos campaign: randomized fault injection over the hardened protocol.

Unlike the sibling ``bench_*`` modules — which regenerate the *paper's*
tables and figures — this package stress-tests the non-blocking claims:
every case runs a high-contention workload under a random
:class:`~repro.faults.plan.FaultPlan` (drops, duplicates, delays,
reorders, directory stalls, CPU pauses) and must terminate with exact
serializability, invariant, and counter checks.

Run it (writes ``CHAOS_report.json`` at the repo root):

    PYTHONPATH=src python -m benchmarks.chaos             # 200 cases
    PYTHONPATH=src python -m benchmarks.chaos --quick     # CI smoke

Equivalently: ``python -m repro chaos --out CHAOS_report.json``.  The
implementation lives in :mod:`repro.faults.chaos`; this package only
pins the canonical output location and default campaign size.
"""
