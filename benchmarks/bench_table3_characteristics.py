"""Table 3 — application transactional characteristics at 32 CPUs.

Regenerates the paper's per-application table: 90th-percentile
transaction size (instructions), write-/read-set sizes (KB), operations
per word written, directories touched per commit, directory working set
(entries), and directory occupancy per commit (cycles).

The absolute values depend on our synthetic reconstruction (the OCR
destroyed most of the paper's cells); the *constraints* asserted here
are the ones the paper states in prose: transaction sizes spanning two
hundred to forty-five thousand instructions, read sets < 25 KB and write
sets < 8 KB at the 90th percentile, ops/word highest for SPECjbb2000,
radix touching far more directories than anyone else, directory working
sets that fit a directory cache, and occupancy a fraction of transaction
execution time.
"""

from repro import APP_PROFILES, SystemConfig
from repro.analysis import format_table, run_app
from repro.stats import characteristics

N_PROCESSORS = 32
SCALE = 0.5

HEADERS = [
    "application",
    "tx size 90% (inst)",
    "wr-set 90% (KB)",
    "rd-set 90% (KB)",
    "ops/word",
    "dirs/commit 90%",
    "dir working set",
    "occupancy 90% (cy)",
]


def _collect():
    rows = {}
    config = SystemConfig(n_processors=N_PROCESSORS)
    for app in APP_PROFILES:
        result = run_app(app, config, scale=SCALE)
        rows[app] = characteristics(app, result)
    return rows


def test_bench_table3(benchmark, save_artifact):
    rows = benchmark.pedantic(_collect, rounds=1, iterations=1)
    text = format_table(HEADERS, [row.row() for row in rows.values()])
    save_artifact(
        "table3_characteristics",
        f"Table 3 — transactional characteristics @ {N_PROCESSORS} CPUs\n" + text,
    )

    sizes = {app: row.tx_size_p90 for app, row in rows.items()}
    # Paper: sizes range from two hundred to forty-five thousand insts.
    assert min(sizes.values()) < 2_000
    assert max(sizes.values()) > 30_000
    assert sizes["swim"] == max(sizes.values())

    for app, row in rows.items():
        assert row.read_set_p90_kb < 25, app    # paper: < 25 KB (fits L2)
        assert row.write_set_p90_kb < 8, app    # paper: <= 8 KB

    ops = {app: row.ops_per_word_written for app, row in rows.items()}
    # Paper: SPECjbb2000 has the highest ratio; volrend/equake the lowest.
    assert ops["specjbb2000"] == max(ops.values())
    low = sorted(ops, key=ops.get)[:3]
    assert "volrend" in low or "equake" in low

    dirs = {app: row.dirs_per_commit_p90 for app, row in rows.items()}
    # Paper: radix touches (nearly) all directories; the common case is
    # a handful.
    assert dirs["radix"] == max(dirs.values())
    assert dirs["radix"] >= N_PROCESSORS * 0.5
    assert sum(1 for v in dirs.values() if v <= 8) >= 6

    # Paper: working sets fit comfortably in a 2 MB directory cache (at
    # ~8 bytes/entry that is ~256K entries).
    for app, row in rows.items():
        assert row.working_set_p90_entries < 256_000, app

    # Paper: occupancy is typically a fraction of transaction execution
    # time (CPI = 1 makes instructions comparable to cycles).
    comfortable = sum(
        1 for row in rows.values()
        if row.occupancy_p90_cycles < row.tx_size_p90
    )
    assert comfortable >= 8
