"""Ablation A5 — directory-cache sizing.

Table 3's "directory cache working set" column supports the paper's
claim that per-directory state "fits comfortably in a 2 MB directory
cache".  This ablation drives a reuse-heavy workload (hot shared
counters, so directory entries are re-referenced constantly) with an
ideal directory cache, an adequately sized one, and a pathologically
tiny one: the adequate cache converges to the ideal (capacity misses
vanish, leaving only compulsory ones), while the tiny cache pays a
memory access per directory-state miss and measurably slows commits.
"""

import random

from repro import ScalableTCCSystem, SystemConfig, Transaction
from repro.analysis import format_table
from repro.workloads.base import Workload

N = 8
HOT_LINES = 64  # all homed at one directory (one page span)
SIZES = {"ideal": None, "adequate (1024)": 1024, "tiny (4)": 4}


class HotDirectoryWorkload(Workload):
    """Every processor read-modify-writes lines that all live on two
    pages — one directory serves the whole hot set, so *its* cache is
    the one under pressure."""

    def schedule(self, proc, n_procs):
        rng = random.Random(33 + proc)
        base = 1 << 26
        for i in range(24):
            line_index = rng.randrange(HOT_LINES)
            addr = base + line_index * 32
            word = rng.randrange(8)
            yield Transaction(
                proc * 1000 + i,
                [("c", 100), ("add", addr + word * 4, 1)],
            )


def _run(entries):
    system = ScalableTCCSystem(
        SystemConfig(n_processors=N, directory_cache_entries=entries)
    )
    result = system.run(HotDirectoryWorkload(), max_cycles=2_000_000_000)
    hits = sum(d.stats.dir_cache_hits for d in system.directories)
    misses = sum(d.stats.dir_cache_misses for d in system.directories)
    rate = hits / (hits + misses) if hits + misses else 1.0
    return result, rate


def _collect():
    return {label: _run(entries) for label, entries in SIZES.items()}


def test_bench_ablation_dircache(benchmark, save_artifact):
    results = benchmark.pedantic(_collect, rounds=1, iterations=1)

    rows = []
    for label, (result, rate) in results.items():
        rows.append([
            label,
            f"{result.cycles:,}",
            f"{rate * 100:.1f}%",
            str(result.total_violations),
        ])
    save_artifact(
        "ablation_dircache",
        f"Ablation A5 — directory cache sizing (hot counters @ {N} CPUs)\n"
        + format_table(
            ["directory cache", "cycles", "hit rate", "violations"], rows
        ),
    )

    ideal, _ = results["ideal"]
    adequate, adequate_rate = results["adequate (1024)"]
    tiny, tiny_rate = results["tiny (4)"]

    # An adequately sized cache captures the hot working set: its only
    # misses are compulsory (first touch), so the hit rate stays high
    # and the cost over an ideal cache is bounded.
    assert adequate_rate > 0.85
    assert adequate.cycles < ideal.cycles * 1.5
    # A tiny cache adds capacity misses on top: hit rate collapses and
    # the machine slows down much further.
    assert tiny_rate < 0.6
    assert tiny.cycles > adequate.cycles * 1.5
