"""Figure 8 — impact of communication latency at 64 CPUs.

The x-axis is mesh cycles-per-hop.  Paper shape: applications with many
remote misses or heavy commit activity (equake, volrend) degrade by
about 50% when the link latency grows to 8 cycles, while applications
without significant remote communication (SPECjbb2000, swim) suffer
almost no degradation.
"""

from runner_env import bench_cache, bench_jobs

from repro.analysis import format_table, run_latency_sweep

LATENCIES = (1, 3, 6, 8)
N_PROCESSORS = 64
SCALE = 1.0
APPS = ("equake", "volrend", "barnes", "specjbb2000", "swim")


def _collect():
    jobs, cache = bench_jobs(), bench_cache()
    return {
        app: run_latency_sweep(app, LATENCIES, n_processors=N_PROCESSORS,
                               scale=SCALE, jobs=jobs, cache=cache)
        for app in APPS
    }


def test_bench_fig8(benchmark, save_artifact):
    all_results = benchmark.pedantic(_collect, rounds=1, iterations=1)

    headers = ["application"] + [f"{lat} cy/hop" for lat in LATENCIES]
    rows = []
    slowdown = {}
    for app, results in all_results.items():
        base = results[LATENCIES[0]].cycles
        slowdown[app] = {lat: r.cycles / base for lat, r in results.items()}
        rows.append(
            [app] + [f"{slowdown[app][lat]:.2f}x" for lat in LATENCIES]
        )
    save_artifact(
        "fig8_latency",
        format_table(["Figure 8 — slowdown vs 1 cy/hop @ 64 CPUs"]
                     + [""] * (len(LATENCIES)), [])
        + "\n" + format_table(headers, rows),
    )

    # Latency-sensitive applications degrade substantially by 8 cy/hop...
    for app in ("equake", "volrend"):
        assert slowdown[app][8] > 1.4, (app, slowdown[app])
        # ...and the degradation grows monotonically with latency.
        assert slowdown[app][8] > slowdown[app][6] > slowdown[app][3]

    # ...while compute-local applications barely notice.
    for app in ("specjbb2000", "swim"):
        assert slowdown[app][8] < 1.10, (app, slowdown[app])

    # Relative ordering: communication-heavy apps hurt more than barnes.
    assert slowdown["equake"][8] > slowdown["barnes"][8]
