"""Table 2 — simulated architecture parameters.

Table 2 of the paper is the machine description itself; this benchmark
checks the default :class:`SystemConfig` reproduces it exactly, renders
it, and measures full-machine construction cost at 64 nodes (a sanity
benchmark for the simulator substrate, not a paper number).
"""

from repro import ScalableTCCSystem, SystemConfig


def test_table2_defaults_reproduce_paper(benchmark, save_artifact):
    config = benchmark.pedantic(
        lambda: SystemConfig(n_processors=64), rounds=1, iterations=1
    )
    assert config.l1_size == 32 * 1024
    assert config.l1_ways == 4
    assert config.l1_latency == 1
    assert config.l2_size == 512 * 1024
    assert config.l2_ways == 8
    assert config.l2_latency == 6
    assert config.line_size == 32
    assert config.memory_latency == 100
    assert config.directory_latency == 10
    assert config.link_latency == 3  # Figure 8 sweeps around this default
    assert config.first_touch
    save_artifact("table2_config", "Table 2 — simulated architecture\n"
                  + config.describe())


def test_bench_machine_construction(benchmark):
    def build():
        return ScalableTCCSystem(SystemConfig(n_processors=64))

    system = benchmark.pedantic(build, rounds=3, iterations=1)
    assert len(system.processors) == 64
    assert len(system.directories) == 64
