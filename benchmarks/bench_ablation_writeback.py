"""Ablation A2 — write-back vs write-through commit.

The paper's write-back commit "communicates addresses, but not data,
between nodes and directories" (Section 1): the commit critical path
carries Mark messages with line addresses and word flags; the data moves
lazily, as write-back-class traffic, on true sharing, eviction, or
re-speculation.  This ablation writes full cache lines and compares the
two policies' *commit-class* bytes — the traffic that sits on the commit
critical path and in the directory's serialization window.
"""

from repro import ScalableTCCSystem, SystemConfig, Transaction
from repro.analysis import format_table
from repro.workloads.base import Workload

N = 16
TX_PER_PROC = 10
LINES_PER_TX = 8
LINE_SIZE = 32
WORDS = 8


class FullLineWriter(Workload):
    """Each transaction writes every word of several private lines —
    the worst case for a write-through commit's data volume."""

    def schedule(self, proc, n_procs):
        base = (1 + proc) * (1 << 22)
        for i in range(TX_PER_PROC):
            ops = [("c", 300)]
            for j in range(LINES_PER_TX):
                line_addr = base + ((i * LINES_PER_TX + j) % 64) * LINE_SIZE
                for word in range(WORDS):
                    ops.append(("st", line_addr + word * 4, i + j + word + 1))
            yield Transaction(proc * 1_000 + i, ops)


def _run(write_through: bool):
    system = ScalableTCCSystem(
        SystemConfig(n_processors=N, write_through_commit=write_through)
    )
    return system.run(FullLineWriter(), max_cycles=2_000_000_000)


def _collect():
    return {"write-back": _run(False), "write-through": _run(True)}


def test_bench_ablation_writeback(benchmark, save_artifact):
    results = benchmark.pedantic(_collect, rounds=1, iterations=1)

    rows = []
    for policy, result in results.items():
        traffic = result.traffic.bytes_by_class
        commits = result.committed_transactions
        rows.append([
            policy,
            f"{result.cycles:,}",
            f"{traffic['commit']:,}",
            f"{traffic['commit'] / commits:,.0f}",
            f"{traffic['writeback']:,}",
        ])
    save_artifact(
        "ablation_writeback",
        f"Ablation A2 — commit data policy @ {N} CPUs "
        f"(full-line writes, {LINES_PER_TX} lines/tx)\n"
        + format_table(
            ["policy", "cycles", "commit bytes", "commit B/tx",
             "writeback bytes"],
            rows,
        ),
    )

    wb = results["write-back"].traffic.bytes_by_class
    wt = results["write-through"].traffic.bytes_by_class

    # The commit critical path: write-through ships 32 B of data per
    # line, write-back ships a 5-byte address+flags record — the paper's
    # "addresses, but not data".
    assert wt["commit"] > 3 * wb["commit"]

    # Write-back defers the data movement to the write-back class
    # (evictions, re-speculation flushes, final drain).
    assert wb["writeback"] > wt["writeback"]

    # Both policies finish the same work correctly (replay-verified) in
    # comparable time on this conflict-free workload.
    assert (
        results["write-back"].committed_transactions
        == results["write-through"].committed_transactions
    )
