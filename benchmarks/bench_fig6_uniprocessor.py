"""Figure 6 — normalized uniprocessor execution-time breakdown.

The paper's point: on one processor a TCC system is equivalent to a
conventional uniprocessor — commit overhead averages about 3% and there
are no violations, so time splits between useful work, cache misses, and
(negligible) idle.
"""

from repro import APP_PROFILES, SystemConfig
from repro.analysis import format_breakdown_figure, run_app

SCALE = 0.5


def _collect():
    config = SystemConfig(n_processors=1)
    return {app: run_app(app, config, scale=SCALE) for app in APP_PROFILES}


def test_bench_fig6(benchmark, save_artifact):
    results = benchmark.pedantic(_collect, rounds=1, iterations=1)
    series = {app: result.breakdown_fractions() for app, result in results.items()}
    save_artifact(
        "fig6_uniprocessor",
        format_breakdown_figure(
            "Figure 6 — normalized execution time @ 1 CPU", series
        ),
    )

    commit_fractions = []
    for app, result in results.items():
        breakdown = result.breakdown_fractions()
        # No other processors: nothing can violate a transaction.
        assert result.total_violations == 0, app
        assert breakdown["violation"] == 0.0, app
        # No barriers to wait on alone beyond negligible bookkeeping.
        assert breakdown["idle"] < 0.01, app
        # Per-app commit overhead stays single-digit percent.
        assert breakdown["commit"] < 0.10, app
        commit_fractions.append(breakdown["commit"])
        # The rest is useful work and cache misses.
        assert breakdown["useful"] + breakdown["miss"] > 0.88, app

    # Paper: "the only additional overhead of a TCC processor is
    # insignificant at around 3 percent on average".
    average_commit = sum(commit_fractions) / len(commit_fractions)
    assert average_commit < 0.05
