"""Ablation A1 — parallel (scalable) vs token-serialized commit.

Section 2.2's motivation, reproduced as a crossover: the original
small-scale TCC serializes all commits through a single token, which
"works well within a chip-multiprocessor where commit bandwidth is
plentiful and latencies are low" — and indeed the token baseline matches
or beats the scalable protocol at 4-16 processors, where the scalable
commit's TID/probe/mark round trips dominate.  But "the sum of all
commit times places a lower bound on execution time": by 32-64
processors the token saturates while parallel commit keeps scaling.
"""

from repro import ScalableTCCSystem, SystemConfig
from repro.analysis import format_table
from repro.workloads import PrivateWorkload

COUNTS = (4, 16, 32, 64)
TX_TOTAL = 384
LINES_PER_TX = 8
COMPUTE = 60  # small transactions: commit latency matters


def _run(backend: str, n: int):
    workload = PrivateWorkload(
        tx_per_proc=TX_TOTAL // n, lines_per_tx=LINES_PER_TX, compute=COMPUTE
    )
    system = ScalableTCCSystem(
        SystemConfig(n_processors=n, commit_backend=backend)
    )
    return system.run(workload, max_cycles=2_000_000_000)


def _collect():
    return {
        backend: {n: _run(backend, n) for n in COUNTS}
        for backend in ("scalable", "token")
    }


def test_bench_ablation_commit(benchmark, save_artifact):
    results = benchmark.pedantic(_collect, rounds=1, iterations=1)

    rows = []
    ratios = {}
    for n in COUNTS:
        scalable = results["scalable"][n]
        token = results["token"][n]
        ratios[n] = token.cycles / scalable.cycles
        rows.append([
            str(n),
            f"{scalable.cycles:,}",
            f"{token.cycles:,}",
            f"{ratios[n]:.2f}x",
        ])
    save_artifact(
        "ablation_commit",
        "Ablation A1 — scalable vs token-serialized commit "
        "(disjoint write-sets, fixed total work)\n"
        + format_table(
            ["CPUs", "scalable cycles", "token cycles", "token/scalable"],
            rows,
        ),
    )

    # Small scale: the serialized token is competitive (within 20%) —
    # the paper's statement that small-scale TCC is fine on a CMP.
    assert ratios[4] < 1.2

    # Large scale: commit serialization bites; parallel commit wins big.
    assert ratios[64] > 1.8
    assert results["scalable"][64].cycles < results["token"][64].cycles

    # The gap grows monotonically with processor count.
    assert ratios[64] > ratios[32] > ratios[16]

    # The scalable design keeps scaling 4 -> 64; the token baseline's
    # scaling flattens (its 16->64 gain is far below the ideal 4x).
    scalable_gain = results["scalable"][16].cycles / results["scalable"][64].cycles
    token_gain = results["token"][16].cycles / results["token"][64].cycles
    assert scalable_gain > token_gain * 1.5
