"""Figure 7 — scaling from 8 to 64 CPUs, normalized to 1 CPU.

The paper's headline result.  Shape targets asserted here (the OCR
garbles the exact speedup labels; the known bands are 32-CPU speedups of
roughly 11-32 and 64-CPU speedups of roughly 16-57):

* every application speeds up monotonically through 64 CPUs;
* the near-linear group (SPECjbb2000, SVM Classify, swim, barnes,
  water-spatial, tomcatv) reaches strong 64-CPU speedups;
* equake and volrend are the commit-bound laggards, with commit time a
  visibly growing fraction at high processor counts;
* Cluster GA is violation-bound;
* for the well-behaved majority, commit + violation time stays a small
  fraction of execution time even at 64 CPUs (paper: < 5%).
"""

from runner_env import bench_cache, bench_jobs

from repro import APP_PROFILES
from repro.analysis import format_breakdown_figure, run_scaling
from repro.stats import speedup

COUNTS = (1, 8, 16, 32, 64)
SCALE = 1.0


def _collect():
    jobs, cache = bench_jobs(), bench_cache()
    return {
        app: run_scaling(app, COUNTS, scale=SCALE, jobs=jobs, cache=cache)
        for app in APP_PROFILES
    }


def test_bench_fig7(benchmark, save_artifact):
    all_results = benchmark.pedantic(_collect, rounds=1, iterations=1)

    series = {}
    speedups = {}
    for app, results in all_results.items():
        for n in COUNTS[1:]:
            label = f"{app}@{n}"
            series[label] = results[n].breakdown_fractions()
            speedups[label] = speedup(results[1], results[n])
    save_artifact(
        "fig7_scaling",
        format_breakdown_figure(
            "Figure 7 — execution time vs CPU count (normalized to 1 CPU)",
            series,
            speedups,
        ),
    )

    s64 = {app: speedup(r[1], r[64]) for app, r in all_results.items()}
    s32 = {app: speedup(r[1], r[32]) for app, r in all_results.items()}

    # Monotone scaling for every application.
    for app, results in all_results.items():
        previous = 0.0
        for n in COUNTS[1:]:
            current = speedup(results[1], results[n])
            assert current > previous * 0.95, (app, n)  # allow tiny noise
            previous = current

    # The strong scalers reach high 64-CPU speedups.
    for app in ("specjbb2000", "svm_classify", "swim", "barnes",
                "water_spatial", "tomcatv"):
        assert s64[app] > 25, (app, s64[app])
        assert s32[app] > 15, (app, s32[app])

    # Everyone achieves a meaningful speedup at 64 CPUs.
    assert min(s64.values()) > 10

    # equake and volrend: smallest transactions, commit-bound at scale.
    laggards = sorted(s64, key=s64.get)[:4]
    assert "equake" in laggards
    assert "volrend" in laggards
    for app in ("equake", "volrend"):
        commit64 = all_results[app][64].breakdown_fractions()["commit"]
        commit8 = all_results[app][8].breakdown_fractions()["commit"]
        assert commit64 > commit8  # commit share grows with CPUs
        assert commit64 > 0.10

    # Cluster GA is the violation-bound application.
    viol = {
        app: r[64].breakdown_fractions()["violation"]
        for app, r in all_results.items()
    }
    assert max(viol, key=viol.get) == "cluster_ga"

    # Paper: commit + violation < ~5% for the well-behaved majority.
    quiet = 0
    for app, results in all_results.items():
        breakdown = results[64].breakdown_fractions()
        if breakdown["commit"] + breakdown["violation"] < 0.08:
            quiet += 1
    assert quiet >= 7

    # water-spatial scales better than water-nsquared (less sharing).
    assert s64["water_spatial"] > s64["water_nsquared"]
