"""Figure 9 — remote traffic in bytes per instruction at 64 CPUs.

The paper reports total traffic between 0.01 and 0.6 bytes/instruction
across the suite, and argues that large transactions with a high
ops-per-word-written ratio yield low overhead.  With 64 processors at
1 GHz this lands within commodity cluster interconnect bandwidth
(their Infiniband argument).
"""

from runner_env import bench_cache, bench_jobs

from repro import APP_PROFILES, SystemConfig
from repro.analysis import format_traffic_figure, run_apps

N_PROCESSORS = 64
SCALE = 1.0


def _collect():
    config = SystemConfig(n_processors=N_PROCESSORS)
    return run_apps(APP_PROFILES, config, scale=SCALE,
                    jobs=bench_jobs(), cache=bench_cache())


def test_bench_fig9(benchmark, save_artifact):
    results = benchmark.pedantic(_collect, rounds=1, iterations=1)
    series = {app: r.bytes_per_instruction() for app, r in results.items()}
    save_artifact(
        "fig9_traffic",
        format_traffic_figure(
            f"Figure 9 — remote traffic (bytes/instruction) @ {N_PROCESSORS} CPUs",
            series,
        ),
    )

    totals = {app: sum(bpi.values()) for app, bpi in series.items()}

    # Paper band: ~0.01 to ~0.6 bytes per instruction.  Our synthetic
    # equake/volrend miss remotely more often than the real binaries, so
    # the ceiling here is looser (documented in EXPERIMENTS.md); the
    # ordering and the >10x spread are the reproduced shape.
    assert min(totals.values()) > 0.003
    assert max(totals.values()) < 3.0
    assert max(totals.values()) / min(totals.values()) > 10

    # High ops/word applications produce the least traffic.
    ranked = sorted(totals, key=totals.get)
    assert {"specjbb2000", "swim", "svm_classify"} & set(ranked[:4])
    # Communication-heavy small-transaction apps produce the most.
    assert {"equake", "volrend"} & set(ranked[-4:])

    # Write-back protocol: commit traffic is addresses, not data, so the
    # commit class must not dominate data classes for data-heavy apps.
    swim = series["swim"]
    assert swim["commit"] < swim["miss"] + swim["writeback"]

    # At 64 CPUs x 1 GHz, per-node bandwidth stays within a commodity
    # cluster interconnect budget (paper: 2.5 MB/s to 60 MB/s per
    # directory... the aggregate stays below ~1 GB/s per node).
    for app, result in results.items():
        cycles = result.cycles
        bytes_per_cycle = result.traffic_peak_node_bytes / max(1, cycles)
        assert bytes_per_cycle < 16, (app, bytes_per_cycle)
