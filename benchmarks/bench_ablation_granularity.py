"""Ablation A3 — word- vs line-granularity conflict detection.

Figure 1b's per-word SM/SR/valid bits exist to avoid false violations
when unrelated data shares a cache line.  This ablation runs a
false-sharing workload (every processor read-modify-writes its own word
of the same lines) under both granularities: word tracking commits
conflict-free, line tracking thrashes with violations.
"""

from repro import ScalableTCCSystem, SystemConfig
from repro.analysis import format_table
from repro.workloads import FalseSharingWorkload

N = 8
TX_PER_PROC = 10


def _run(granularity: str):
    workload = FalseSharingWorkload(n_lines=2, tx_per_proc=TX_PER_PROC)
    system = ScalableTCCSystem(
        SystemConfig(n_processors=N, granularity=granularity,
                     ordered_network=True)
    )
    return system.run(workload, max_cycles=2_000_000_000)


def _collect():
    return {"word": _run("word"), "line": _run("line")}


def test_bench_ablation_granularity(benchmark, save_artifact):
    results = benchmark.pedantic(_collect, rounds=1, iterations=1)

    rows = [
        [
            granularity,
            f"{result.cycles:,}",
            str(result.total_violations),
            str(result.committed_transactions),
        ]
        for granularity, result in results.items()
    ]
    save_artifact(
        "ablation_granularity",
        f"Ablation A3 — speculative-state granularity @ {N} CPUs "
        f"(write false sharing)\n"
        + format_table(
            ["granularity", "cycles", "violations", "commits"], rows
        ),
    )

    word, line = results["word"], results["line"]
    # All work commits either way (livelock-free), ...
    assert word.committed_transactions == line.committed_transactions == N * TX_PER_PROC
    # ...but word granularity sees no false violations at all,
    assert word.total_violations == 0
    # ...while line granularity pays for every false conflict,
    assert line.total_violations > N
    # ...which costs real time.
    assert line.cycles > word.cycles
