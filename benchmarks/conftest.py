"""Shared helpers for the benchmark harness.

Every benchmark regenerates one of the paper's tables or figures.  The
rendered artefact is printed and also written to ``benchmarks/out/`` so
EXPERIMENTS.md can reference the exact rows a run produced.
"""

import pathlib

import pytest

OUT_DIR = pathlib.Path(__file__).parent / "out"


@pytest.fixture(scope="session")
def artifact_dir():
    OUT_DIR.mkdir(exist_ok=True)
    return OUT_DIR


@pytest.fixture
def save_artifact(artifact_dir):
    def save(name: str, text: str) -> None:
        path = artifact_dir / f"{name}.txt"
        path.write_text(text + "\n")
        print()
        print(text)

    return save
