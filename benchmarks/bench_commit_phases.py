"""Commit-phase breakdown — the paper's "not shown" figure.

Section 4.2, on volrend: "A breakdown of this commit time (not shown)
indicates that the majority of the time is spent probing directories
that are in a processor's Sharing Vector."  Our commit engine records
the three phases (TID acquisition, probe+mark until validated,
commit-to-ack), so we can actually show that breakdown — and assert the
paper's characterization of the commit-bound applications.
"""

from repro import SystemConfig
from repro.analysis import format_table, run_app

N = 32
SCALE = 0.5
APPS = ("volrend", "equake", "barnes", "swim", "water_nsquared")


def _collect():
    results = {}
    config = SystemConfig(n_processors=N)
    for app in APPS:
        results[app] = run_app(app, config, scale=SCALE)
    return results


def test_bench_commit_phases(benchmark, save_artifact):
    results = benchmark.pedantic(_collect, rounds=1, iterations=1)

    rows = []
    fractions = {}
    for app, result in results.items():
        tid = sum(s.commit_tid_cycles for s in result.proc_stats)
        probe = sum(s.commit_probe_cycles for s in result.proc_stats)
        ack = sum(s.commit_ack_cycles for s in result.proc_stats)
        total = max(1, tid + probe + ack)
        fractions[app] = {"tid": tid / total, "probe": probe / total,
                          "ack": ack / total}
        rows.append([
            app,
            f"{tid:,}",
            f"{probe:,}",
            f"{ack:,}",
            f"{probe / total * 100:.0f}%",
        ])
    save_artifact(
        "commit_phases",
        f"Commit-phase breakdown @ {N} CPUs (cycles; cf. Section 4.2 on "
        f"volrend)\n"
        + format_table(
            ["application", "TID acq", "probe+mark", "commit+acks",
             "probe share"],
            rows,
        ),
    )

    # The paper's claim: volrend's commit time is probe-dominated.
    assert fractions["volrend"]["probe"] > 0.5
    assert fractions["volrend"]["probe"] > fractions["volrend"]["tid"]
    assert fractions["volrend"]["probe"] > fractions["volrend"]["ack"]
    # equake, the other commit-bound app, behaves the same way.
    assert fractions["equake"]["probe"] > 0.4
