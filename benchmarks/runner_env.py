"""Runner knobs for the benchmark harness, read from the environment.

The figure drivers fan their independent runs out over the
:mod:`repro.runner` process pool and memoize results in the
content-addressed cache, so a warm re-run of an unchanged benchmark
suite is near-instant:

    REPRO_JOBS=4 pytest benchmarks/ --benchmark-only   # 4 workers
    REPRO_JOBS=1 REPRO_CACHE=0 pytest benchmarks/      # serial, no cache

``REPRO_JOBS`` defaults to all cores; ``REPRO_CACHE=0`` disables the
cache (default root ``.repro_cache/``, override with
``REPRO_CACHE_DIR``).  Results are bit-identical at any setting.
"""

import os


def bench_jobs() -> int:
    value = int(os.environ.get("REPRO_JOBS", "0"))
    return value if value > 0 else (os.cpu_count() or 1)


def bench_cache() -> bool:
    return os.environ.get("REPRO_CACHE", "1") != "0"
