"""Derived metrics over simulation results."""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Sequence

from repro.core.system import SimulationResult


def percentile(samples: Sequence[float], pct: float) -> float:
    """The ``pct``-th percentile (0..100) by linear interpolation.

    Table 3 reports 90th percentiles; an empty sample list yields 0.
    """
    if not samples:
        return 0.0
    if not 0 <= pct <= 100:
        raise ValueError(f"percentile must be in [0, 100], got {pct}")
    ordered = sorted(samples)
    if len(ordered) == 1:
        return float(ordered[0])
    rank = (pct / 100) * (len(ordered) - 1)
    low = math.floor(rank)
    high = math.ceil(rank)
    if low == high:
        return float(ordered[low])
    frac = rank - low
    return ordered[low] * (1 - frac) + ordered[high] * frac


def speedup(baseline: SimulationResult, parallel: SimulationResult) -> float:
    """Execution-time speedup of ``parallel`` over ``baseline``.

    The workloads must do the same total work (fixed-size scaling, as in
    Figure 7 where everything is normalized to the 1-CPU run).
    """
    if parallel.cycles == 0:
        return float("inf")
    return baseline.cycles / parallel.cycles


@dataclass
class AppCharacteristics:
    """One row of Table 3."""

    name: str
    n_processors: int
    tx_size_p90: float          # instructions, 90th percentile
    write_set_p90_kb: float     # KB, 90th percentile
    read_set_p90_kb: float      # KB, 90th percentile
    ops_per_word_written: float
    dirs_per_commit_p90: float
    working_set_p90_entries: float
    occupancy_p90_cycles: float

    def row(self) -> List[str]:
        return [
            self.name,
            f"{self.tx_size_p90:,.0f}",
            f"{self.write_set_p90_kb:.2f}",
            f"{self.read_set_p90_kb:.2f}",
            f"{self.ops_per_word_written:.0f}",
            f"{self.dirs_per_commit_p90:.0f}",
            f"{self.working_set_p90_entries:,.0f}",
            f"{self.occupancy_p90_cycles:,.0f}",
        ]


def characteristics(name: str, result: SimulationResult) -> AppCharacteristics:
    """Extract the Table 3 row for one application run."""
    tx_sizes: List[int] = []
    write_sets: List[int] = []
    read_sets: List[int] = []
    dirs: List[int] = []
    total_instructions = 0
    total_words_written = 0
    for stats in result.proc_stats:
        tx_sizes.extend(stats.tx_instructions)
        write_sets.extend(stats.write_set_bytes)
        read_sets.extend(stats.read_set_bytes)
        dirs.extend(stats.dirs_touched)
        total_instructions += stats.committed_instructions
        total_words_written += sum(stats.write_set_bytes) // 4
    occupancy: List[int] = []
    for dstats in result.directory_stats:
        occupancy.extend(dstats.occupancy_samples)
    return AppCharacteristics(
        name=name,
        n_processors=result.config.n_processors,
        tx_size_p90=percentile(tx_sizes, 90),
        write_set_p90_kb=percentile(write_sets, 90) / 1024,
        read_set_p90_kb=percentile(read_sets, 90) / 1024,
        ops_per_word_written=(
            total_instructions / total_words_written if total_words_written else 0.0
        ),
        dirs_per_commit_p90=percentile(dirs, 90),
        working_set_p90_entries=percentile(result.directory_working_sets, 90),
        occupancy_p90_cycles=percentile(occupancy, 90),
    )
