"""Statistics: aggregation and the paper's derived metrics.

Turns raw :class:`~repro.core.system.SimulationResult` objects into the
quantities the paper reports: execution-time breakdowns (Figures 6/7),
speedups, Table 3 transaction characteristics (90th-percentile sizes,
directories touched, directory occupancy, working sets), and Figure 9
bytes-per-instruction traffic.
"""

from repro.stats.summary import (
    AppCharacteristics,
    characteristics,
    percentile,
    speedup,
)

__all__ = ["AppCharacteristics", "characteristics", "percentile", "speedup"]
