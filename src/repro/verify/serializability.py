"""Serial-replay serializability checking.

The protocol's claim (OCC condition 3, Section 2.1) is that committed
transactions are serializable **in TID order**.  We verify it directly:

1. During simulation every processor logs, for each *committing* attempt,
   the sequence of values its loads observed (:class:`CommitRecord`).
2. After the run, the checker replays every committed transaction's ops,
   in ascending TID order, against a fresh memory image.
3. The replay recomputes each load from the replay memory and compares it
   with what the real (concurrent, speculative, message-racing) machine
   observed.  Any divergence — a stale read, a lost write, a partial
   commit — surfaces as a :class:`ReplayMismatch`.
4. Finally the machine's drained memory image must equal the replay's.

Because workload transactions include data-dependent read-modify-writes
(``add`` ops), this is a strong end-to-end check: classic bugs like
lost updates or write skew change the observed read values or the final
memory image and are caught.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

from repro.memory.address import AddressMap
from repro.workloads.base import Transaction


@dataclass
class CommitRecord:
    """What one committed transaction did and saw (final attempt only)."""

    tid: int
    tx: Transaction
    proc: int
    reads: List[Tuple[int, int, int]]  # (line, word, value) in op order
    commit_time: int = 0


class ReplayMismatch(AssertionError):
    """The concurrent execution diverged from the serial replay."""


class _ReplayMemory:
    """Flat word store keyed by (line, word); zeros when untouched."""

    def __init__(self) -> None:
        self.words: Dict[Tuple[int, int], int] = {}

    def read(self, line: int, word: int) -> int:
        return self.words.get((line, word), 0)

    def write(self, line: int, word: int, value: int) -> None:
        self.words[(line, word)] = value


class SerializabilityChecker:
    """Replays a commit log and compares against observed behaviour."""

    def __init__(self, amap: AddressMap) -> None:
        self.amap = amap

    def replay(self, log: Sequence[CommitRecord]) -> _ReplayMemory:
        """Replay commits in TID order, checking every observed read.

        Returns the replay memory for final-state comparison.
        """
        memory = _ReplayMemory()
        ordered = sorted(log, key=lambda record: record.tid)
        tids = [record.tid for record in ordered]
        if len(set(tids)) != len(tids):
            raise ReplayMismatch(f"duplicate TIDs in commit log: {tids}")
        for record in ordered:
            self._replay_one(memory, record)
        return memory

    def _replay_one(self, memory: _ReplayMemory, record: CommitRecord) -> None:
        reads = iter(record.reads)
        amap = self.amap
        for op in record.tx.ops:
            kind = op[0]
            if kind == "c":
                continue
            line, word = amap.line_of(op[1]), amap.word_of(op[1])
            if kind == "ld":
                self._check_read(memory, record, reads, line, word)
            elif kind == "st":
                memory.write(line, word, op[2])
            elif kind == "add":
                value = self._check_read(memory, record, reads, line, word)
                memory.write(line, word, value + op[2])

    def _check_read(self, memory, record, reads, line, word) -> int:
        expected = memory.read(line, word)
        try:
            obs_line, obs_word, observed = next(reads)
        except StopIteration:
            raise ReplayMismatch(
                f"tx {record.tx.tx_id} (tid {record.tid}): "
                f"fewer recorded reads than replay expects"
            ) from None
        if (obs_line, obs_word) != (line, word):
            raise ReplayMismatch(
                f"tx {record.tx.tx_id} (tid {record.tid}): read of "
                f"({line},{word}) but recorded ({obs_line},{obs_word})"
            )
        if observed != expected:
            raise ReplayMismatch(
                f"tx {record.tx.tx_id} (tid {record.tid}) on P{record.proc}: "
                f"read line {line} word {word} observed {observed}, "
                f"serial replay expects {expected}"
            )
        return expected

    def check_final_memory(
        self,
        log: Sequence[CommitRecord],
        machine_image: Dict[int, List[int]],
    ) -> None:
        """The drained machine memory must equal the serial replay's.

        ``machine_image`` maps line -> word values (the union of all
        node memories after every dirty line has been written back).
        """
        replayed = self.replay(log)
        for (line, word), value in replayed.words.items():
            machine_line = machine_image.get(line)
            machine_value = machine_line[word] if machine_line else 0
            if machine_value != value:
                raise ReplayMismatch(
                    f"final memory mismatch at line {line} word {word}: "
                    f"machine has {machine_value}, replay has {value}"
                )

    def check(
        self,
        log: Sequence[CommitRecord],
        machine_image: Dict[int, List[int]],
    ) -> None:
        """Full check: read values and final memory."""
        self.check_final_memory(log, machine_image)
