"""Correctness verification: serializability by serial replay.

The simulator models real data values end to end precisely so this
package can check, after every run, that the machine behaved like *some*
serial execution — the definition of transactional correctness.
"""

from repro.verify.invariants import InvariantViolation, check_system_invariants
from repro.verify.serializability import (
    CommitRecord,
    ReplayMismatch,
    SerializabilityChecker,
)

__all__ = [
    "CommitRecord",
    "InvariantViolation",
    "ReplayMismatch",
    "SerializabilityChecker",
    "check_system_invariants",
]
