"""Machine-wide protocol invariants, checkable at any quiescent instant.

These are the structural properties the Scalable TCC protocol maintains;
violating any of them is a bug even if no workload has (yet) observed
wrong data.  The system checks them at the end of every run, and in
*paranoid mode* (``SystemConfig(paranoid=True)``) periodically during
the run, which catches transient corruption long before it surfaces as
a serializability failure.

Checked invariants:

I1  single owner — each directory entry names at most one owner (by
    construction) and an owner is always also a sharer-visible node;
I2  sharer coverage — every processor holding valid words of a line is
    in the line's home-directory sharers list (so future commits can
    invalidate it); the list may be conservative (extra members), never
    missing one;
I3  speculative-bits containment — SR and SM masks only cover valid
    words, and SM implies the line is not dirty (the
    flush-before-first-speculative-write rule);
I4  mark consistency — a marked line's marking TID equals its home
    directory's Now-Serving TID;
I5  NSTID bound — no directory serves a TID beyond the highest the
    vendor has issued, plus one.

I2 can be transiently violated by messages in flight (a LoadReply fills
a cache a few cycles after the directory registered the sharer — never
the unsafe direction — but an Invalidation may be between the directory
(sharer already implicitly dropped at line granularity) and the cache),
so the periodic checker only runs between event batches at quiescent
points for the lines it can prove stable; the end-of-run check is exact.
"""

from __future__ import annotations

from typing import List


class InvariantViolation(AssertionError):
    """A structural protocol invariant does not hold."""


def check_system_invariants(system, strict_sharers: bool = True) -> None:
    """Raise :class:`InvariantViolation` on any broken invariant.

    ``strict_sharers`` enables I2, which requires no invalidations in
    flight; pass False when checking mid-run.
    """
    problems: List[str] = []
    _check_caches(system, problems)
    _check_directories(system, problems)
    if strict_sharers:
        _check_sharer_coverage(system, problems)
    if problems:
        raise InvariantViolation(
            "protocol invariants violated:\n  " + "\n  ".join(problems)
        )


def _check_caches(system, problems: List[str]) -> None:
    for proc in system.processors:
        for bucket in proc.hierarchy.l2._sets:
            for entry in bucket.values():
                if entry.sr_mask & ~entry.valid_mask:
                    problems.append(
                        f"I3: P{proc.node} line {entry.line}: SR bits on "
                        f"invalid words ({entry.sr_mask:#x} vs valid "
                        f"{entry.valid_mask:#x})"
                    )
                if entry.sm_mask & ~entry.valid_mask:
                    problems.append(
                        f"I3: P{proc.node} line {entry.line}: SM bits on "
                        f"invalid words"
                    )
                if entry.sm_mask and entry.dirty:
                    problems.append(
                        f"I3: P{proc.node} line {entry.line}: dirty with SM "
                        f"(flush-before-speculation rule broken)"
                    )


def _check_directories(system, problems: List[str]) -> None:
    highest = system.vendor.highest_issued
    for directory in system.directories:
        if directory.nstid > highest + 1:
            problems.append(
                f"I5: dir {directory.node} serving TID {directory.nstid} "
                f"beyond highest issued {highest}"
            )
        for entry in directory.state.entries():
            if entry.owner is not None and entry.owner not in entry.sharers:
                problems.append(
                    f"I1: dir {directory.node} line {entry.line}: owner "
                    f"{entry.owner} not in sharers {sorted(entry.sharers)}"
                )
            if entry.marked:
                if entry.marked_by != directory.nstid:
                    problems.append(
                        f"I4: dir {directory.node} line {entry.line}: marked "
                        f"by TID {entry.marked_by} while serving "
                        f"{directory.nstid}"
                    )


def _check_sharer_coverage(system, problems: List[str]) -> None:
    for proc in system.processors:
        for bucket in proc.hierarchy.l2._sets:
            for entry in bucket.values():
                if not entry.valid_mask:
                    continue
                home = system.mapping.home(entry.line)
                dir_entry = system.directories[home].state.peek(entry.line)
                if dir_entry is None or proc.node not in dir_entry.sharers:
                    problems.append(
                        f"I2: P{proc.node} caches line {entry.line} but is "
                        f"not a sharer at dir {home}"
                    )
