"""Scalable TCC core: the paper's primary contribution.

This package wires the substrates (simulation kernel, network, caches,
directories) into the Scalable TCC machine and exposes the public API:

* :class:`~repro.core.config.SystemConfig` — Table 2 architecture knobs;
* :class:`~repro.core.system.ScalableTCCSystem` — builds the nodes and
  runs a workload to completion;
* :class:`~repro.core.tid.TidVendor` — the global gap-free TID vendor;
* :mod:`~repro.core.messages` — the coherence message set (Table 1).
"""

from repro.core.config import SystemConfig
from repro.core.system import ScalableTCCSystem, SimulationResult
from repro.core.tid import TidVendor

__all__ = [
    "ScalableTCCSystem",
    "SimulationResult",
    "SystemConfig",
    "TidVendor",
]
