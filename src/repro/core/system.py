"""System assembly: nodes, routing, the run loop, and verification.

A :class:`ScalableTCCSystem` instantiates the Figure 1a machine: per node
one processor (with private L1/L2), one directory with its slice of
physical memory, all joined by the 2-D mesh.  Node 0 additionally hosts
the global TID vendor.  ``run(workload)`` drives the workload to
completion, drains all committed-dirty data home, checks protocol
quiescence and the gap-free TID contract, and (by default) verifies
serializability by serial replay.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.core.config import SystemConfig
from repro.core.messages import (
    AbortMsg,
    CommitMsg,
    InvAck,
    LoadRequest,
    MarkMsg,
    ProbeRequest,
    SkipMsg,
    TidReply,
    TidRequest,
    TokenWrite,
    WriteBackMsg,
)
from repro.core.tid import TidVendor
from repro.directory.controller import DirectoryController
from repro.faults.injector import FaultInjector, FaultStats
from repro.faults.watchdog import ProgressWatchdog
from repro.memory.address import AddressMap, FirstTouchMapping, InterleavedMapping
from repro.memory.mainmem import MainMemory
from repro.memory.hierarchy import PrivateHierarchy
from repro.network.interconnect import Interconnect, TrafficStats
from repro.processor.core import TCCProcessor
from repro.processor.stats import ProcessorStats
from repro.profiling.tape import TapeProfiler
from repro.sim import Barrier, Engine, Resource
from repro.verify.serializability import CommitRecord, SerializabilityChecker
from repro.workloads.base import Workload

_DIRECTORY_MESSAGES = (
    LoadRequest,
    SkipMsg,
    ProbeRequest,
    MarkMsg,
    CommitMsg,
    AbortMsg,
    InvAck,
    WriteBackMsg,
    TokenWrite,
)


class SimulationTimeout(RuntimeError):
    """The run hit its cycle bound before every processor finished."""


@dataclass
class SimulationResult:
    """Everything a benchmark or analysis needs from one run."""

    config: SystemConfig
    cycles: int
    proc_stats: List[ProcessorStats]
    directory_stats: List[Any]
    traffic: TrafficStats
    commit_log: List[CommitRecord]
    memory_image: Dict[int, List[int]]
    directory_working_sets: List[int]
    events_executed: int = 0
    #: Injector/hardening counters (None for plain fault-free runs).
    fault_stats: Optional[FaultStats] = None

    @property
    def committed_transactions(self) -> int:
        return sum(s.committed_transactions for s in self.proc_stats)

    @property
    def total_violations(self) -> int:
        return sum(s.violations for s in self.proc_stats)

    @property
    def committed_instructions(self) -> int:
        return sum(s.committed_instructions for s in self.proc_stats)

    def breakdown(self) -> Dict[str, int]:
        """Machine-wide cycle breakdown (summed over processors), with the
        residual of each processor's timeline counted as idle."""
        total = {"useful": 0, "miss": 0, "idle": 0, "commit": 0, "violation": 0}
        for stats in self.proc_stats:
            for key, value in stats.breakdown().items():
                total[key] += value
            # Cycles between a processor finishing and the run ending are
            # idle time (tail imbalance).
            total["idle"] += max(0, self.cycles - stats.total_cycles)
        return total

    def breakdown_fractions(self) -> Dict[str, float]:
        total_cycles = self.cycles * len(self.proc_stats)
        if not total_cycles:
            return {k: 0.0 for k in ("useful", "miss", "idle", "commit", "violation")}
        return {k: v / total_cycles for k, v in self.breakdown().items()}

    def bytes_per_instruction(self) -> Dict[str, float]:
        """Figure 9: remote traffic per committed instruction, by class."""
        instructions = max(1, self.committed_instructions)
        return {
            cls: count / instructions
            for cls, count in self.traffic.bytes_by_class.items()
        }

    def to_dict(self) -> Dict[str, Any]:
        """A JSON-serializable summary (config, outcome, breakdowns,
        traffic, per-processor counters) for archiving experiment runs."""
        from dataclasses import asdict

        return {
            "config": asdict(self.config),
            "cycles": self.cycles,
            "committed_transactions": self.committed_transactions,
            "violations": self.total_violations,
            "committed_instructions": self.committed_instructions,
            "events_executed": self.events_executed,
            "fault_stats": (
                self.fault_stats.as_dict() if self.fault_stats else None
            ),
            "breakdown": self.breakdown(),
            "breakdown_fractions": self.breakdown_fractions(),
            "bytes_per_instruction": self.bytes_per_instruction(),
            "traffic_bytes_by_class": dict(self.traffic.bytes_by_class),
            "directory_working_sets": list(self.directory_working_sets),
            "per_processor": [
                {
                    "node": node,
                    **stats.breakdown(),
                    "committed_transactions": stats.committed_transactions,
                    "violations": stats.violations,
                    "load_retries": stats.load_retries,
                    "tid_retentions": stats.tid_retentions,
                }
                for node, stats in enumerate(self.proc_stats)
            ],
        }

    def save_json(self, path: str) -> None:
        """Write :meth:`to_dict` as JSON."""
        import json

        with open(path, "w") as handle:
            json.dump(self.to_dict(), handle, indent=2)


class ScalableTCCSystem:
    """The full simulated machine."""

    def __init__(self, config: SystemConfig) -> None:
        self.config = config
        self.engine = Engine()
        self.amap = AddressMap(config.line_size, config.word_size)
        self.network = Interconnect(
            self.engine,
            config.n_processors,
            link_latency=config.link_latency,
            router_latency=config.router_latency,
            local_latency=config.local_latency,
            link_bytes_per_cycle=config.link_bytes_per_cycle,
            ordered=config.ordered_network,
            jitter=config.network_jitter,
            seed=config.seed,
            link_contention=config.link_contention,
            jitter_source=config.network_jitter_source,
        )
        if config.first_touch:
            self.mapping = FirstTouchMapping(
                config.n_processors, config.page_size, config.line_size
            )
        else:
            self.mapping = InterleavedMapping(config.n_processors)
        self.vendor = TidVendor(config.tid_vendor_node)
        self.tape = TapeProfiler()
        if config.event_log:
            from repro.tracing import EventLog

            self.events: Optional[Any] = EventLog()
        else:
            self.events = None
        self.commit_log: List[CommitRecord] = []
        self.barrier: Optional[Barrier] = None
        self.token = Resource(self.engine, name="commit-token")

        # Fault injection and protocol hardening (repro.faults).  All of
        # this is None/inert for plain fault-free configs, whose event
        # streams must stay bit-identical.
        self.fault_stats: Optional[FaultStats] = None
        self.fault_injector: Optional[FaultInjector] = None
        if config.fault_plan is not None or config.protocol_hardened:
            self.fault_stats = FaultStats()
        if config.fault_plan is not None:
            self.fault_injector = FaultInjector(
                config.fault_plan,
                config.n_processors,
                stats=self.fault_stats,
                event_log=self.events,
            )
            self.network.fault_injector = self.fault_injector

        self.memories: List[MainMemory] = []
        self.directories: List[DirectoryController] = []
        self.processors: List[TCCProcessor] = []
        for node in range(config.n_processors):
            memory = MainMemory(self.amap)
            directory = DirectoryController(
                node, self.engine, self.network, memory, self.amap, config
            )
            hierarchy = PrivateHierarchy(
                self.amap,
                l1_size=config.l1_size,
                l1_ways=config.l1_ways,
                l1_latency=config.l1_latency,
                l2_size=config.l2_size,
                l2_ways=config.l2_ways,
                l2_latency=config.l2_latency,
                granularity=config.granularity,
                name=f"cpu{node}",
            )
            processor = TCCProcessor(
                node,
                self.engine,
                self.network,
                hierarchy,
                self.mapping,
                self.amap,
                config,
                self,
            )
            directory.event_log = self.events
            directory.fault_injector = self.fault_injector
            directory.fault_stats = self.fault_stats
            processor.fault_injector = self.fault_injector
            processor.fault_stats = self.fault_stats
            self.memories.append(memory)
            self.directories.append(directory)
            self.processors.append(processor)
            self.network.register(node, self._make_router(node))
        self._ran = False

    # ------------------------------------------------------------------
    # routing
    # ------------------------------------------------------------------

    def _make_router(self, node: int):
        directory = self.directories[node]
        processor = self.processors[node]
        is_vendor_node = node == self.config.tid_vendor_node

        def route(packet):
            msg = packet.payload
            if isinstance(msg, _DIRECTORY_MESSAGES):
                directory.deliver(msg)
            elif isinstance(msg, TidRequest):
                if not is_vendor_node:
                    raise RuntimeError(f"TID request routed to non-vendor node {node}")
                tid = self.vendor.next_tid(msg.requester, msg.seq)
                reply = TidReply(tid, msg.seq)
                self.network.send(
                    node, msg.requester, reply, reply.payload_bytes, reply.traffic_class
                )
            else:
                processor.deliver(msg)

        return route

    # ------------------------------------------------------------------
    # running
    # ------------------------------------------------------------------

    def run(
        self,
        workload: Workload,
        max_cycles: Optional[int] = None,
        verify: bool = True,
        validate_workload: bool = False,
    ) -> SimulationResult:
        """Execute the workload to completion and return the results."""
        if self._ran:
            raise RuntimeError("a system instance runs exactly one workload")
        self._ran = True
        n = self.config.n_processors
        if validate_workload:
            workload.validate(n)
        self.barrier = Barrier(self.engine, n, name="workload-barrier")
        for node, processor in enumerate(self.processors):
            processor.process_for(iter(workload.schedule(node, n)))
        if self.config.watchdog_active:
            ProgressWatchdog(self, self.fault_stats).start()
        if self.config.paranoid:
            from repro.verify.invariants import check_system_invariants

            while self.engine.peek() is not None:
                target = self.engine.now + self.config.paranoid_interval
                if max_cycles is not None:
                    target = min(target, max_cycles)
                self.engine.run(until=target)
                check_system_invariants(self, strict_sharers=False)
                if max_cycles is not None and self.engine.now >= max_cycles:
                    break
        else:
            self.engine.run(until=max_cycles)

        unfinished = [p.node for p in self.processors if not p.finished]
        if unfinished:
            raise SimulationTimeout(
                f"processors {unfinished} unfinished at cycle {self.engine.now} "
                f"(queue {'empty: deadlock' if self.engine.peek() is None else 'active: timeout'})"
            )
        run_cycles = self.engine.now

        self.vendor.check_all_resolved()
        from repro.verify.invariants import check_system_invariants

        check_system_invariants(self, strict_sharers=True)
        self.tape.overflow_events = sum(
            p.hierarchy.stats.speculative_overflows for p in self.processors
        )
        self._drain()
        for directory in self.directories:
            directory.quiescent_check()

        result = SimulationResult(
            config=self.config,
            cycles=run_cycles,
            proc_stats=[p.stats for p in self.processors],
            directory_stats=[d.stats for d in self.directories],
            traffic=self.network.stats,
            commit_log=self.commit_log,
            memory_image=self.memory_image(),
            directory_working_sets=[
                d.state.working_set_entries(d.node) for d in self.directories
            ],
            events_executed=self.engine.events_executed,
            fault_stats=self.fault_stats,
        )
        if verify:
            checker = SerializabilityChecker(self.amap)
            checker.check(self.commit_log, result.memory_image)
        return result

    def _drain(self) -> None:
        """Push all committed-dirty cache data home so memory is complete."""
        for processor in self.processors:
            processor.drain_dirty_lines()
        self.engine.run()
        for directory in self.directories:
            for entry in directory.state.entries():
                if entry.owned:
                    raise RuntimeError(
                        f"line {entry.line} still owned by {entry.owner} after drain"
                    )

    def memory_image(self) -> Dict[int, List[int]]:
        """The union of all node memories (homes partition the lines)."""
        image: Dict[int, List[int]] = {}
        for memory in self.memories:
            snapshot = memory.snapshot()
            for line, words in snapshot.items():
                if line in image:
                    raise RuntimeError(f"line {line} present in two home memories")
                image[line] = words
        return image
