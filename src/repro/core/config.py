"""System configuration — Table 2 of the paper, as a dataclass.

Defaults reproduce the paper's simulated machine:

    CPU          single-issue PowerPC-like cores, CPI = 1.0
    L1           32 KB, 32-byte lines, 4-way, 1-cycle latency
    L2           512 KB, 32-byte lines, 8-way, 6-cycle latency
    ICN          2-D grid, 3 cycles/link (Figure 8 sweeps 1..8)
    Main memory  100 cycles
    Directory    full-bit-vector sharers, first-touch allocation,
                 10-cycle directory cache
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional

from repro.faults.plan import FaultPlan


@dataclass(frozen=True)
class SystemConfig:
    """All architecture knobs for one simulated machine."""

    n_processors: int = 8

    # Memory geometry
    line_size: int = 32
    word_size: int = 4

    # Private cache hierarchy
    l1_size: int = 32 * 1024
    l1_ways: int = 4
    l1_latency: int = 1
    l2_size: int = 512 * 1024
    l2_ways: int = 8
    l2_latency: int = 6

    # Speculative-state tracking granularity: "word" or "line"
    granularity: str = "word"

    # Interconnect
    link_latency: int = 3
    router_latency: int = 1
    local_latency: int = 1
    link_bytes_per_cycle: Optional[int] = 16
    ordered_network: bool = False
    network_jitter: int = 2
    #: Jitter PRNG: "mt" draws the historical per-interconnect Mersenne
    #: Twister sequence; "xorshift" uses cheaper per-(src, dst) xorshift64*
    #: streams (a different, still deterministic, timing sequence).
    network_jitter_source: str = "mt"
    #: Model per-link occupancy along the XY route (wormhole contention)
    #: instead of only per-node injection bandwidth.
    link_contention: bool = False

    # Directory and memory
    directory_latency: int = 10
    memory_latency: int = 100
    #: Capacity of the directory cache in entries (None = ideal/infinite).
    #: A message touching a line whose directory state is not cached pays
    #: an extra memory access to fetch it (Table 2's "directory cache").
    directory_cache_entries: Optional[int] = None
    first_touch: bool = True
    page_size: int = 4096

    # Protocol policy
    commit_backend: str = "scalable"  # "scalable" | "token" (small-scale TCC)
    write_through_commit: bool = False  # ablation: data pushed home at commit
    retention_threshold: int = 4  # violations before a TID is retained
    tid_vendor_node: int = 0
    #: Sharer-vector coarseness: 1 = the paper's full bit vector (one bit
    #: per processor); k > 1 = one bit per group of k processors, so an
    #: invalidation fans out to the whole group (extra spurious
    #: invalidations — the classic directory-size/precision trade-off).
    sharer_group_size: int = 1

    # Tracing
    #: Record a structured protocol event log (repro.tracing) at
    #: ``system.events``; off by default (zero overhead).
    event_log: bool = False

    # Verification
    #: Check machine-wide protocol invariants every ``paranoid_interval``
    #: cycles during the run (slow; for debugging protocol changes).
    paranoid: bool = False
    paranoid_interval: int = 1000

    # Fault injection and resilience (repro.faults)
    #: Faults to inject this run (None = perfect fabric, the default;
    #: every fault-free code path is bit-identical to a build without
    #: the faults subsystem).
    fault_plan: Optional[FaultPlan] = None
    #: Sequence-numbered request/ack + timeout-retry protocol hardening.
    #: None = auto: hardened exactly when a fault plan is set.  True
    #: forces the hardened paths on a perfect fabric (for testing);
    #: False under faults demonstrates the watchdog catching the hang.
    harden_protocol: Optional[bool] = None
    #: First resend after ``retry_timeout`` cycles; each retry multiplies
    #: the wait by ``retry_backoff`` up to ``retry_timeout_cap``.
    retry_timeout: int = 2000
    retry_backoff: int = 2
    retry_timeout_cap: int = 32_000
    #: Progress watchdog.  None = auto (armed exactly when a fault plan
    #: is set); it raises WatchdogStall after ``watchdog_stall_checks``
    #: consecutive ``watchdog_interval``-cycle windows without a commit.
    watchdog: Optional[bool] = None
    watchdog_interval: int = 50_000
    watchdog_stall_checks: int = 4
    #: Consecutive aborts of one transaction before the watchdog reports
    #: a livelock episode (diagnostic only; TID retention is the cure).
    livelock_abort_threshold: int = 64

    # Reproducibility
    seed: int = 0

    def __post_init__(self) -> None:
        if self.n_processors < 1:
            raise ValueError("need at least one processor")
        if self.granularity not in ("word", "line"):
            raise ValueError(f"granularity must be 'word' or 'line', got {self.granularity!r}")
        if self.commit_backend not in ("scalable", "token"):
            raise ValueError(
                f"commit_backend must be 'scalable' or 'token', got {self.commit_backend!r}"
            )
        for name in ("line_size", "word_size", "l1_size", "l1_ways",
                     "l2_size", "l2_ways", "page_size"):
            value = getattr(self, name)
            if value < 1:
                raise ValueError(f"{name} must be >= 1, got {value}")
        if self.line_size % self.word_size:
            raise ValueError("line size must be a multiple of word size")
        if self.retention_threshold < 1:
            raise ValueError("retention threshold must be >= 1")
        if self.network_jitter_source not in ("mt", "xorshift"):
            raise ValueError(
                "network_jitter_source must be 'mt' or 'xorshift', "
                f"got {self.network_jitter_source!r}"
            )
        if self.sharer_group_size < 1:
            raise ValueError("sharer group size must be >= 1")
        for name in (
            "l1_latency", "l2_latency", "link_latency", "router_latency",
            "local_latency", "directory_latency", "memory_latency",
            "network_jitter",
        ):
            value = getattr(self, name)
            if value < 0:
                raise ValueError(f"{name} must be >= 0, got {value}")
        if self.link_bytes_per_cycle is not None and self.link_bytes_per_cycle < 1:
            raise ValueError(
                "link_bytes_per_cycle must be None (infinite) or >= 1, "
                f"got {self.link_bytes_per_cycle}"
            )
        if not 0 <= self.tid_vendor_node < self.n_processors:
            raise ValueError(
                f"tid_vendor_node {self.tid_vendor_node} outside "
                f"[0, {self.n_processors})"
            )
        if self.fault_plan is not None:
            if not isinstance(self.fault_plan, FaultPlan):
                raise ValueError(
                    f"fault_plan must be a FaultPlan, got {self.fault_plan!r}"
                )
            if self.commit_backend == "token":
                raise ValueError(
                    "fault injection requires the 'scalable' commit backend "
                    "(token-protocol messages have no end-to-end retry)"
                )
        if self.retry_timeout < 1:
            raise ValueError(f"retry_timeout must be >= 1, got {self.retry_timeout}")
        if self.retry_backoff < 1:
            raise ValueError(f"retry_backoff must be >= 1, got {self.retry_backoff}")
        if self.retry_timeout_cap < self.retry_timeout:
            raise ValueError(
                f"retry_timeout_cap ({self.retry_timeout_cap}) must be >= "
                f"retry_timeout ({self.retry_timeout})"
            )
        if self.watchdog_interval < 1:
            raise ValueError(
                f"watchdog_interval must be >= 1, got {self.watchdog_interval}"
            )
        if self.watchdog_stall_checks < 1:
            raise ValueError(
                f"watchdog_stall_checks must be >= 1, "
                f"got {self.watchdog_stall_checks}"
            )
        if self.livelock_abort_threshold < 1:
            raise ValueError(
                f"livelock_abort_threshold must be >= 1, "
                f"got {self.livelock_abort_threshold}"
            )

    @property
    def protocol_hardened(self) -> bool:
        """Whether the seq/ack + retry protocol paths are active."""
        if self.harden_protocol is not None:
            return self.harden_protocol
        return self.fault_plan is not None

    @property
    def watchdog_active(self) -> bool:
        """Whether the progress watchdog is armed for this run."""
        if self.watchdog is not None:
            return self.watchdog
        return self.fault_plan is not None

    @property
    def words_per_line(self) -> int:
        return self.line_size // self.word_size

    def scaled_to(self, n_processors: int) -> "SystemConfig":
        """The same machine with a different processor count."""
        return replace(self, n_processors=n_processors)

    def with_link_latency(self, link_latency: int) -> "SystemConfig":
        """The same machine with a different cycles-per-hop (Figure 8)."""
        return replace(self, link_latency=link_latency)

    def describe(self) -> str:
        """Human-readable Table 2-style summary."""
        lines = [
            f"CPU          {self.n_processors} single-issue cores (CPI=1.0)",
            f"L1           {self.l1_size // 1024}-KB, {self.line_size}-byte lines, "
            f"{self.l1_ways}-way, {self.l1_latency}-cycle",
            f"L2           {self.l2_size // 1024}-KB, {self.line_size}-byte lines, "
            f"{self.l2_ways}-way, {self.l2_latency}-cycle",
            f"ICN          2D grid, {self.link_latency} cycles/link"
            + ("" if not self.ordered_network else " (ordered)"),
            f"Main memory  {self.memory_latency} cycles",
            f"Directory    full-bit-vector sharers, "
            f"{'first-touch' if self.first_touch else 'interleaved'} allocate, "
            f"{self.directory_latency}-cycle directory cache",
            f"Tracking     {self.granularity}-granularity speculative state",
            f"Commit       {self.commit_backend}"
            + (", write-through" if self.write_through_commit else ", write-back"),
        ]
        return "\n".join(lines)
