"""System configuration — Table 2 of the paper, as a dataclass.

Defaults reproduce the paper's simulated machine:

    CPU          single-issue PowerPC-like cores, CPI = 1.0
    L1           32 KB, 32-byte lines, 4-way, 1-cycle latency
    L2           512 KB, 32-byte lines, 8-way, 6-cycle latency
    ICN          2-D grid, 3 cycles/link (Figure 8 sweeps 1..8)
    Main memory  100 cycles
    Directory    full-bit-vector sharers, first-touch allocation,
                 10-cycle directory cache
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional


@dataclass(frozen=True)
class SystemConfig:
    """All architecture knobs for one simulated machine."""

    n_processors: int = 8

    # Memory geometry
    line_size: int = 32
    word_size: int = 4

    # Private cache hierarchy
    l1_size: int = 32 * 1024
    l1_ways: int = 4
    l1_latency: int = 1
    l2_size: int = 512 * 1024
    l2_ways: int = 8
    l2_latency: int = 6

    # Speculative-state tracking granularity: "word" or "line"
    granularity: str = "word"

    # Interconnect
    link_latency: int = 3
    router_latency: int = 1
    local_latency: int = 1
    link_bytes_per_cycle: Optional[int] = 16
    ordered_network: bool = False
    network_jitter: int = 2
    #: Jitter PRNG: "mt" draws the historical per-interconnect Mersenne
    #: Twister sequence; "xorshift" uses cheaper per-(src, dst) xorshift64*
    #: streams (a different, still deterministic, timing sequence).
    network_jitter_source: str = "mt"
    #: Model per-link occupancy along the XY route (wormhole contention)
    #: instead of only per-node injection bandwidth.
    link_contention: bool = False

    # Directory and memory
    directory_latency: int = 10
    memory_latency: int = 100
    #: Capacity of the directory cache in entries (None = ideal/infinite).
    #: A message touching a line whose directory state is not cached pays
    #: an extra memory access to fetch it (Table 2's "directory cache").
    directory_cache_entries: Optional[int] = None
    first_touch: bool = True
    page_size: int = 4096

    # Protocol policy
    commit_backend: str = "scalable"  # "scalable" | "token" (small-scale TCC)
    write_through_commit: bool = False  # ablation: data pushed home at commit
    retention_threshold: int = 4  # violations before a TID is retained
    tid_vendor_node: int = 0
    #: Sharer-vector coarseness: 1 = the paper's full bit vector (one bit
    #: per processor); k > 1 = one bit per group of k processors, so an
    #: invalidation fans out to the whole group (extra spurious
    #: invalidations — the classic directory-size/precision trade-off).
    sharer_group_size: int = 1

    # Tracing
    #: Record a structured protocol event log (repro.tracing) at
    #: ``system.events``; off by default (zero overhead).
    event_log: bool = False

    # Verification
    #: Check machine-wide protocol invariants every ``paranoid_interval``
    #: cycles during the run (slow; for debugging protocol changes).
    paranoid: bool = False
    paranoid_interval: int = 1000

    # Reproducibility
    seed: int = 0

    def __post_init__(self) -> None:
        if self.n_processors < 1:
            raise ValueError("need at least one processor")
        if self.granularity not in ("word", "line"):
            raise ValueError(f"granularity must be 'word' or 'line', got {self.granularity!r}")
        if self.commit_backend not in ("scalable", "token"):
            raise ValueError(
                f"commit_backend must be 'scalable' or 'token', got {self.commit_backend!r}"
            )
        if self.line_size % self.word_size:
            raise ValueError("line size must be a multiple of word size")
        if self.retention_threshold < 1:
            raise ValueError("retention threshold must be >= 1")
        if self.network_jitter_source not in ("mt", "xorshift"):
            raise ValueError(
                "network_jitter_source must be 'mt' or 'xorshift', "
                f"got {self.network_jitter_source!r}"
            )
        if self.sharer_group_size < 1:
            raise ValueError("sharer group size must be >= 1")

    @property
    def words_per_line(self) -> int:
        return self.line_size // self.word_size

    def scaled_to(self, n_processors: int) -> "SystemConfig":
        """The same machine with a different processor count."""
        return replace(self, n_processors=n_processors)

    def with_link_latency(self, link_latency: int) -> "SystemConfig":
        """The same machine with a different cycles-per-hop (Figure 8)."""
        return replace(self, link_latency=link_latency)

    def describe(self) -> str:
        """Human-readable Table 2-style summary."""
        lines = [
            f"CPU          {self.n_processors} single-issue cores (CPI=1.0)",
            f"L1           {self.l1_size // 1024}-KB, {self.line_size}-byte lines, "
            f"{self.l1_ways}-way, {self.l1_latency}-cycle",
            f"L2           {self.l2_size // 1024}-KB, {self.line_size}-byte lines, "
            f"{self.l2_ways}-way, {self.l2_latency}-cycle",
            f"ICN          2D grid, {self.link_latency} cycles/link"
            + ("" if not self.ordered_network else " (ordered)"),
            f"Main memory  {self.memory_latency} cycles",
            f"Directory    full-bit-vector sharers, "
            f"{'first-touch' if self.first_touch else 'interleaved'} allocate, "
            f"{self.directory_latency}-cycle directory cache",
            f"Tracking     {self.granularity}-granularity speculative state",
            f"Commit       {self.commit_backend}"
            + (", write-through" if self.write_through_commit else ", write-back"),
        ]
        return "\n".join(lines)
