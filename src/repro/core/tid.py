"""The global Transaction ID vendor.

Section 3.3: "TIDs are assigned by a global TID vendor" producing a
*gap-free* sequence — distributed timestamp schemes (TLR-style) produce
unique ordered IDs but with gaps, which would wedge the directories' NSTID
registers forever.  The vendor is a trivial counter; what matters is the
gap-free contract, which :meth:`TidVendor.check_all_resolved` lets tests
and the system assert at end of run.

TIDs start at 1 so code can use 0/None as "no TID".
"""

from __future__ import annotations

from typing import Dict, Optional, Set


class TidVendor:
    """Central gap-free TID counter with resolution bookkeeping."""

    def __init__(self, home_node: int = 0) -> None:
        self.home_node = home_node
        self._next = 1
        self._outstanding: Dict[int, int] = {}  # tid -> owning processor
        self._resolved: Set[int] = set()
        self.issued = 0
        # requester -> (seq, tid) of its last sequenced request, so a
        # duplicated/retried TidRequest never burns a second TID (the
        # gap-free contract must survive an unreliable fabric).
        self._last_seq: Dict[int, tuple] = {}
        self.duplicate_requests = 0

    def next_tid(self, requester: int, seq: int = 0) -> int:
        """Issue the next TID to ``requester``.

        ``seq > 0`` marks a sequenced (hardened-protocol) request:
        re-asking with the same or an older seq returns the TID already
        issued for it instead of minting a new one.
        """
        if seq:
            last = self._last_seq.get(requester)
            if last is not None and seq <= last[0]:
                self.duplicate_requests += 1
                return last[1]
        tid = self._next
        self._next += 1
        self.issued += 1
        self._outstanding[tid] = requester
        if seq:
            self._last_seq[requester] = (seq, tid)
        return tid

    def resolve(self, tid: int) -> None:
        """The transaction holding ``tid`` committed or aborted-with-skips.

        Every issued TID must eventually resolve exactly once — that is the
        gap-free contract the directories rely on.
        """
        owner = self._outstanding.pop(tid, None)
        if owner is None:
            raise ValueError(f"TID {tid} resolved twice or never issued")
        self._resolved.add(tid)

    @property
    def outstanding(self) -> Dict[int, int]:
        return dict(self._outstanding)

    @property
    def highest_issued(self) -> int:
        return self._next - 1

    def check_all_resolved(self) -> None:
        """Raise if any issued TID never committed or skipped (livelock or
        protocol bug)."""
        if self._outstanding:
            raise AssertionError(
                f"unresolved TIDs at end of run: {sorted(self._outstanding)}"
            )
        expected = set(range(1, self._next))
        if self._resolved != expected:
            missing = sorted(expected - self._resolved)
            raise AssertionError(f"gap in resolved TID sequence: missing {missing}")
