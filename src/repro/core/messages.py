"""The Scalable TCC coherence message set (Table 1 of the paper).

Every message knows its payload size in bytes and its Figure 9 traffic
class so the interconnect can account for it.  Sizes follow the usual DSM
conventions: 4-byte addresses/TIDs, full cache lines for data messages,
per-line address+flag records for commit marks.

| Paper message | Here |
| ------------- | ---- |
| Load Request  | :class:`LoadRequest` |
| TID Request   | :class:`TidRequest` / :class:`TidReply` |
| Skip Message  | :class:`SkipMsg` |
| NSTID Probe   | :class:`ProbeRequest` / :class:`ProbeReply` |
| Mark          | :class:`MarkMsg` (+ :class:`MarkAck`) |
| Commit        | :class:`CommitMsg` (+ :class:`CommitAck`) |
| Abort         | :class:`AbortMsg` |
| Write Back    | :class:`WriteBackMsg` (remove=True) |
| Flush         | :class:`WriteBackMsg` (remove=False) |
| Flush Data Request | :class:`FlushRequest` |
| (invalidate)  | :class:`Invalidation` / :class:`InvAck` |

The explicit ``MarkAck`` is our concession to the modelled *unordered*
network: the paper assumes a transaction "completes marking" before it
commits; acknowledging marks is the simplest way to establish that order
without assuming point-to-point FIFO delivery.

Hardening (``repro.faults``): messages whose class sets ``retryable =
True`` are protected end-to-end — the sender re-issues them on a timeout
until the matching reply/ack arrives, so the fault injector may drop
them outright.  Messages without the attribute (invalidations, their
acks, write-backs, flush requests, token traffic) carry data or
side-effects with no end-to-end retry, so a selected drop is downgraded
to a delay (modelling link-level retransmission).  ``seq`` / ``attempt``
fields let receivers recognize duplicates and stale retries; they add no
modelled payload bytes (a real header would carry them in existing
slack), keeping fault-free traffic accounting bit-identical.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.network.message import (
    CLASS_COMMIT,
    CLASS_MISS,
    CLASS_OVERHEAD,
    CLASS_WRITEBACK,
)

ADDR_BYTES = 4
TID_BYTES = 4
FLAG_BYTES = 1  # per-line word flags (8 words -> 1 byte)


@dataclass(slots=True)
class LoadRequest:
    """Fetch a cache line from its home directory."""

    requester: int
    line: int
    seq: int  # processor-local sequence, for load/invalidate race detection

    payload_bytes = ADDR_BYTES
    traffic_class = CLASS_OVERHEAD
    retryable = True


@dataclass(slots=True)
class LoadReply:
    """Full line data back to the requester."""

    line: int
    data: List[int]
    seq: int

    traffic_class = CLASS_MISS
    retryable = True

    @property
    def payload_bytes(self) -> int:
        return ADDR_BYTES + 4 * len(self.data)


@dataclass(slots=True)
class TidRequest:
    """Ask the global vendor for the next transaction ID.

    ``seq`` (hardened protocol only) identifies the request so retries
    reach the vendor idempotently: the vendor caches the last
    ``(seq, tid)`` per requester and never issues a second TID for a
    re-sent seq — the gap-free contract survives duplicated requests.
    """

    requester: int
    seq: int = 0

    payload_bytes = 0
    traffic_class = CLASS_OVERHEAD
    retryable = True


@dataclass(slots=True)
class TidReply:
    tid: int
    seq: int = 0

    payload_bytes = TID_BYTES
    traffic_class = CLASS_OVERHEAD
    retryable = True


@dataclass(slots=True)
class SkipMsg:
    """Tell a directory this TID has nothing to commit there.

    ``committer >= 0`` (hardened protocol) asks the directory to
    acknowledge with :class:`SkipAck` so the sender's background retry
    can stop; directories re-ack stale/duplicate skips.
    """

    tid: int
    committer: int = -1

    payload_bytes = TID_BYTES
    traffic_class = CLASS_COMMIT
    retryable = True


@dataclass(slots=True)
class SkipAck:
    """Hardened protocol only: a directory saw the skip (or already had)."""

    directory: int
    tid: int

    payload_bytes = TID_BYTES
    traffic_class = CLASS_COMMIT
    retryable = True


@dataclass(slots=True)
class ProbeRequest:
    """Ask a directory for its NSTID; the directory defers the reply until
    NSTID >= tid (the paper's "directory does not respond until the
    required TID is being serviced" optimization)."""

    requester: int
    tid: int
    writing: bool

    payload_bytes = TID_BYTES
    traffic_class = CLASS_COMMIT
    retryable = True


@dataclass(slots=True)
class ProbeReply:
    directory: int
    tid: int
    nstid: int
    writing: bool

    payload_bytes = TID_BYTES
    traffic_class = CLASS_COMMIT
    retryable = True


@dataclass(slots=True)
class MarkMsg:
    """Pre-commit the write-set lines homed at one directory.

    ``lines`` maps line -> word flags (full mask at line granularity).
    In the write-through ablation, ``data`` carries the written word
    values (line -> {word -> value}) and is charged as commit traffic —
    the very cost the write-back design avoids.
    """

    committer: int
    tid: int
    lines: Dict[int, int]
    data: Optional[Dict[int, Dict[int, int]]] = None
    attempt: int = 0

    traffic_class = CLASS_COMMIT
    retryable = True

    @property
    def payload_bytes(self) -> int:
        size = TID_BYTES + len(self.lines) * (ADDR_BYTES + FLAG_BYTES)
        if self.data:
            size += sum(4 * len(words) for words in self.data.values())
        return size


@dataclass(slots=True)
class MarkAck:
    directory: int
    tid: int
    attempt: int = 0

    payload_bytes = TID_BYTES
    traffic_class = CLASS_COMMIT
    retryable = True


@dataclass(slots=True)
class CommitMsg:
    """Gang-upgrade this TID's marked lines to owned."""

    committer: int
    tid: int
    attempt: int = 0

    payload_bytes = TID_BYTES
    traffic_class = CLASS_COMMIT
    retryable = True


@dataclass(slots=True)
class CommitAck:
    directory: int
    tid: int
    attempt: int = 0

    payload_bytes = TID_BYTES
    traffic_class = CLASS_COMMIT
    retryable = True


@dataclass(slots=True)
class AbortMsg:
    """Gang-clear this TID's marks.

    Normally the abort also counts as a skip so the directory can advance
    past the TID.  A *retained* abort (starvation avoidance, Section 3.3)
    clears the marks but keeps the TID unserved: the transaction will
    retry its commit under the same TID, which ages into the lowest TID in
    the system and therefore cannot be violated forever.
    """

    committer: int
    tid: int
    retain: bool = False
    attempt: int = 0
    want_ack: bool = False

    payload_bytes = TID_BYTES
    traffic_class = CLASS_COMMIT
    retryable = True


@dataclass(slots=True)
class AbortAck:
    """Hardened protocol only: a directory cleared (or had already
    cleared) the attempt's marks."""

    directory: int
    tid: int
    attempt: int = 0

    payload_bytes = TID_BYTES
    traffic_class = CLASS_COMMIT
    retryable = True


@dataclass(slots=True)
class Invalidation:
    """A committed write: sharers drop the words and check for violation.

    ``committer`` is carried for profiling (TAPE attributes violations to
    the committing processor); the hardware message needs only the TID.
    """

    directory: int
    line: int
    word_mask: int
    tid: int
    committer: int = -1

    payload_bytes = ADDR_BYTES + TID_BYTES + FLAG_BYTES
    traffic_class = CLASS_COMMIT


@dataclass(slots=True)
class InvAck:
    """Acknowledgement; carries write-back data when the invalidated line
    was dirty at the previous owner (so its non-overwritten words are not
    lost when ownership moves)."""

    sharer: int
    line: int
    tid: int
    wb_words: Optional[Dict[int, int]] = None  # word -> value
    wb_tid: int = 0

    traffic_class = CLASS_COMMIT

    @property
    def payload_bytes(self) -> int:
        base = ADDR_BYTES + TID_BYTES
        if self.wb_words:
            base += 4 * len(self.wb_words) + FLAG_BYTES
        return base


@dataclass(slots=True)
class WriteBackMsg:
    """Committed data returning home.

    ``remove=True`` is the paper's *Write Back* (line leaves the cache,
    e.g. on eviction or a flush-data request); ``remove=False`` is *Flush*
    (data goes home but the line stays cached clean, e.g. the
    write-back-before-first-speculative-write rule).
    """

    writer: int
    line: int
    words: Dict[int, int]  # valid word -> value
    tid: int
    remove: bool

    traffic_class = CLASS_WRITEBACK

    @property
    def payload_bytes(self) -> int:
        return ADDR_BYTES + TID_BYTES + FLAG_BYTES + 4 * len(self.words)


@dataclass(slots=True)
class FlushRequest:
    """Directory asks the owner to write a line back (true sharing)."""

    directory: int
    line: int

    payload_bytes = ADDR_BYTES
    traffic_class = CLASS_OVERHEAD


# ---------------------------------------------------------------------------
# Small-scale TCC baseline messages (token-serialized, write-through,
# broadcast commit — Section 2.2's "condition 2" design)
# ---------------------------------------------------------------------------


@dataclass(slots=True)
class TokenInv:
    """Broadcast commit-address snoop: every other processor checks its
    speculative state against these lines/word flags."""

    committer: int
    tid: int
    lines: Dict[int, int]  # line -> word flags

    traffic_class = CLASS_COMMIT

    @property
    def payload_bytes(self) -> int:
        return TID_BYTES + len(self.lines) * (ADDR_BYTES + FLAG_BYTES)


@dataclass(slots=True)
class TokenInvAck:
    node: int
    tid: int

    payload_bytes = TID_BYTES
    traffic_class = CLASS_OVERHEAD


@dataclass(slots=True)
class TokenWrite:
    """Write-through commit data to one home memory."""

    committer: int
    tid: int
    lines: Dict[int, Dict[int, int]]  # line -> {word -> value}

    traffic_class = CLASS_COMMIT

    @property
    def payload_bytes(self) -> int:
        return TID_BYTES + sum(
            ADDR_BYTES + FLAG_BYTES + 4 * len(words) for words in self.lines.values()
        )


@dataclass(slots=True)
class TokenWriteAck:
    directory: int
    tid: int

    payload_bytes = TID_BYTES
    traffic_class = CLASS_OVERHEAD
