"""repro: a reproduction of "A Scalable, Non-blocking Approach to
Transactional Memory" (Chafi et al., HPCA 2007) — Scalable TCC.

Public API quickstart::

    from repro import ScalableTCCSystem, SystemConfig, app_workload

    config = SystemConfig(n_processors=16)
    system = ScalableTCCSystem(config)
    result = system.run(app_workload("barnes", scale=0.25))
    print(result.breakdown_fractions())

See README.md for the architecture overview and DESIGN.md for the
paper-to-module mapping.
"""

from repro.core import ScalableTCCSystem, SimulationResult, SystemConfig, TidVendor
from repro.faults import FaultPlan, NodeFault, PacketFault, WatchdogStall
from repro.workloads import (
    APP_PROFILES,
    SyntheticWorkload,
    Transaction,
    Workload,
    WorkloadProfile,
    app_workload,
)

__version__ = "1.0.0"

__all__ = [
    "APP_PROFILES",
    "FaultPlan",
    "NodeFault",
    "PacketFault",
    "ScalableTCCSystem",
    "SimulationResult",
    "SyntheticWorkload",
    "SystemConfig",
    "TidVendor",
    "Transaction",
    "WatchdogStall",
    "Workload",
    "WorkloadProfile",
    "app_workload",
    "__version__",
]
