"""Independent reference TM machine for differential conformance testing.

See :mod:`repro.oracle.machine` for the machine itself and
:mod:`repro.conform` for the harness that diffs it against the full
simulator.
"""

from repro.oracle.machine import (
    CommitWitness,
    OracleCommit,
    OracleResult,
    OracleTx,
    OracleViolation,
    ReferenceTM,
    program_from_schedules,
)

__all__ = [
    "CommitWitness",
    "OracleCommit",
    "OracleResult",
    "OracleTx",
    "OracleViolation",
    "ReferenceTM",
    "program_from_schedules",
]
