"""The conformance oracle: an idealized reference TM machine.

This is the *other* implementation in our differential test.  It models
the machine the paper's correctness argument describes — OCC condition 3
(Kung & Robinson): committed transactions behave as if executed serially
in TID order — with none of the things that make the real simulator hard:
no caches, no directories, no network, no speculation, no retries.  Magic
zero-latency word memory, one transaction at a time, strictly ascending
TID order.

Independence is the whole point.  This module deliberately reimplements
line/word arithmetic and serial execution rather than importing
``repro.memory``, ``repro.processor`` or ``repro.verify``; the only
shared code is the workload *data model* (``Transaction`` / ``BARRIER``),
which both machines must agree on to run the same program at all.  A bug
that corrupts the simulator and its own commit-log replay the same way
cannot also corrupt this machine.

The oracle consumes two things:

* the *program* — per-processor transaction schedules with barrier
  epochs (as :class:`OracleTx` records, see
  :func:`program_from_schedules`);
* the *commit witness* — the (tid, tx_id, proc) triples the real machine
  claims to have committed, and nothing else (no data values: those are
  recomputed here from the program).

It first checks the witness is structurally possible (every program
transaction commits exactly once, TIDs are unique, TID order respects
per-processor program order and barrier epochs), then executes the
program serially in TID order, producing per-transaction read/write
witnesses and a final memory image for the differ to compare.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Sequence, Tuple

from repro.workloads.base import BARRIER, Transaction

Op = Tuple


class OracleViolation(Exception):
    """The observed commit history is structurally impossible.

    ``kind`` is a stable machine-readable tag (the differ surfaces it as
    the mismatch category); ``detail`` is the human-readable diagnosis.
    """

    def __init__(self, kind: str, detail: str) -> None:
        super().__init__(f"{kind}: {detail}")
        self.kind = kind
        self.detail = detail


@dataclass(frozen=True)
class OracleTx:
    """One program transaction, located in the program's structure."""

    tx_id: int
    proc: int
    #: Position in the owning processor's program order (0-based).
    index: int
    #: Barrier epoch: number of barriers before this transaction.
    epoch: int
    ops: Tuple[Op, ...]


@dataclass(frozen=True)
class CommitWitness:
    """One commit the real machine claims: identity only, no data."""

    tid: int
    tx_id: int
    proc: int


@dataclass
class OracleCommit:
    """What the reference machine computed for one committed transaction."""

    tid: int
    tx_id: int
    proc: int
    #: (line, word, value) per ld/add op, in op order — the same witness
    #: convention the simulator's CommitRecord.reads uses.
    reads: List[Tuple[int, int, int]]
    #: (line, word, value) per st/add op, in op order.
    writes: List[Tuple[int, int, int]]


@dataclass
class OracleResult:
    """Committed history plus the final memory image."""

    commits: List[OracleCommit]
    #: (line, word) -> value; words never written are absent (== 0).
    memory: Dict[Tuple[int, int], int]

    def commit_by_tx(self) -> Dict[int, OracleCommit]:
        return {commit.tx_id: commit for commit in self.commits}


def program_from_schedules(
    schedules: Sequence[Sequence[object]],
) -> List[OracleTx]:
    """Flatten per-processor schedules (Transaction / BARRIER items) into
    located :class:`OracleTx` records."""
    txs: List[OracleTx] = []
    seen: Dict[int, int] = {}
    for proc, items in enumerate(schedules):
        epoch = 0
        index = 0
        for item in items:
            if item is BARRIER:
                epoch += 1
                continue
            if not isinstance(item, Transaction):
                raise TypeError(f"schedule item {item!r} is neither a "
                                f"Transaction nor BARRIER")
            if item.tx_id in seen:
                raise ValueError(
                    f"tx_id {item.tx_id} appears on processors "
                    f"{seen[item.tx_id]} and {proc}"
                )
            seen[item.tx_id] = proc
            txs.append(OracleTx(
                tx_id=item.tx_id, proc=proc, index=index, epoch=epoch,
                ops=tuple(tuple(op) for op in item.ops),
            ))
            index += 1
    return txs


class _MagicMemory:
    """Zero-latency flat word store; every word starts at zero."""

    def __init__(self) -> None:
        self.words: Dict[Tuple[int, int], int] = {}

    def read(self, line: int, word: int) -> int:
        return self.words.get((line, word), 0)

    def write(self, line: int, word: int, value: int) -> None:
        self.words[(line, word)] = value


class ReferenceTM:
    """Executes a program serially in TID order on magic memory."""

    def __init__(self, line_size: int = 32, word_size: int = 4) -> None:
        if line_size <= 0 or line_size & (line_size - 1):
            raise ValueError(f"line size must be a power of two, got {line_size}")
        if word_size <= 0 or word_size & (word_size - 1):
            raise ValueError(f"word size must be a power of two, got {word_size}")
        if word_size > line_size:
            raise ValueError("word size cannot exceed line size")
        self._line_shift = line_size.bit_length() - 1
        self._word_shift = word_size.bit_length() - 1
        self._word_mask = (line_size // word_size) - 1

    # -- address arithmetic (reimplemented on purpose; see module doc) ----

    def _locate(self, addr: int) -> Tuple[int, int]:
        return (addr >> self._line_shift,
                (addr >> self._word_shift) & self._word_mask)

    # -- the witness checks ------------------------------------------------

    def check_witness(
        self,
        program: Sequence[OracleTx],
        witness: Sequence[CommitWitness],
    ) -> List[CommitWitness]:
        """Validate structure; return the witness sorted by TID.

        Raises :class:`OracleViolation` on the first impossibility.
        """
        by_id = {tx.tx_id: tx for tx in program}
        tids_seen: Dict[int, int] = {}
        committed: Dict[int, int] = {}
        for entry in witness:
            if entry.tid in tids_seen:
                raise OracleViolation(
                    "duplicate-tid",
                    f"TID {entry.tid} claimed by tx {tids_seen[entry.tid]} "
                    f"and tx {entry.tx_id}",
                )
            tids_seen[entry.tid] = entry.tx_id
            if entry.tx_id not in by_id:
                raise OracleViolation(
                    "phantom-commit",
                    f"committed tx_id {entry.tx_id} is not in the program",
                )
            if entry.tx_id in committed:
                raise OracleViolation(
                    "duplicate-commit",
                    f"tx {entry.tx_id} committed under TIDs "
                    f"{committed[entry.tx_id]} and {entry.tid}",
                )
            committed[entry.tx_id] = entry.tid
            expected_proc = by_id[entry.tx_id].proc
            if entry.proc != expected_proc:
                raise OracleViolation(
                    "wrong-proc",
                    f"tx {entry.tx_id} committed by P{entry.proc}, "
                    f"program places it on P{expected_proc}",
                )
        missing = [tx.tx_id for tx in program if tx.tx_id not in committed]
        if missing:
            raise OracleViolation(
                "missing-commit",
                f"{len(missing)} program transaction(s) never committed "
                f"(first: tx {missing[0]})",
            )

        ordered = sorted(witness, key=lambda entry: entry.tid)
        last_index: Dict[int, int] = {}
        max_epoch = -1
        max_epoch_tid = -1
        for entry in ordered:
            tx = by_id[entry.tx_id]
            prev = last_index.get(tx.proc)
            if prev is not None and tx.index <= prev:
                raise OracleViolation(
                    "program-order",
                    f"P{tx.proc} tx {entry.tx_id} (program index {tx.index}) "
                    f"has TID {entry.tid} after a later program index {prev}",
                )
            last_index[tx.proc] = tx.index
            if tx.epoch < max_epoch:
                raise OracleViolation(
                    "epoch-order",
                    f"tx {entry.tx_id} of barrier epoch {tx.epoch} has "
                    f"TID {entry.tid} above epoch-{max_epoch} TID "
                    f"{max_epoch_tid}",
                )
            if tx.epoch > max_epoch:
                max_epoch = tx.epoch
                max_epoch_tid = entry.tid
        return ordered

    # -- execution ---------------------------------------------------------

    def execute(
        self,
        program: Sequence[OracleTx],
        witness: Sequence[CommitWitness],
    ) -> OracleResult:
        """Run the program serially in TID order; return its history."""
        ordered = self.check_witness(program, witness)
        by_id = {tx.tx_id: tx for tx in program}
        memory = _MagicMemory()
        commits: List[OracleCommit] = []
        for entry in ordered:
            tx = by_id[entry.tx_id]
            reads: List[Tuple[int, int, int]] = []
            writes: List[Tuple[int, int, int]] = []
            for op in tx.ops:
                kind = op[0]
                if kind == "c":
                    continue
                line, word = self._locate(op[1])
                if kind == "ld":
                    reads.append((line, word, memory.read(line, word)))
                elif kind == "st":
                    memory.write(line, word, op[2])
                    writes.append((line, word, op[2]))
                elif kind == "add":
                    value = memory.read(line, word)
                    reads.append((line, word, value))
                    memory.write(line, word, value + op[2])
                    writes.append((line, word, value + op[2]))
                else:
                    raise OracleViolation(
                        "bad-op", f"tx {tx.tx_id} has unknown op {op!r}"
                    )
            commits.append(OracleCommit(
                tid=entry.tid, tx_id=tx.tx_id, proc=tx.proc,
                reads=reads, writes=writes,
            ))
        return OracleResult(commits=commits, memory=memory.words)
