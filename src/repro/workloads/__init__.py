"""Workloads: transactions, generators, and the paper's application suite.

The paper runs real binaries (SPEC CPU2000, SPLASH-2, SPECjbb2000,
CEARCH) converted to continuous transactions.  Those binaries are not
reproducible here, so this package provides the substitution described in
DESIGN.md: parameterized synthetic workloads whose per-transaction
characteristics (Table 3: transaction size, read-/write-set size,
operations per word written, directories touched, sharing and conflict
behaviour, barrier structure) are matched to each application.
"""

from repro.workloads.base import (
    BARRIER,
    BarrierPoint,
    Transaction,
    TransactionSchedule,
    Workload,
)
from repro.workloads.synthetic import SyntheticWorkload, WorkloadProfile
from repro.workloads.apps import APP_PROFILES, app_workload
from repro.workloads.micro import (
    CounterWorkload,
    FalseSharingWorkload,
    PrivateWorkload,
    ProducerConsumerWorkload,
    StarvationWorkload,
)
from repro.workloads.tm_patterns import (
    ListSetWorkload,
    MatrixTileWorkload,
    QueueWorkload,
)
from repro.workloads.trace import TraceWorkload, save_trace

__all__ = [
    "ListSetWorkload",
    "MatrixTileWorkload",
    "QueueWorkload",
    "TraceWorkload",
    "save_trace",
    "APP_PROFILES",
    "BARRIER",
    "BarrierPoint",
    "CounterWorkload",
    "FalseSharingWorkload",
    "PrivateWorkload",
    "ProducerConsumerWorkload",
    "StarvationWorkload",
    "SyntheticWorkload",
    "Transaction",
    "TransactionSchedule",
    "Workload",
    "WorkloadProfile",
    "app_workload",
]
