"""Microbenchmark workloads.

Small targeted workloads used by unit/integration tests, examples and the
ablation benches: shared counters (high conflict, data-dependent RMW),
fully private work (zero conflict), false sharing (word- vs
line-granularity), producer/consumer flag communication (true sharing and
owner forwarding), and a starvation scenario (one long transaction versus
a storm of small conflicting committers).
"""

from __future__ import annotations

import random
from typing import Iterator, List

from repro.workloads.base import BARRIER, Transaction, Workload

PAGE = 4096


def _tx_id(proc: int, index: int) -> int:
    return proc * 1_000_000 + index


class CounterWorkload(Workload):
    """Every processor increments randomly chosen shared counters.

    The increments are ``add`` ops (load + store of the loaded value), so
    any lost update or stale read breaks the serial replay check.  Each
    counter sits on its own page so counters spread across directories.
    """

    name = "counters"

    def __init__(
        self,
        n_counters: int = 4,
        increments_per_proc: int = 10,
        compute: int = 50,
        seed: int = 0,
        base_addr: int = 1 << 20,
    ) -> None:
        self.n_counters = n_counters
        self.increments_per_proc = increments_per_proc
        self.compute = compute
        self.seed = seed
        self.base_addr = base_addr

    def counter_addr(self, index: int) -> int:
        return self.base_addr + index * PAGE

    def expected_total(self, n_procs: int) -> int:
        return n_procs * self.increments_per_proc

    def schedule(self, proc: int, n_procs: int) -> Iterator:
        rng = random.Random(self.seed * 7919 + proc)
        for i in range(self.increments_per_proc):
            counter = rng.randrange(self.n_counters)
            ops = [
                ("c", self.compute),
                ("add", self.counter_addr(counter), 1),
            ]
            yield Transaction(_tx_id(proc, i), ops, label=f"inc{counter}")


class PrivateWorkload(Workload):
    """Each processor reads and writes only its own pages: the
    embarrassingly parallel case (zero conflicts, zero remote sharing
    after first touch)."""

    name = "private"

    def __init__(
        self,
        tx_per_proc: int = 10,
        lines_per_tx: int = 4,
        compute: int = 100,
        line_size: int = 32,
        seed: int = 0,
    ) -> None:
        self.tx_per_proc = tx_per_proc
        self.lines_per_tx = lines_per_tx
        self.compute = compute
        self.line_size = line_size
        self.seed = seed

    def schedule(self, proc: int, n_procs: int) -> Iterator:
        base = (1 + proc) * (64 * PAGE)
        rng = random.Random(self.seed * 31 + proc)
        for i in range(self.tx_per_proc):
            ops: List = [("c", self.compute)]
            for j in range(self.lines_per_tx):
                addr = base + ((i * self.lines_per_tx + j) % 512) * self.line_size
                ops.append(("ld", addr))
                ops.append(("st", addr, rng.randrange(1 << 16)))
            yield Transaction(_tx_id(proc, i), ops)


class FalseSharingWorkload(Workload):
    """Processors write *different words of the same lines*.

    With word-granularity speculative state there are no true conflicts;
    with line-granularity tracking every commit violates the other
    writers — the A3 ablation.
    """

    name = "false-sharing"

    def __init__(
        self,
        n_lines: int = 2,
        tx_per_proc: int = 8,
        compute: int = 50,
        line_size: int = 32,
        word_size: int = 4,
        base_addr: int = 1 << 22,
    ) -> None:
        self.n_lines = n_lines
        self.tx_per_proc = tx_per_proc
        self.compute = compute
        self.line_size = line_size
        self.word_size = word_size
        self.base_addr = base_addr

    def schedule(self, proc: int, n_procs: int) -> Iterator:
        words_per_line = self.line_size // self.word_size
        word = proc % words_per_line
        for i in range(self.tx_per_proc):
            line_index = i % self.n_lines
            addr = (
                self.base_addr
                + line_index * self.line_size
                + word * self.word_size
            )
            ops = [("c", self.compute), ("add", addr, 1)]
            yield Transaction(_tx_id(proc, i), ops)


class ProducerConsumerWorkload(Workload):
    """Barrier-phased neighbour communication.

    In each phase every processor publishes a value, then (after a
    barrier) reads its left neighbour's value — exercising commit
    invalidations, owner forwarding, and write-backs on every phase.
    """

    name = "producer-consumer"

    def __init__(self, phases: int = 4, compute: int = 50, base_addr: int = 1 << 23) -> None:
        self.phases = phases
        self.compute = compute
        self.base_addr = base_addr

    def flag_addr(self, proc: int) -> int:
        return self.base_addr + proc * PAGE

    def schedule(self, proc: int, n_procs: int) -> Iterator:
        left = (proc - 1) % n_procs
        index = 0
        for phase in range(self.phases):
            produce = [
                ("c", self.compute),
                ("st", self.flag_addr(proc), phase * 1000 + proc + 1),
            ]
            yield Transaction(_tx_id(proc, index), produce, label=f"produce{phase}")
            index += 1
            yield BARRIER
            consume = [("c", self.compute), ("ld", self.flag_addr(left))]
            yield Transaction(_tx_id(proc, index), consume, label=f"consume{phase}")
            index += 1
            yield BARRIER


class StarvationWorkload(Workload):
    """One long reader transaction against a storm of small writers.

    Without TID retention the long transaction on processor 0 keeps
    getting violated by the writers; the retention policy eventually
    gives it the lowest TID in the system, after which nothing can
    violate it (Section 3.3, forward-progress guarantee).
    """

    name = "starvation"

    def __init__(
        self,
        hot_lines: int = 4,
        long_compute: int = 2000,
        writer_txs: int = 30,
        writer_compute: int = 10,
        line_size: int = 32,
        base_addr: int = 1 << 24,
    ) -> None:
        self.hot_lines = hot_lines
        self.long_compute = long_compute
        self.writer_txs = writer_txs
        self.writer_compute = writer_compute
        self.line_size = line_size
        self.base_addr = base_addr

    def hot_addr(self, index: int) -> int:
        # All hot lines on one page so they share a home directory.
        return self.base_addr + index * self.line_size

    def schedule(self, proc: int, n_procs: int) -> Iterator:
        if proc == 0:
            # The victim: reads every hot line around a long computation.
            ops: List = []
            for index in range(self.hot_lines):
                ops.append(("ld", self.hot_addr(index)))
                ops.append(("c", self.long_compute // self.hot_lines))
            ops.append(("st", self.base_addr + 63 * self.line_size, 777))
            yield Transaction(_tx_id(proc, 0), ops, label="long-reader")
        else:
            rng = random.Random(1234 + proc)
            for i in range(self.writer_txs):
                index = rng.randrange(self.hot_lines)
                ops = [
                    ("c", self.writer_compute),
                    ("add", self.hot_addr(index), 1),
                ]
                yield Transaction(_tx_id(proc, i), ops, label="writer")
