"""Trace-file workloads: save and load transaction schedules as JSON.

Lets users bring their own workloads (e.g. extracted from real program
traces) and makes any generated schedule reproducible as an artefact:

    from repro.workloads import SyntheticWorkload, trace

    wl = app_workload("barnes", scale=0.1)
    trace.save_trace("barnes.json", wl, n_procs=8)
    replay = trace.TraceWorkload.load("barnes.json")
    system.run(replay)

Format (versioned):

    {
      "version": 1,
      "n_procs": 8,
      "name": "barnes",
      "schedules": [                  # one list per processor
        [ {"tx": 123, "label": "...",
           "ops": [["c", 100], ["ld", 4096], ["st", 8192, 7],
                   ["add", 4096, 1]]},
          "BARRIER",
          ... ],
        ...
      ]
    }
"""

from __future__ import annotations

import json
from typing import Any, Dict, List

from repro.workloads.base import BARRIER, Transaction, Workload

FORMAT_VERSION = 1


class TraceFormatError(ValueError):
    """The trace file is malformed or from an unknown version."""


def _encode_item(item) -> Any:
    if item is BARRIER:
        return "BARRIER"
    return {
        "tx": item.tx_id,
        "label": item.label,
        "ops": [list(op) for op in item.ops],
    }


def _decode_item(raw) -> Any:
    if raw == "BARRIER":
        return BARRIER
    if not isinstance(raw, dict) or "tx" not in raw or "ops" not in raw:
        raise TraceFormatError(f"bad schedule item: {raw!r}")
    ops = [tuple(op) for op in raw["ops"]]
    return Transaction(int(raw["tx"]), ops, label=raw.get("label", ""))


def save_trace(path: str, workload: Workload, n_procs: int,
               name: str = "") -> None:
    """Materialize ``workload`` for ``n_procs`` processors into a file."""
    schedules = [
        [_encode_item(item) for item in workload.schedule(proc, n_procs)]
        for proc in range(n_procs)
    ]
    document = {
        "version": FORMAT_VERSION,
        "n_procs": n_procs,
        "name": name or getattr(workload, "name", "trace"),
        "schedules": schedules,
    }
    with open(path, "w") as handle:
        json.dump(document, handle)


class TraceWorkload(Workload):
    """A workload replayed from a saved trace."""

    def __init__(self, document: Dict) -> None:
        if document.get("version") != FORMAT_VERSION:
            raise TraceFormatError(
                f"unsupported trace version {document.get('version')!r}"
            )
        self.name = document.get("name", "trace")
        self.n_procs = int(document["n_procs"])
        self._schedules: List[List[Any]] = [
            [_decode_item(raw) for raw in schedule]
            for schedule in document["schedules"]
        ]

    @classmethod
    def load(cls, path: str) -> "TraceWorkload":
        with open(path) as handle:
            return cls(json.load(handle))

    def schedule(self, proc: int, n_procs: int):
        if n_procs != self.n_procs:
            raise ValueError(
                f"trace was recorded for {self.n_procs} processors, "
                f"system has {n_procs}"
            )
        return iter(self._schedules[proc])
