"""Transaction and workload abstractions.

A transaction is a straight-line sequence of operations over byte
addresses (the granularity the paper's processors see):

* ``("c", n)``          — n cycles of non-memory computation (CPI = 1, so
  also n instructions);
* ``("ld", addr)``      — load a word;
* ``("st", addr, v)``   — store the value ``v``;
* ``("add", addr, d)``  — load, add ``d``, store (a data-dependent
  read-modify-write; the strongest probe of serializability).

A workload assigns each processor a *schedule*: an iterable of
transactions interleaved with :data:`BARRIER` sentinels.  Every processor
must see the same number of barriers (the paper's benchmarks are
barrier-structured; code between barriers became transactions).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator, List, Sequence, Tuple, Union

Op = Tuple


class BarrierPoint:
    """Sentinel: all processors synchronize here."""

    _instance = None

    def __new__(cls):
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self) -> str:
        return "BARRIER"


BARRIER = BarrierPoint()

_VALID_OPS = {"c", "ld", "st", "add"}


@dataclass
class Transaction:
    """One atomic unit of work."""

    tx_id: int
    ops: Sequence[Op]
    label: str = ""

    def __post_init__(self) -> None:
        for op in self.ops:
            if not op or op[0] not in _VALID_OPS:
                raise ValueError(f"bad transaction op {op!r}")

    @property
    def instructions(self) -> int:
        """Instruction count at CPI=1: compute cycles plus memory ops
        (an ``add`` is a load and a store)."""
        total = 0
        for op in self.ops:
            kind = op[0]
            if kind == "c":
                total += op[1]
            elif kind == "add":
                total += 2
            else:
                total += 1
        return total

    def read_addrs(self) -> List[int]:
        return [op[1] for op in self.ops if op[0] in ("ld", "add")]

    def write_addrs(self) -> List[int]:
        return [op[1] for op in self.ops if op[0] in ("st", "add")]

    def __repr__(self) -> str:
        return f"Transaction({self.tx_id}, {len(self.ops)} ops{', ' + self.label if self.label else ''})"


ScheduleItem = Union[Transaction, BarrierPoint]
TransactionSchedule = Iterable[ScheduleItem]


class Workload:
    """Base class: a partition of transactions across processors."""

    name = "workload"

    def schedule(self, proc: int, n_procs: int) -> TransactionSchedule:
        """The ordered work items for processor ``proc`` of ``n_procs``."""
        raise NotImplementedError

    def schedules(self, n_procs: int) -> List[List[ScheduleItem]]:
        """All schedules, materialized (used by tests and the verifier)."""
        return [list(self.schedule(p, n_procs)) for p in range(n_procs)]

    def validate(self, n_procs: int) -> None:
        """Check the barrier structure is consistent across processors."""
        barrier_counts = set()
        seen_ids = set()
        for items in self.schedules(n_procs):
            barrier_counts.add(sum(1 for item in items if item is BARRIER))
            for item in items:
                if isinstance(item, Transaction):
                    if item.tx_id in seen_ids:
                        raise ValueError(f"duplicate tx_id {item.tx_id}")
                    seen_ids.add(item.tx_id)
        if len(barrier_counts) > 1:
            raise ValueError(
                f"inconsistent barrier counts across processors: {barrier_counts}"
            )
