"""Parameterized synthetic transactional workloads.

This is the substitution for the paper's benchmark binaries: a generator
that produces transaction schedules whose statistics match a target
profile.  The knobs correspond directly to the per-application
characteristics of Table 3 and the behavioural notes of Section 4.2:

* ``tx_instructions``          — mean non-memory work per transaction
  (CPI=1, so cycles == instructions);
* ``reads_per_tx`` / ``writes_per_tx`` — read-/write-set sizes;
* ``shared_fraction``          — how many reads hit the shared pool
  (communication);
* ``write_shared_fraction``    — how many writes hit the shared pool
  (true conflicts + commit invalidation traffic);
* ``hot_lines`` / ``conflict_skew`` — size and skew of the shared pool:
  small, skewed pools produce frequent violations;
* ``spread_pages``             — over how many pages the shared pool is
  scattered (≈ directories touched per commit);
* ``barrier_every``            — transactions between barriers (load
  imbalance and idle time);
* ``rmw_fraction``             — fraction of shared writes that are
  data-dependent read-modify-writes.

The *total* transaction count is fixed; processors split it evenly, so
speedup measurements against the 1-processor run are meaningful.
"""

from __future__ import annotations

import math
import random
from bisect import bisect
from dataclasses import dataclass, field, replace
from itertools import accumulate
from typing import Iterator, List, Sequence

from repro.workloads.base import BARRIER, Transaction, Workload

PAGE = 4096


@dataclass(frozen=True)
class WorkloadProfile:
    """Statistical shape of one application's transactions."""

    name: str
    total_transactions: int = 256
    tx_instructions: int = 1000
    tx_instructions_cv: float = 0.3  # coefficient of variation
    reads_per_tx: int = 8
    writes_per_tx: int = 4
    shared_fraction: float = 0.2
    write_shared_fraction: float = 0.1
    hot_lines: int = 256
    conflict_skew: float = 1.0  # zipf exponent over the shared pool
    spread_pages: int = 8
    private_lines: int = 256
    barrier_every: int = 0
    rmw_fraction: float = 0.5
    seed: int = 42

    def scaled(self, factor: float) -> "WorkloadProfile":
        """Same shape, different total volume (for quick test runs)."""
        return replace(
            self,
            total_transactions=max(1, int(self.total_transactions * factor)),
        )


class SyntheticWorkload(Workload):
    """Generates deterministic schedules matching a profile."""

    def __init__(self, profile: WorkloadProfile, line_size: int = 32, word_size: int = 4):
        self.profile = profile
        self.line_size = line_size
        self.word_size = word_size
        self.words_per_line = line_size // word_size
        self.name = profile.name
        # Shared pool layout: hot lines scattered over spread_pages pages,
        # starting high enough to avoid private regions.
        self._shared_base = 1 << 28
        self._zipf_weights = self._make_zipf(profile.hot_lines, profile.conflict_skew)
        # Inlined rng.choices(range(n), weights=...): precompute the
        # cumulative weights once and draw with a single rng.random() +
        # bisect — the exact draw sequence choices() consumes.
        self._zipf_cum = list(accumulate(self._zipf_weights))
        self._zipf_total = self._zipf_cum[-1] + 0.0
        self._zipf_hi = profile.hot_lines - 1

    @staticmethod
    def _make_zipf(n: int, skew: float) -> List[float]:
        weights = [1.0 / (i + 1) ** skew for i in range(n)]
        total = sum(weights)
        return [w / total for w in weights]

    # -- address helpers --------------------------------------------------

    def shared_addr(self, hot_index: int, rng: random.Random) -> int:
        page = hot_index % self.profile.spread_pages
        line_in_page = hot_index // self.profile.spread_pages
        base = self._shared_base + page * PAGE + line_in_page * self.line_size
        word = rng.randrange(self.words_per_line)
        return base + word * self.word_size

    def private_addr(self, proc: int, rng: random.Random) -> int:
        base = (1 + proc) * (1 << 22)
        line = rng.randrange(self.profile.private_lines)
        word = rng.randrange(self.words_per_line)
        return base + line * self.line_size + word * self.word_size

    def _pick_hot(self, rng: random.Random) -> int:
        return bisect(self._zipf_cum, rng.random() * self._zipf_total, 0, self._zipf_hi)

    # -- schedule generation ------------------------------------------------

    def tx_count_for(self, proc: int, n_procs: int) -> int:
        total = self.profile.total_transactions
        return total // n_procs + (1 if proc < total % n_procs else 0)

    def schedule(self, proc: int, n_procs: int) -> Iterator:
        profile = self.profile
        rng = random.Random(profile.seed * 1_000_003 + proc)
        count = self.tx_count_for(proc, n_procs)
        max_count = self.tx_count_for(0, n_procs)
        since_barrier = 0
        for i in range(count):
            yield self._make_tx(proc, i, rng)
            since_barrier += 1
            if profile.barrier_every and since_barrier >= profile.barrier_every:
                since_barrier = 0
                yield BARRIER
        if profile.barrier_every:
            # Processors with fewer transactions still join every barrier.
            barriers_emitted = count // profile.barrier_every
            total_barriers = max_count // profile.barrier_every
            for _ in range(total_barriers - barriers_emitted):
                yield BARRIER

    def _make_tx(self, proc: int, index: int, rng: random.Random) -> Transaction:
        profile = self.profile
        sigma = max(1.0, profile.tx_instructions * profile.tx_instructions_cv)
        compute = max(10, int(rng.gauss(profile.tx_instructions, sigma)))

        ops: List = []
        accesses: List = []
        for _ in range(profile.reads_per_tx):
            if rng.random() < profile.shared_fraction:
                accesses.append(("ld", self.shared_addr(self._pick_hot(rng), rng)))
            else:
                accesses.append(("ld", self.private_addr(proc, rng)))
        for w in range(profile.writes_per_tx):
            if rng.random() < profile.write_shared_fraction:
                addr = self.shared_addr(self._pick_hot(rng), rng)
                if rng.random() < profile.rmw_fraction:
                    accesses.append(("add", addr, 1))
                else:
                    accesses.append(("st", addr, rng.randrange(1, 1 << 16)))
            else:
                addr = self.private_addr(proc, rng)
                accesses.append(("st", addr, rng.randrange(1, 1 << 16)))
        rng.shuffle(accesses)

        # Interleave the compute between the memory accesses.
        slices = len(accesses) + 1
        chunk = compute // slices
        remainder = compute - chunk * (slices - 1)
        for access in accesses:
            if chunk:
                ops.append(("c", chunk))
            ops.append(access)
        ops.append(("c", max(1, remainder)))
        return Transaction(proc * 1_000_000 + index, ops, label=profile.name)
