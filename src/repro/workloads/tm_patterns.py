"""Classic transactional-memory data-structure patterns.

A workload pack of the access patterns the TM literature benchmarks
with, expressed as address traces over flat memory layouts:

* :class:`ListSetWorkload` — a sorted linked-list set: lookups read a
  prefix of nodes; inserts also write one node and the predecessor's
  next pointer.  Conflict probability grows with list length (long
  read prefixes overlap every writer) — the classic "lists are hard
  for TM" behaviour.
* :class:`QueueWorkload` — a shared FIFO with head/tail counters:
  enqueues contend on the tail, dequeues on the head; the two ends
  conflict only when the queue is short.  Head/tail live on separate
  lines so word granularity keeps the ends independent.
* :class:`MatrixTileWorkload` — block-partitioned matrix update with
  halo reads: each processor owns tiles but reads neighbour edges, a
  stencil-style scientific pattern (mostly-private with structured
  boundary sharing).

All addresses are deterministic per (seed, processor), so every run is
replay-verifiable like the rest of the suite.
"""

from __future__ import annotations

import random
from typing import Iterator, List

from repro.workloads.base import BARRIER, Transaction, Workload

LINE = 32
PAGE = 4096


class ListSetWorkload(Workload):
    """Sorted linked-list set operations.

    The list's N nodes live one per cache line.  A lookup(key) reads
    nodes 0..k (the traversal prefix); an insert(key) reads the prefix
    and writes node k's next pointer plus a fresh node.  Transactions
    conflict when one's traversal prefix covers another's updated link —
    exactly the list pathology the TM literature discusses.
    """

    name = "list-set"

    def __init__(
        self,
        list_length: int = 24,
        ops_per_proc: int = 12,
        insert_ratio: float = 0.3,
        compute_per_node: int = 15,
        seed: int = 5,
        base_addr: int = 1 << 28,
    ) -> None:
        self.list_length = list_length
        self.ops_per_proc = ops_per_proc
        self.insert_ratio = insert_ratio
        self.compute_per_node = compute_per_node
        self.seed = seed
        self.base_addr = base_addr

    def node_addr(self, index: int) -> int:
        return self.base_addr + index * LINE

    def free_node_addr(self, proc: int, op: int) -> int:
        # freshly allocated nodes: per-processor pages beyond the list
        return self.base_addr + PAGE * (4 + proc) + op * LINE

    def schedule(self, proc: int, n_procs: int) -> Iterator:
        rng = random.Random(self.seed * 4421 + proc)
        for i in range(self.ops_per_proc):
            depth = rng.randrange(1, self.list_length)
            ops: List = []
            for node in range(depth):
                ops.append(("ld", self.node_addr(node)))  # read next ptr
                ops.append(("c", self.compute_per_node))
            if rng.random() < self.insert_ratio:
                # link a fresh node after the predecessor
                ops.append(("st", self.free_node_addr(proc, i), depth))
                ops.append(("add", self.node_addr(depth - 1) + 4, 1))
                label = f"insert@{depth}"
            else:
                label = f"lookup@{depth}"
            yield Transaction(proc * 100_000 + i, ops, label=label)


class QueueWorkload(Workload):
    """A shared FIFO: head and tail counters on separate lines.

    Enqueuers increment the tail and write a slot; dequeuers increment
    the head and read a slot.  Tail/tail and head/head operations
    conflict; enqueue/dequeue do not (distinct lines) unless they pick
    the same slot.
    """

    name = "queue"

    def __init__(
        self,
        ops_per_proc: int = 10,
        n_slots: int = 256,
        compute: int = 40,
        seed: int = 9,
        base_addr: int = 1 << 29,
    ) -> None:
        self.ops_per_proc = ops_per_proc
        self.n_slots = n_slots
        self.compute = compute
        self.seed = seed
        self.base_addr = base_addr

    @property
    def head_addr(self) -> int:
        return self.base_addr

    @property
    def tail_addr(self) -> int:
        return self.base_addr + LINE

    def slot_addr(self, index: int) -> int:
        return self.base_addr + PAGE + (index % self.n_slots) * 4

    def schedule(self, proc: int, n_procs: int) -> Iterator:
        rng = random.Random(self.seed * 7573 + proc)
        # even processors enqueue, odd processors dequeue
        enqueuer = proc % 2 == 0
        for i in range(self.ops_per_proc):
            slot = rng.randrange(self.n_slots)
            if enqueuer:
                ops = [
                    ("c", self.compute),
                    ("add", self.tail_addr, 1),
                    ("st", self.slot_addr(slot), proc * 1000 + i + 1),
                ]
                label = "enqueue"
            else:
                ops = [
                    ("c", self.compute),
                    ("add", self.head_addr, 1),
                    ("ld", self.slot_addr(slot)),
                ]
                label = "dequeue"
            yield Transaction(proc * 100_000 + i, ops, label=label)


class MatrixTileWorkload(Workload):
    """Stencil-style tile updates with neighbour-halo reads.

    Processor p owns tile p (a page of lines).  Each step it reads its
    own tile plus the first line of each neighbour's tile (the halo),
    then rewrites its own tile — mostly private, with read-only
    boundary sharing that generates sharers but no conflicts.  Barriers
    separate the steps, as in the SPLASH/SPEC kernels.
    """

    name = "matrix-tiles"

    def __init__(
        self,
        steps: int = 3,
        lines_per_tile: int = 8,
        compute_per_line: int = 50,
        base_addr: int = 1 << 30,
    ) -> None:
        self.steps = steps
        self.lines_per_tile = lines_per_tile
        self.compute_per_line = compute_per_line
        self.base_addr = base_addr

    def tile_addr(self, proc: int, line: int) -> int:
        return self.base_addr + proc * PAGE + line * LINE

    def schedule(self, proc: int, n_procs: int) -> Iterator:
        left = (proc - 1) % n_procs
        right = (proc + 1) % n_procs
        for step in range(self.steps):
            ops: List = []
            ops.append(("ld", self.tile_addr(left, 0)))    # halo reads
            ops.append(("ld", self.tile_addr(right, 0)))
            for line in range(self.lines_per_tile):
                ops.append(("ld", self.tile_addr(proc, line)))
                ops.append(("c", self.compute_per_line))
                ops.append(("st", self.tile_addr(proc, line), step * 100 + line))
            yield Transaction(
                proc * 100_000 + step, ops, label=f"step{step}"
            )
            yield BARRIER
