"""The paper's application suite as synthetic profiles.

Table 3's absolute numbers are mostly destroyed by OCR, so these profiles
are reconstructed from the prose of Section 4.2 (see DESIGN.md §6 for the
mapping).  What matters for reproducing the evaluation *shape* is the
relative structure:

* SPECjbb2000, SVM Classify, swim, tomcatv: large transactions, a very
  high ops-per-word-written ratio, and little or no inter-node
  communication — these must scale near-linearly and shrug off link
  latency.
* barnes, water-spatial: moderate transactions with modest communication
  — good scaling.
* water-nsquared: like water-spatial but with more communication and
  synchronization — scales a bit worse.
* radix: very large transactions whose write-sets span every directory —
  commit cost is high but fully amortized.
* Cluster GA: genetic algorithm with skewed conflicts — violation-bound
  at low processor counts.
* equake: tiny transactions with heavy communication — commit time grows
  with processor count, latency-sensitive.
* volrend: flag communication through small transactions — the lowest
  ops-per-word ratio, probe/commit bound, latency-sensitive.
"""

from __future__ import annotations

from typing import Dict

from repro.workloads.synthetic import SyntheticWorkload, WorkloadProfile

APP_PROFILES: Dict[str, WorkloadProfile] = {
    "barnes": WorkloadProfile(
        name="barnes",
        total_transactions=256,
        tx_instructions=2000,
        reads_per_tx=10,
        writes_per_tx=4,
        shared_fraction=0.25,
        write_shared_fraction=0.06,
        hot_lines=512,
        conflict_skew=0.8,
        spread_pages=16,
        barrier_every=16,
        seed=101,
    ),
    "cluster_ga": WorkloadProfile(
        name="cluster_ga",
        total_transactions=256,
        tx_instructions=5000,
        reads_per_tx=12,
        writes_per_tx=6,
        shared_fraction=0.30,
        write_shared_fraction=0.10,
        hot_lines=96,
        conflict_skew=1.1,
        spread_pages=8,
        barrier_every=32,
        rmw_fraction=0.6,
        seed=102,
    ),
    "equake": WorkloadProfile(
        name="equake",
        total_transactions=512,
        tx_instructions=400,
        reads_per_tx=6,
        writes_per_tx=3,
        shared_fraction=0.42,
        write_shared_fraction=0.20,
        hot_lines=768,
        conflict_skew=0.4,
        spread_pages=16,
        barrier_every=32,
        seed=103,
    ),
    "radix": WorkloadProfile(
        name="radix",
        total_transactions=192,
        tx_instructions=30000,
        reads_per_tx=40,
        writes_per_tx=48,
        shared_fraction=0.30,
        write_shared_fraction=0.55,
        hot_lines=16384,
        conflict_skew=0.0,
        spread_pages=64,
        barrier_every=12,
        rmw_fraction=0.05,
        seed=104,
    ),
    "specjbb2000": WorkloadProfile(
        name="specjbb2000",
        total_transactions=256,
        tx_instructions=5000,
        reads_per_tx=12,
        writes_per_tx=2,
        shared_fraction=0.02,
        write_shared_fraction=0.01,
        hot_lines=1024,
        conflict_skew=0.3,
        spread_pages=32,
        barrier_every=0,
        seed=105,
    ),
    "svm_classify": WorkloadProfile(
        name="svm_classify",
        total_transactions=192,
        tx_instructions=20000,
        reads_per_tx=20,
        writes_per_tx=10,
        shared_fraction=0.15,
        write_shared_fraction=0.02,
        hot_lines=1024,
        conflict_skew=0.2,
        spread_pages=16,
        barrier_every=12,
        seed=106,
    ),
    "swim": WorkloadProfile(
        name="swim",
        total_transactions=128,
        tx_instructions=45000,
        reads_per_tx=40,
        writes_per_tx=32,
        shared_fraction=0.05,
        write_shared_fraction=0.01,
        hot_lines=2048,
        conflict_skew=0.1,
        spread_pages=32,
        barrier_every=8,
        seed=107,
    ),
    "tomcatv": WorkloadProfile(
        name="tomcatv",
        total_transactions=160,
        tx_instructions=12000,
        reads_per_tx=24,
        writes_per_tx=16,
        shared_fraction=0.08,
        write_shared_fraction=0.02,
        hot_lines=1024,
        conflict_skew=0.1,
        spread_pages=32,
        barrier_every=8,
        seed=108,
    ),
    "volrend": WorkloadProfile(
        name="volrend",
        total_transactions=512,
        tx_instructions=800,
        reads_per_tx=5,
        writes_per_tx=4,
        shared_fraction=0.35,
        write_shared_fraction=0.30,
        hot_lines=512,
        conflict_skew=0.3,
        spread_pages=24,
        barrier_every=32,
        rmw_fraction=0.2,
        seed=109,
    ),
    "water_nsquared": WorkloadProfile(
        name="water_nsquared",
        total_transactions=256,
        tx_instructions=5000,
        reads_per_tx=12,
        writes_per_tx=6,
        shared_fraction=0.30,
        write_shared_fraction=0.08,
        hot_lines=512,
        conflict_skew=0.6,
        spread_pages=16,
        barrier_every=16,
        seed=110,
    ),
    "water_spatial": WorkloadProfile(
        name="water_spatial",
        total_transactions=224,
        tx_instructions=9000,
        reads_per_tx=14,
        writes_per_tx=6,
        shared_fraction=0.15,
        write_shared_fraction=0.04,
        hot_lines=1024,
        conflict_skew=0.4,
        spread_pages=16,
        barrier_every=16,
        seed=111,
    ),
}


def app_workload(
    name: str, scale: float = 1.0, line_size: int = 32, word_size: int = 4
) -> SyntheticWorkload:
    """A ready-to-run workload for one of the paper's applications.

    ``scale`` multiplies the total transaction count (use < 1 for quick
    runs, > 1 for more stable statistics).
    """
    if name not in APP_PROFILES:
        raise KeyError(
            f"unknown application {name!r}; choose from {sorted(APP_PROFILES)}"
        )
    profile = APP_PROFILES[name]
    if scale != 1.0:
        profile = profile.scaled(scale)
    return SyntheticWorkload(profile, line_size=line_size, word_size=word_size)
