"""Differential conformance testing: full simulator vs. reference oracle.

The pieces (see docs/TESTING.md for the workflow):

* :mod:`repro.conform.program` — transactional programs as pure data;
* :mod:`repro.conform.generator` — seeded random programs with conflict
  knobs, and :func:`make_case` deriving a whole case from one seed;
* :mod:`repro.conform.differ` — runs a case through the full machine and
  diffs commit order, read witnesses, and final memory against
  :mod:`repro.oracle`;
* :mod:`repro.conform.shrink` — greedy counterexample minimization;
* :mod:`repro.conform.counterexample` — replayable failure files;
* :mod:`repro.conform.harness` — parallel, cached campaigns
  (``python -m repro conform``).

This package is intentionally *not* imported from ``repro``'s top level:
it imports ``repro.core.system`` and must stay out of import cycles,
exactly like :mod:`repro.faults.chaos`.
"""

from repro.conform.counterexample import (
    iter_counterexamples,
    load_counterexample,
    replay_counterexample,
    save_counterexample,
)
from repro.conform.differ import (
    ConformCaseResult,
    Mismatch,
    diff_run,
    run_conform_case,
)
from repro.conform.generator import ConformCase, GeneratorKnobs, generate_program, make_case
from repro.conform.harness import format_report, run_conform
from repro.conform.program import ConformProgram, ConformWorkload
from repro.conform.shrink import ShrinkResult, shrink_case

__all__ = [
    "ConformCase",
    "ConformCaseResult",
    "ConformProgram",
    "ConformWorkload",
    "GeneratorKnobs",
    "Mismatch",
    "ShrinkResult",
    "diff_run",
    "format_report",
    "generate_program",
    "iter_counterexamples",
    "load_counterexample",
    "make_case",
    "replay_counterexample",
    "run_conform",
    "run_conform_case",
    "save_counterexample",
    "shrink_case",
]
