"""Conformance campaigns: N seeded differential cases, parallel + cached.

``run_conform`` fans seeded cases out over the :mod:`repro.runner`
process pool with the content-addressed result cache (a conform case is
a pure function of ``(seed, faults)`` and the code fingerprint), shrinks
every failure to a minimal reproducer in the parent, writes the shrunk
counterexamples as replayable JSON files, and returns the
``CONFORM_report.json`` payload.

Per-case payloads contain no wall-clock or host-dependent fields, so the
report's ``fingerprint`` — a SHA-256 over the canonical per-case results
— is bit-identical at any ``--jobs`` setting and across cache hits; the
equivalence is pinned by ``tests/test_conform.py``.
"""

from __future__ import annotations

import hashlib
import json
import time
from typing import Any, Dict, List, Optional

from repro.conform.counterexample import save_counterexample
from repro.conform.differ import ConformCaseResult
from repro.conform.generator import make_case
from repro.conform.shrink import shrink_case

#: Cap on how many failures one campaign shrinks (each shrink re-runs the
#: case up to ``shrink_evals`` times; the first few reproducers are what
#: gets triaged anyway).
MAX_SHRINKS = 5


def results_fingerprint(results: List[ConformCaseResult]) -> str:
    """SHA-256 over the canonical per-case outcome list."""
    canonical = json.dumps([r.as_dict() for r in results], sort_keys=True)
    return hashlib.sha256(canonical.encode()).hexdigest()


def run_conform(
    cases: int = 200,
    seed0: int = 0,
    faults: bool = False,
    progress=None,
    jobs: Optional[int] = 1,
    cache=None,
    shrink: bool = True,
    shrink_evals: int = 300,
    save_dir: Optional[str] = None,
    full: bool = False,
) -> Dict[str, Any]:
    """Run a campaign of ``cases`` differential checks; return a report.

    On failure: the case is rebuilt from its seed, greedily shrunk
    (``shrink=False`` to skip), and — when ``save_dir`` is set — written
    there as a replayable counterexample file whose path lands in the
    report, ready to be checked into ``tests/fixtures/conform/``.
    """
    from repro.runner import JobSpec, run_jobs

    started = time.perf_counter()
    # ``faults`` rides in workload_args so it reaches the worker-side
    # make_case() *and* keys the cache (a faulty campaign must not be
    # satisfied by cached fault-free outcomes).
    case_args = {"faults": True} if faults else None
    specs = [JobSpec(kind="conform", seed=seed0 + i, workload_args=case_args,
                     label=f"conform {seed0 + i}")
             for i in range(cases)]

    results: List[ConformCaseResult] = [None] * cases  # type: ignore[list-item]

    def on_outcome(outcome) -> None:
        if outcome.ok:
            data = dict(outcome.payload["case"])
        else:
            # Infrastructure failure (e.g. a quarantined worker crash):
            # a structured case failure, not an exception.
            data = ConformCaseResult(
                seed=specs[outcome.index].seed, faults=faults,
                n_processors=0, transactions=0,
                outcome="error", detail=outcome.error or "",
            ).as_dict()
        case_result = ConformCaseResult(**data)
        results[outcome.index] = case_result
        if progress is not None:
            progress(case_result)

    _, stats = run_jobs(specs, jobs=jobs, cache=cache, progress=on_outcome)

    failures = [r for r in results if not r.ok]
    outcome_counts: Dict[str, int] = {}
    for r in results:
        outcome_counts[r.outcome] = outcome_counts.get(r.outcome, 0) + 1

    shrunk: List[Dict[str, Any]] = []
    if shrink:
        for failure in failures[:MAX_SHRINKS]:
            if failure.outcome == "error" and failure.transactions == 0:
                continue  # infrastructure failure; nothing to shrink
            case = make_case(failure.seed, faults=faults)
            try:
                shrink_result = shrink_case(case, max_evals=shrink_evals)
            except ValueError:
                # Did not reproduce in-parent (e.g. a flaky host issue);
                # record the raw failure, nothing to minimize.
                shrunk.append({"seed": failure.seed,
                               "reproduced": False})
                continue
            entry: Dict[str, Any] = {
                "seed": failure.seed,
                "reproduced": True,
                "summary": shrink_result.describe(),
                "final_txs": shrink_result.final_txs,
                "final_ops": shrink_result.final_ops,
                "outcome": shrink_result.result.outcome,
                "mismatches": list(shrink_result.result.mismatches),
            }
            if save_dir is not None:
                mode = "faults" if faults else "clean"
                path = save_counterexample(
                    shrink_result.case, shrink_result.result,
                    f"{save_dir}/seed{failure.seed}_{mode}.json",
                )
                entry["file"] = str(path)
            shrunk.append(entry)

    report: Dict[str, Any] = {
        "cases": cases,
        "seed0": seed0,
        "faults": faults,
        "passed": len(results) - len(failures),
        "failed": len(failures),
        "outcome_counts": outcome_counts,
        "failures": [r.as_dict() for r in failures],
        "shrunk": shrunk,
        "fingerprint": results_fingerprint(results),
        "wall_seconds": round(time.perf_counter() - started, 3),
        "runner": stats.as_dict(),
    }
    if full:
        report["results"] = [r.as_dict() for r in results]
    return report


def format_report(report: Dict[str, Any]) -> str:
    """Render a campaign report for the terminal."""
    mode = "faults" if report["faults"] else "fault-free"
    lines = [
        f"conform: {report['passed']}/{report['cases']} passed "
        f"({mode}, seeds {report['seed0']}.."
        f"{report['seed0'] + report['cases'] - 1}, "
        f"{report['wall_seconds']:.1f}s)"
    ]
    runner = report.get("runner")
    if runner:
        line = (f"  runner: {runner['jobs']} worker(s), "
                f"{runner['executed']} executed, "
                f"{runner['from_cache']} from cache, "
                f"{runner['wall_s']:.2f}s elapsed")
        if runner.get("cache"):
            cache = runner["cache"]
            line += (f"; cache {cache['hits']} hit / {cache['misses']} miss"
                     f" / {cache['invalidations']} stale")
        lines.append(line)
    lines.append(f"  fingerprint: {report['fingerprint'][:16]}…")
    for failure in report["failures"]:
        lines.append(
            f"  FAIL seed={failure['seed']} "
            f"{failure['n_processors']}p/{failure['transactions']}tx: "
            f"{failure['outcome']} ({failure['detail']}) — replay: "
            f"run_conform_case(make_case({failure['seed']}, "
            f"faults={report['faults']}))"
        )
    for entry in report["shrunk"]:
        if entry.get("reproduced"):
            line = f"  shrunk seed={entry['seed']}: {entry['summary']}"
            if "file" in entry:
                line += f" -> {entry['file']}"
        else:
            line = (f"  shrunk seed={entry['seed']}: did not reproduce "
                    f"in-parent")
        lines.append(line)
    if not report["failures"]:
        lines.append(
            "  oracle agreement on commit order, read witnesses, "
            "and final memory for every case"
        )
    return "\n".join(lines)
