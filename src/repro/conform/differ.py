"""Differential comparison: full simulator vs. reference oracle.

``run_conform_case`` runs one :class:`~repro.conform.generator.ConformCase`
through the full simulated machine (``verify=False`` — the *oracle* is
the judge here, not the simulator's own serial-replay check, which
shares the commit log with the thing under test), hands the oracle the
program plus the bare commit witness (tid, tx_id, proc), and diffs three
surfaces:

* **commit order** — the witness must be structurally possible: every
  program transaction commits exactly once, TIDs are unique, and TID
  order respects per-processor program order and barrier epochs
  (:class:`~repro.oracle.machine.OracleViolation` kinds surface
  directly as mismatches);
* **read-value witnesses** — each committed transaction's observed
  (line, word, value) load sequence must equal what the oracle computes
  executing the *program's* ops serially in TID order (the commit log's
  recorded ops are also checked against the program, so a corrupted log
  cannot vouch for itself);
* **per-word final memory** — the drained machine image must equal the
  oracle's magic memory, word for word, zeros implicit on both sides.

Every failure mode is a structured :class:`ConformCaseResult`, never an
exception, so campaigns keep running and outcomes are cacheable.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.conform.generator import ConformCase
from repro.conform.program import ConformProgram
from repro.core.system import ScalableTCCSystem, SimulationResult, SimulationTimeout
from repro.faults.watchdog import WatchdogStall
from repro.oracle.machine import CommitWitness, OracleViolation, ReferenceTM

#: Hard backstop so a watchdog bug cannot hang the harness itself.
MAX_CYCLES = 50_000_000

#: Per-case cap on recorded mismatches (the first one is what you triage;
#: the rest just prove it is not a one-off).
MAX_MISMATCHES = 20


@dataclass
class Mismatch:
    """One divergence between the machines."""

    kind: str
    detail: str
    tx_id: Optional[int] = None
    tid: Optional[int] = None

    def as_dict(self) -> Dict[str, Any]:
        data: Dict[str, Any] = {"kind": self.kind, "detail": self.detail}
        if self.tx_id is not None:
            data["tx_id"] = self.tx_id
        if self.tid is not None:
            data["tid"] = self.tid
        return data


@dataclass
class ConformCaseResult:
    """Outcome of one differential run (pure data, cache-stable)."""

    seed: int
    faults: bool
    n_processors: int
    transactions: int
    outcome: str  # "ok" | "mismatch" | "stall" | "timeout" | "error"
    detail: str = ""
    mismatches: List[Dict[str, Any]] = field(default_factory=list)
    committed: int = 0
    violations: int = 0
    cycles: int = 0

    @property
    def ok(self) -> bool:
        return self.outcome == "ok"

    def as_dict(self) -> Dict[str, Any]:
        return {
            "seed": self.seed,
            "faults": self.faults,
            "n_processors": self.n_processors,
            "transactions": self.transactions,
            "outcome": self.outcome,
            "detail": self.detail,
            "mismatches": [dict(m) for m in self.mismatches],
            "committed": self.committed,
            "violations": self.violations,
            "cycles": self.cycles,
        }


def diff_run(program: ConformProgram,
             result: SimulationResult) -> List[Mismatch]:
    """All divergences between one simulation result and the oracle."""
    witness = [CommitWitness(rec.tid, rec.tx.tx_id, rec.proc)
               for rec in result.commit_log]
    oracle = ReferenceTM(program.line_size, program.word_size)
    try:
        reference = oracle.execute(program.oracle_txs(), witness)
    except OracleViolation as exc:
        return [Mismatch(exc.kind, exc.detail)]

    mismatches: List[Mismatch] = []

    def add(mismatch: Mismatch) -> bool:
        mismatches.append(mismatch)
        return len(mismatches) >= MAX_MISMATCHES

    program_txs = program.transactions()
    by_tx = reference.commit_by_tx()
    for rec in sorted(result.commit_log, key=lambda r: r.tid):
        prog_ops = tuple(tuple(op) for op in program_txs[rec.tx.tx_id].ops)
        log_ops = tuple(tuple(op) for op in rec.tx.ops)
        if prog_ops != log_ops:
            if add(Mismatch(
                "ops-mismatch",
                f"commit log ops {log_ops!r} differ from program ops "
                f"{prog_ops!r}",
                tx_id=rec.tx.tx_id, tid=rec.tid,
            )):
                return mismatches
            continue
        expected = by_tx[rec.tx.tx_id].reads
        observed = [tuple(read) for read in rec.reads]
        if observed != expected:
            index = next(
                (i for i, (obs, exp) in enumerate(zip(observed, expected))
                 if obs != exp),
                min(len(observed), len(expected)),
            )
            obs_at = observed[index] if index < len(observed) else None
            exp_at = expected[index] if index < len(expected) else None
            if add(Mismatch(
                "read-witness",
                f"P{rec.proc} read #{index}: observed {obs_at}, oracle "
                f"expects {exp_at} ({len(observed)}/{len(expected)} reads)",
                tx_id=rec.tx.tx_id, tid=rec.tid,
            )):
                return mismatches

    machine = result.memory_image
    words = set(reference.memory)
    for line, values in machine.items():
        for word, value in enumerate(values):
            if value:
                words.add((line, word))
    for line, word in sorted(words):
        machine_line = machine.get(line)
        machine_value = machine_line[word] if machine_line else 0
        oracle_value = reference.memory.get((line, word), 0)
        if machine_value != oracle_value:
            if add(Mismatch(
                "final-memory",
                f"line {line} word {word}: machine has {machine_value}, "
                f"oracle has {oracle_value}",
            )):
                return mismatches
    return mismatches


def run_conform_case(case: ConformCase) -> ConformCaseResult:
    """Run one case; every failure mode becomes a structured outcome."""
    result = ConformCaseResult(
        seed=case.seed, faults=case.faults,
        n_processors=case.program.n_processors,
        transactions=case.program.tx_count,
        outcome="ok",
    )
    system = ScalableTCCSystem(case.build_config())
    try:
        run = system.run(case.build_workload(), max_cycles=MAX_CYCLES,
                         verify=False)
    except WatchdogStall as exc:
        result.outcome = "stall"
        result.detail = str(exc).splitlines()[0]
        result.cycles = exc.report.get("cycle", system.engine.now)
    except SimulationTimeout as exc:
        result.outcome = "timeout"
        result.detail = str(exc)
        result.cycles = system.engine.now
    except Exception as exc:  # invariant / protocol / workload failure
        result.outcome = "error"
        result.detail = f"{type(exc).__name__}: {exc}".splitlines()[0]
        result.cycles = system.engine.now
    else:
        result.cycles = run.cycles
        result.committed = run.committed_transactions
        result.violations = run.total_violations
        mismatches = diff_run(case.program, run)
        if mismatches:
            result.outcome = "mismatch"
            result.detail = mismatches[0].detail
            result.mismatches = [m.as_dict() for m in mismatches]
    return result
