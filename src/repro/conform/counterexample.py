"""Replayable counterexample files.

Any case the harness fails on is shrunk and written out as a small JSON
file pinning the *explicit* program (not the seed — shrinking takes the
case out of the generator's image), the config overrides, and the fault
plan, plus the mismatch it reproduced at save time.  Files checked into
``tests/fixtures/conform/`` become permanent regression tests: the
loader replays every one through both machines forever.
"""

from __future__ import annotations

import json
import pathlib
from typing import Any, Dict, Iterable, List, Tuple, Union

from repro.conform.differ import ConformCaseResult, run_conform_case
from repro.conform.generator import ConformCase

FORMAT = "repro-conform-counterexample/1"


def counterexample_dict(case: ConformCase,
                        result: ConformCaseResult) -> Dict[str, Any]:
    return {
        "format": FORMAT,
        "case": case.to_dict(),
        "failure": {
            "outcome": result.outcome,
            "detail": result.detail,
            "mismatches": list(result.mismatches),
        },
    }


def save_counterexample(case: ConformCase, result: ConformCaseResult,
                        path: Union[str, pathlib.Path]) -> pathlib.Path:
    """Write one counterexample file; returns the path written."""
    path = pathlib.Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(
        json.dumps(counterexample_dict(case, result), indent=2,
                   sort_keys=True) + "\n"
    )
    return path


def load_counterexample(
    path: Union[str, pathlib.Path],
) -> Tuple[ConformCase, Dict[str, Any]]:
    """Read one file back: (case, recorded-failure metadata)."""
    data = json.loads(pathlib.Path(path).read_text())
    if data.get("format") != FORMAT:
        raise ValueError(
            f"{path}: not a conform counterexample "
            f"(format {data.get('format')!r}, expected {FORMAT!r})"
        )
    return ConformCase.from_dict(data["case"]), data.get("failure", {})


def iter_counterexamples(
    directory: Union[str, pathlib.Path],
) -> Iterable[Tuple[pathlib.Path, ConformCase, Dict[str, Any]]]:
    """All counterexample files under ``directory``, sorted by name."""
    root = pathlib.Path(directory)
    if not root.is_dir():
        return
    for path in sorted(root.glob("*.json")):
        case, failure = load_counterexample(path)
        yield path, case, failure


def replay_counterexample(
    path: Union[str, pathlib.Path],
) -> ConformCaseResult:
    """Re-run one counterexample through both machines."""
    case, _ = load_counterexample(path)
    return run_conform_case(case)
