"""Seeded random transactional-program generator.

Case ``seed`` deterministically derives everything — machine size,
contention profile, per-transaction footprints, the program itself, and
(with ``faults=True``) a fault plan — so a failing case replays from its
seed alone, and a :class:`ConformCase` is pure picklable data that a
``JobSpec(kind="conform", seed=...)`` can name.

The contention knobs are the interesting part.  Each case draws:

* a *hot set* of shared lines every processor hammers (``hot_lines``
  lines, restricted to ``hot_words`` words so same-word RMW conflicts —
  the strongest serializability probe — actually happen);
* a *private region* per processor (conflict-free background traffic,
  exercises first-touch placement and eviction without aborts);
* ``p_hot``, the probability any memory op targets the hot set;
* an op-mix profile (read-heavy / write-heavy / rmw-heavy / mixed) and a
  barrier-epoch structure (1-3 epochs, all processors synchronized).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Union

from repro.conform.program import ConformProgram
from repro.core.config import SystemConfig
from repro.faults.plan import FaultPlan
from repro.workloads.base import BARRIER, Transaction

LINE_SIZE = 32
WORD_SIZE = 4

#: Op-mix profiles: weights for (ld, st, add).
_MIX_PROFILES = {
    "read-heavy": (6, 1, 2),
    "write-heavy": (1, 5, 2),
    "rmw-heavy": (1, 1, 6),
    "mixed": (3, 3, 3),
}

#: Private lines start here; hot lines live at 0..hot_lines-1 so the two
#: regions can never alias.
_PRIVATE_BASE_LINE = 512
_PRIVATE_LINES_PER_PROC = 8


@dataclass(frozen=True)
class GeneratorKnobs:
    """The contention profile one seed draws (recorded for triage)."""

    n_processors: int
    epochs: int
    tx_per_proc_per_epoch: int
    max_ops_per_tx: int
    hot_lines: int
    hot_words: int
    p_hot: float
    mix: str
    network_jitter: int

    def as_dict(self) -> Dict[str, Any]:
        import dataclasses

        return dataclasses.asdict(self)


def _addr(line: int, word: int) -> int:
    return line * LINE_SIZE + word * WORD_SIZE


def draw_knobs(rng: random.Random) -> GeneratorKnobs:
    return GeneratorKnobs(
        n_processors=rng.choice((2, 3, 4, 4, 6, 8)),
        epochs=rng.randint(1, 3),
        tx_per_proc_per_epoch=rng.randint(1, 4),
        max_ops_per_tx=rng.randint(2, 6),
        hot_lines=rng.choice((1, 1, 2, 4)),
        hot_words=rng.choice((1, 2, 8)),
        p_hot=round(rng.uniform(0.2, 0.95), 3),
        mix=rng.choice(tuple(_MIX_PROFILES)),
        network_jitter=rng.randint(0, 6),
    )


def _random_op(rng: random.Random, proc: int, knobs: GeneratorKnobs):
    """One memory or compute op for processor ``proc``."""
    if rng.random() < 0.25:
        return ("c", rng.randint(1, 6))
    if rng.random() < knobs.p_hot:
        line = rng.randrange(knobs.hot_lines)
        word = rng.randrange(knobs.hot_words)
    else:
        line = _PRIVATE_BASE_LINE + proc * _PRIVATE_LINES_PER_PROC \
            + rng.randrange(_PRIVATE_LINES_PER_PROC)
        word = rng.randrange(LINE_SIZE // WORD_SIZE)
    addr = _addr(line, word)
    kind = rng.choices(("ld", "st", "add"),
                       weights=_MIX_PROFILES[knobs.mix])[0]
    if kind == "ld":
        return ("ld", addr)
    if kind == "st":
        return ("st", addr, rng.randint(1, 99))
    return ("add", addr, rng.randint(1, 9))


def generate_program(seed: int) -> ConformProgram:
    """The program for case ``seed`` (knobs included, deterministically)."""
    rng = random.Random(seed * 0x9E3779B9 + 0xC0F0)
    knobs = draw_knobs(rng)
    schedules: List[List[Union[Transaction, object]]] = []
    for proc in range(knobs.n_processors):
        items: List[Union[Transaction, object]] = []
        for epoch in range(knobs.epochs):
            if epoch:
                items.append(BARRIER)
            for i in range(knobs.tx_per_proc_per_epoch):
                ops = [_random_op(rng, proc, knobs)
                       for _ in range(rng.randint(1, knobs.max_ops_per_tx))]
                tx_id = proc * 100_000 + epoch * 1_000 + i
                items.append(Transaction(tx_id, ops))
        schedules.append(items)
    return ConformProgram(
        n_processors=knobs.n_processors,
        schedules=schedules,
        line_size=LINE_SIZE,
        word_size=WORD_SIZE,
    )


@dataclass
class ConformCase:
    """One replayable differential-test case: program + machine + faults.

    ``config_overrides`` is the JSON-able slice of
    :class:`~repro.core.config.SystemConfig` this case pins; everything
    else takes the config default, so counterexample files stay small
    and readable.
    """

    seed: int
    faults: bool
    program: ConformProgram
    config_overrides: Dict[str, Any] = field(default_factory=dict)
    fault_plan: Optional[FaultPlan] = None

    def build_config(self) -> SystemConfig:
        return SystemConfig(fault_plan=self.fault_plan,
                            **self.config_overrides)

    def build_workload(self):
        return self.program.to_workload()

    def describe(self) -> str:
        mode = "faults" if self.faults else "fault-free"
        return (f"conform seed={self.seed} ({mode}, "
                f"{self.program.n_processors}p, "
                f"{self.program.tx_count} txs, {self.program.op_count} ops)")

    # -- serialization (counterexample files) ------------------------------

    def to_dict(self) -> Dict[str, Any]:
        return {
            "seed": self.seed,
            "faults": self.faults,
            "program": self.program.to_dict(),
            "config_overrides": dict(self.config_overrides),
            "fault_plan": (self.fault_plan.as_dict()
                           if self.fault_plan is not None else None),
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "ConformCase":
        plan = data.get("fault_plan")
        return cls(
            seed=data["seed"],
            faults=data["faults"],
            program=ConformProgram.from_dict(data["program"]),
            config_overrides=dict(data["config_overrides"]),
            fault_plan=FaultPlan.from_dict(plan) if plan else None,
        )


def make_case(seed: int, faults: bool = False) -> ConformCase:
    """Deterministically derive case ``seed`` end to end."""
    program = generate_program(seed)
    rng = random.Random(seed * 0x9E3779B9 + 0xFA57)
    overrides: Dict[str, Any] = {
        "n_processors": program.n_processors,
        "seed": seed,
        "ordered_network": False,
        "network_jitter": rng.randint(0, 6),
        "line_size": program.line_size,
        "word_size": program.word_size,
    }
    plan: Optional[FaultPlan] = None
    if faults:
        # Same bounded-hostility plan space the chaos harness sweeps.
        from repro.faults.chaos import random_fault_plan

        plan = random_fault_plan(seed, program.n_processors)
        # Small programs: tighten the watchdog so a genuine wedge is
        # diagnosed in seconds, not simulated megacycles.
        overrides["watchdog_interval"] = 25_000
        overrides["watchdog_stall_checks"] = 4
    return ConformCase(
        seed=seed, faults=faults, program=program,
        config_overrides=overrides, fault_plan=plan,
    )
