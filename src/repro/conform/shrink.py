"""Greedy counterexample shrinking.

Given a failing :class:`~repro.conform.generator.ConformCase`, minimize
the *program* while preserving the failure: drop transactions (chunked,
then singly), drop whole barrier epochs, drop individual ops, narrow the
address footprint (dense line renumbering, words to 0, values to 1), and
finally drop processors whose schedules went empty.  Every candidate is
re-run through the full differential check; a reduction is kept only if
the candidate still fails *the same way* (same outcome, and for
mismatches the same first-mismatch kind), so a real protocol divergence
cannot quietly shrink into an unrelated timeout artifact.

Candidates are always well-formed by construction — barrier counts stay
equal across processors (barriers are removed from every schedule at
once, never singly), and empty programs are never proposed — so the
shrinker cannot manufacture deadlocks the original program did not have.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Tuple, Union

from repro.conform.differ import ConformCaseResult, run_conform_case
from repro.conform.generator import ConformCase
from repro.conform.program import ConformProgram
from repro.workloads.base import BARRIER, Transaction

Schedules = List[List[Union[Transaction, object]]]


@dataclass
class ShrinkResult:
    """The minimized case plus the accounting of how it got there."""

    case: ConformCase
    result: ConformCaseResult
    evals: int
    reductions: int
    initial_txs: int
    initial_ops: int

    @property
    def final_txs(self) -> int:
        return self.case.program.tx_count

    @property
    def final_ops(self) -> int:
        return self.case.program.op_count

    def describe(self) -> str:
        return (f"shrunk {self.initial_txs} txs / {self.initial_ops} ops "
                f"-> {self.final_txs} txs / {self.final_ops} ops "
                f"({self.reductions} reductions, {self.evals} runs)")


def same_failure(base: ConformCaseResult) -> Callable[[ConformCaseResult], bool]:
    """Predicate: a candidate outcome reproduces ``base``'s failure."""
    base_kind = base.mismatches[0]["kind"] if base.mismatches else None

    def matches(candidate: ConformCaseResult) -> bool:
        if candidate.outcome != base.outcome:
            return False
        if base_kind is None:
            return True
        return bool(candidate.mismatches) and \
            candidate.mismatches[0]["kind"] == base_kind

    return matches


def _copy_schedules(schedules: Schedules) -> Schedules:
    return [list(items) for items in schedules]


def _rebuild(case: ConformCase, schedules: Schedules) -> ConformCase:
    """A new case with the given schedules (processor count follows)."""
    n = len(schedules)
    overrides = dict(case.config_overrides)
    overrides["n_processors"] = n
    return ConformCase(
        seed=case.seed,
        faults=case.faults,
        program=ConformProgram(
            n_processors=n,
            schedules=schedules,
            line_size=case.program.line_size,
            word_size=case.program.word_size,
        ),
        config_overrides=overrides,
        fault_plan=case.fault_plan,
    )


def _tx_positions(schedules: Schedules) -> List[Tuple[int, int]]:
    return [
        (proc, pos)
        for proc, items in enumerate(schedules)
        for pos, item in enumerate(items)
        if isinstance(item, Transaction)
    ]


def _without_positions(schedules: Schedules,
                       drop: set) -> Schedules:
    return [
        [item for pos, item in enumerate(items) if (proc, pos) not in drop]
        for proc, items in enumerate(schedules)
    ]


class _Shrinker:
    def __init__(self, case: ConformCase,
                 matches: Callable[[ConformCaseResult], bool],
                 max_evals: int,
                 run: Callable[[ConformCase], ConformCaseResult]) -> None:
        self.case = case
        self.matches = matches
        self.max_evals = max_evals
        self.run = run
        self.evals = 0
        self.reductions = 0

    def budget_left(self) -> bool:
        return self.evals < self.max_evals

    def accept(self, candidate: ConformCase) -> bool:
        if not self.budget_left():
            return False
        self.evals += 1
        if self.matches(self.run(candidate)):
            self.case = candidate
            self.reductions += 1
            return True
        return False

    # -- phase 1: drop transactions ---------------------------------------

    def drop_transactions(self) -> bool:
        schedules = self.case.program.schedules
        positions = _tx_positions(schedules)
        before = self.reductions
        if len(positions) <= 1:
            return False
        chunk = len(positions) // 2
        while chunk >= 1 and self.budget_left():
            start = 0
            progressed = False
            while start < len(positions) and self.budget_left():
                drop = set(positions[start:start + chunk])
                if len(drop) == len(positions):
                    break  # never propose an empty program
                candidate = _rebuild(
                    self.case, _without_positions(
                        _copy_schedules(schedules), drop))
                if self.accept(candidate):
                    schedules = self.case.program.schedules
                    positions = _tx_positions(schedules)
                    progressed = True
                else:
                    start += chunk
            if not progressed:
                chunk //= 2
        return self.reductions > before

    # -- phase 2: drop barrier epochs -------------------------------------

    def drop_barriers(self) -> bool:
        changed = False
        while self.budget_left():
            schedules = self.case.program.schedules
            n_barriers = sum(1 for item in schedules[0] if item is BARRIER)
            dropped = False
            for k in range(n_barriers):
                candidate_schedules: Schedules = []
                for items in _copy_schedules(schedules):
                    seen = 0
                    row = []
                    for item in items:
                        if item is BARRIER:
                            if seen == k:
                                seen += 1
                                continue
                            seen += 1
                        row.append(item)
                    candidate_schedules.append(row)
                if self.accept(_rebuild(self.case, candidate_schedules)):
                    changed = dropped = True
                    break
            if not dropped:
                break
        return changed

    # -- phase 3: drop individual ops -------------------------------------

    def drop_ops(self) -> bool:
        changed = True
        any_change = False
        while changed and self.budget_left():
            changed = False
            schedules = self.case.program.schedules
            for proc, pos in _tx_positions(schedules):
                tx = schedules[proc][pos]
                if len(tx.ops) <= 1:
                    continue
                for drop_i in range(len(tx.ops)):
                    new_ops = [op for i, op in enumerate(tx.ops)
                               if i != drop_i]
                    candidate_schedules = _copy_schedules(
                        self.case.program.schedules)
                    candidate_schedules[proc][pos] = Transaction(
                        tx.tx_id, new_ops, label=tx.label)
                    if self.accept(_rebuild(self.case, candidate_schedules)):
                        changed = any_change = True
                        break
                if changed:
                    break
        return any_change

    # -- phase 4: narrow addresses and values ------------------------------

    def _rewrite_ops(self, rewrite) -> Optional[ConformCase]:
        schedules = _copy_schedules(self.case.program.schedules)
        touched = False
        for proc, pos in _tx_positions(schedules):
            tx = schedules[proc][pos]
            new_ops = [rewrite(op) for op in tx.ops]
            if new_ops != list(tx.ops):
                touched = True
                schedules[proc][pos] = Transaction(tx.tx_id, new_ops,
                                                   label=tx.label)
        return _rebuild(self.case, schedules) if touched else None

    def narrow_addresses(self) -> bool:
        program = self.case.program
        line_size, word_size = program.line_size, program.word_size

        def locate(addr: int) -> Tuple[int, int]:
            return addr // line_size, (addr % line_size) // word_size

        lines = sorted({
            locate(op[1])[0]
            for tx in program.transactions().values()
            for op in tx.ops if op[0] != "c"
        })
        rank = {line: i for i, line in enumerate(lines)}
        changed = False

        def densify(op):
            if op[0] == "c":
                return op
            line, word = locate(op[1])
            addr = rank[line] * line_size + word * word_size
            return (op[0], addr, *op[2:])

        def zero_words(op):
            if op[0] == "c":
                return op
            line, _ = locate(op[1])
            return (op[0], line * line_size, *op[2:])

        def unit_values(op):
            if op[0] in ("st", "add") and op[2] != 1:
                return (op[0], op[1], 1)
            if op[0] == "c" and op[1] != 1:
                return ("c", 1)
            return op

        for rewrite in (densify, zero_words, unit_values):
            if not self.budget_left():
                break
            candidate = self._rewrite_ops(rewrite)
            if candidate is not None and self.accept(candidate):
                changed = True
        return changed

    # -- phase 5: drop processors with empty schedules ---------------------

    def drop_empty_procs(self) -> bool:
        changed = False
        while self.budget_left():
            schedules = self.case.program.schedules
            if len(schedules) <= 1:
                break
            empty = [
                proc for proc, items in enumerate(schedules)
                if not any(isinstance(item, Transaction) for item in items)
            ]
            if not empty:
                break
            keep = [items for proc, items in enumerate(schedules)
                    if proc != empty[0]]
            if not self.accept(_rebuild(self.case, _copy_schedules(keep))):
                break
            changed = True
        return changed


def shrink_case(
    case: ConformCase,
    base: Optional[ConformCaseResult] = None,
    max_evals: int = 300,
    run: Callable[[ConformCase], ConformCaseResult] = run_conform_case,
) -> ShrinkResult:
    """Greedily minimize a failing case; returns the smallest reproducer.

    ``base`` is the case's known failing result (re-computed if absent).
    The phase order is drop-transactions -> drop-barriers -> drop-ops ->
    narrow-addresses -> drop-processors, looped to a fixpoint within the
    ``max_evals`` re-run budget.  ``run`` is injectable so tests (and
    one-off triage scripts) can minimize against any failure check.
    """
    if base is None:
        base = run(case)
    if base.ok:
        raise ValueError(f"case seed={case.seed} does not fail; "
                         f"nothing to shrink")
    shrinker = _Shrinker(case, same_failure(base), max_evals, run)
    initial_txs = case.program.tx_count
    initial_ops = case.program.op_count
    progressed = True
    while progressed and shrinker.budget_left():
        progressed = False
        for phase in (shrinker.drop_transactions, shrinker.drop_barriers,
                      shrinker.drop_ops, shrinker.narrow_addresses,
                      shrinker.drop_empty_procs):
            before = shrinker.reductions
            phase()
            if shrinker.reductions > before:
                progressed = True
    final = run(shrinker.case)
    return ShrinkResult(
        case=shrinker.case,
        result=final,
        evals=shrinker.evals,
        reductions=shrinker.reductions,
        initial_txs=initial_txs,
        initial_ops=initial_ops,
    )
