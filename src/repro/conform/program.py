"""Transactional programs as pure data.

A :class:`ConformProgram` is the shared input of the differential test:
per-processor schedules of :class:`~repro.workloads.base.Transaction`
objects interleaved with barriers, plus the memory geometry both
machines must agree on.  It converts losslessly to

* a simulator :class:`~repro.workloads.base.Workload`
  (:meth:`ConformProgram.to_workload`),
* the oracle's located transaction list
  (:meth:`ConformProgram.oracle_txs`), and
* canonical JSON (:meth:`to_dict` / :meth:`from_dict`) — the format
  counterexample files pin, so a shrunk failing program replays forever.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Sequence, Union

from repro.oracle.machine import OracleTx, program_from_schedules
from repro.workloads.base import BARRIER, Transaction, Workload

#: JSON marker for a barrier inside a serialized schedule.
_BARRIER_JSON = "barrier"


class ConformWorkload(Workload):
    """A scripted workload replaying one program's schedules."""

    name = "conform"

    def __init__(self, program: "ConformProgram") -> None:
        self.program = program

    def schedule(self, proc: int, n_procs: int) -> Iterator:
        return iter(self.program.schedules[proc])


@dataclass
class ConformProgram:
    """One transactional program, fully explicit and picklable."""

    n_processors: int
    #: Per processor: Transaction objects and BARRIER sentinels.
    schedules: List[List[Union[Transaction, object]]]
    line_size: int = 32
    word_size: int = 4

    def __post_init__(self) -> None:
        if len(self.schedules) != self.n_processors:
            raise ValueError(
                f"{len(self.schedules)} schedules for "
                f"{self.n_processors} processors"
            )

    # -- structure ---------------------------------------------------------

    def transactions(self) -> Dict[int, Transaction]:
        """tx_id -> Transaction over the whole program."""
        txs: Dict[int, Transaction] = {}
        for items in self.schedules:
            for item in items:
                if isinstance(item, Transaction):
                    if item.tx_id in txs:
                        raise ValueError(f"duplicate tx_id {item.tx_id}")
                    txs[item.tx_id] = item
        return txs

    @property
    def tx_count(self) -> int:
        return sum(
            1 for items in self.schedules
            for item in items if isinstance(item, Transaction)
        )

    @property
    def op_count(self) -> int:
        return sum(
            len(item.ops) for items in self.schedules
            for item in items if isinstance(item, Transaction)
        )

    def to_workload(self) -> ConformWorkload:
        return ConformWorkload(self)

    def oracle_txs(self) -> List[OracleTx]:
        return program_from_schedules(self.schedules)

    def validate(self) -> None:
        """Barrier/tx_id consistency, via the Workload contract."""
        self.to_workload().validate(self.n_processors)

    # -- serialization -----------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        schedules = []
        for items in self.schedules:
            row: List[Any] = []
            for item in items:
                if item is BARRIER:
                    row.append(_BARRIER_JSON)
                else:
                    row.append({
                        "tx_id": item.tx_id,
                        "ops": [list(op) for op in item.ops],
                        **({"label": item.label} if item.label else {}),
                    })
            schedules.append(row)
        return {
            "n_processors": self.n_processors,
            "line_size": self.line_size,
            "word_size": self.word_size,
            "schedules": schedules,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "ConformProgram":
        schedules: List[List[Union[Transaction, object]]] = []
        for row in data["schedules"]:
            items: List[Union[Transaction, object]] = []
            for entry in row:
                if entry == _BARRIER_JSON:
                    items.append(BARRIER)
                else:
                    items.append(Transaction(
                        entry["tx_id"],
                        [tuple(op) for op in entry["ops"]],
                        label=entry.get("label", ""),
                    ))
            schedules.append(items)
        return cls(
            n_processors=data["n_processors"],
            schedules=schedules,
            line_size=data.get("line_size", 32),
            word_size=data.get("word_size", 4),
        )
