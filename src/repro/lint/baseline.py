"""Baseline files: grandfathered findings that do not fail the build.

A baseline is a checked-in JSON list of findings accepted at the time
the linter was introduced (or a rule was tightened).  Matching is by
``(rule, path, message)`` — deliberately *not* by line number, so pure
drift (an unrelated edit above the finding) does not resurrect it.

New code should prefer an inline ``# repro: allow[...]`` with a reason;
the baseline exists so a new rule can land as a gate on day one without
a flag-day fix of every historical finding.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Iterable, List, Set, Tuple

from repro.lint.finding import Finding

DEFAULT_BASELINE_NAME = "lint-baseline.json"


@dataclass(slots=True)
class Baseline:
    """The set of grandfathered finding identities."""

    entries: Set[Tuple[str, str, str]] = field(default_factory=set)

    def matches(self, finding: Finding) -> bool:
        return finding.identity() in self.entries

    @classmethod
    def from_findings(cls, findings: Iterable[Finding]) -> "Baseline":
        return cls({finding.identity() for finding in findings})

    @classmethod
    def load(cls, path: str) -> "Baseline":
        with open(path) as handle:
            data = json.load(handle)
        entries = set()
        for item in data.get("findings", []):
            entries.add((item["rule"], item["path"], item["message"]))
        return cls(entries)

    def save(self, path: str) -> None:
        findings: List[dict] = [
            {"rule": rule, "path": file_path, "message": message}
            for rule, file_path, message in sorted(self.entries)
        ]
        with open(path, "w") as handle:
            json.dump({"version": 1, "findings": findings}, handle,
                      indent=2, sort_keys=True)
            handle.write("\n")
