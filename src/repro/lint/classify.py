"""Import-graph classifier: sim-path vs. driver-path modules.

**Sim-path** code executes inside a simulation: any nondeterminism there
(global RNG, wall clock, hash-order iteration feeding the event queue)
breaks bit-identical replay.  **Driver-path** code orchestrates runs —
the CLI, analysis, the process pool, the chaos campaign driver — and is
free to read clocks, environment variables, and entropy.

The split is computed, not maintained by hand: sim-path is the
transitive import closure of the *simulation roots* —
``<pkg>.core.system`` (building a system pulls in the engine, network,
memory, processors, directories, verification, and fault machinery) and
everything under ``<pkg>.workloads`` (schedules feed the simulated
event stream even though the system never imports the concrete workload
modules).  A module that becomes reachable from the system in a future
refactor is automatically held to sim-path rules.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterable, List, Set

from repro.lint.loader import Module

#: Roots of the sim-path closure, relative to the package name.
SIM_ROOT_SUFFIXES = ("core.system",)
#: Whole subpackages that are sim-path by fiat.
SIM_ROOT_PACKAGES = ("workloads",)

SIM = "sim"
DRIVER = "driver"


def _import_edges(module: Module, known: Set[str]) -> Set[str]:
    """Modules of ``known`` that ``module`` imports (any scope depth)."""
    edges: Set[str] = set()

    def resolve(target: str) -> None:
        # Prefer the deepest known prefix: "pkg.a.b" else "pkg.a" ...
        parts = target.split(".")
        for depth in range(len(parts), 0, -1):
            candidate = ".".join(parts[:depth])
            if candidate in known:
                edges.add(candidate)
                return

    package_parts = module.name.split(".")
    for node in ast.walk(module.tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                resolve(alias.name)
        elif isinstance(node, ast.ImportFrom):
            if node.level:
                # Relative import: resolve against this module's package.
                base = package_parts[: len(package_parts) - node.level]
                prefix = ".".join(base + ([node.module] if node.module else []))
            else:
                prefix = node.module or ""
            if not prefix:
                continue
            resolve(prefix)
            for alias in node.names:
                resolve(f"{prefix}.{alias.name}")
    edges.discard(module.name)
    return edges


def sim_roots(modules: Dict[str, Module]) -> List[str]:
    """The configured roots that actually exist in this tree."""
    packages = {name.split(".", 1)[0] for name in modules}
    roots: List[str] = []
    for package in sorted(packages):
        for suffix in SIM_ROOT_SUFFIXES:
            name = f"{package}.{suffix}"
            if name in modules:
                roots.append(name)
        for sub in SIM_ROOT_PACKAGES:
            prefix = f"{package}.{sub}"
            roots.extend(
                name for name in modules
                if name == prefix or name.startswith(prefix + ".")
            )
    return sorted(set(roots))


def classify_modules(modules: Dict[str, Module]) -> Dict[str, str]:
    """Label every module ``"sim"`` or ``"driver"`` (also sets
    :attr:`Module.path_kind` in place) via BFS over import edges."""
    known = set(modules)
    labels = {name: DRIVER for name in modules}
    queue: List[str] = sim_roots(modules)
    for name in queue:
        labels[name] = SIM
    while queue:
        current = queue.pop()
        for edge in _import_edges(modules[current], known):
            if labels[edge] != SIM:
                labels[edge] = SIM
                queue.append(edge)
    for name, label in labels.items():
        modules[name].path_kind = label
    return labels


def sim_modules(modules: Dict[str, Module]) -> List[Module]:
    return [m for m in modules.values() if m.path_kind == SIM]


def ensure_classified(modules: Dict[str, Module]) -> None:
    """Classify once; cheap to call defensively from rules."""
    if all(m.path_kind == DRIVER for m in modules.values()):
        classify_modules(modules)


def iter_functions(tree: ast.AST) -> Iterable[ast.AST]:
    """Every function/async-function definition in ``tree``."""
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield node
