"""repro lint: an AST-based determinism & protocol-contract analyzer.

The simulator's headline guarantees — bit-identical replay from a seed,
stable content-addressed cache keys, and the paper's commit-protocol
structure — are enforced dynamically by tests.  This package enforces
them *statically*, before a chaos seed ever has to find a violation:

* :mod:`repro.lint.classify` splits the package into **sim-path**
  modules (code that executes inside a simulation, where any
  nondeterminism breaks replay) and **driver-path** modules (CLI,
  analysis, the process pool — free to read clocks and environment);
* :mod:`repro.lint.rules.determinism` rejects global-RNG use,
  wall-clock reads, environment access, unordered-collection iteration
  that feeds event scheduling, ``id()``-based ordering, unslotted
  message/event dataclasses, and module-level RNG objects in sim-path
  code;
* :mod:`repro.lint.rules.spec` keeps :class:`~repro.runner.spec.JobSpec`
  declarative: workload factories must be named top-level callables and
  cache-key fields must be canonically serializable;
* :mod:`repro.lint.rules.protocol` extracts the handler and emission
  graph of the coherence :mod:`message set <repro.core.messages>` from
  the source and checks it against the declared
  :data:`~repro.lint.protocol_table.PROTOCOL_TABLE` — every message has
  exactly one handler, senders are the declared senders, and every
  commit-critical send site sits under a retry/backoff wrapper.

Findings can be silenced inline (``# repro: allow[rule-id] reason`` —
the reason is mandatory) or grandfathered in a checked-in baseline file
(:mod:`repro.lint.baseline`).  ``python -m repro lint`` is the CLI;
``.github/workflows/ci.yml`` runs it as a gating job.
"""

from repro.lint.baseline import Baseline
from repro.lint.classify import classify_modules
from repro.lint.finding import Finding, LintResult
from repro.lint.loader import Module, load_source, load_tree
from repro.lint.runner import default_root, lint_modules, run_lint

__all__ = [
    "Baseline",
    "Finding",
    "LintResult",
    "Module",
    "classify_modules",
    "default_root",
    "lint_modules",
    "load_source",
    "load_tree",
    "run_lint",
]
