"""Findings: what a rule reports, and the result of a whole lint run."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List


@dataclass(slots=True, frozen=True)
class Finding:
    """One rule violation at one source location."""

    rule: str
    path: str  # repo-relative (or loader-relative) file path
    line: int
    message: str
    module: str = ""  # dotted module name, when known

    def sort_key(self):
        return (self.path, self.line, self.rule, self.message)

    def identity(self):
        """Baseline identity: stable across pure line-number drift."""
        return (self.rule, self.path, self.message)

    def as_dict(self) -> Dict[str, Any]:
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "module": self.module,
            "message": self.message,
        }

    def render(self) -> str:
        return f"{self.path}:{self.line}: {self.rule}: {self.message}"


@dataclass(slots=True)
class LintResult:
    """Everything one lint run produced.

    ``findings`` are the *active* findings — not suppressed inline, not
    grandfathered by the baseline — and alone decide the exit status.
    """

    findings: List[Finding] = field(default_factory=list)
    suppressed: List[Finding] = field(default_factory=list)
    baselined: List[Finding] = field(default_factory=list)
    modules_scanned: int = 0
    sim_path_modules: List[str] = field(default_factory=list)
    rules_run: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.findings

    def as_dict(self) -> Dict[str, Any]:
        return {
            "ok": self.ok,
            "modules_scanned": self.modules_scanned,
            "rules_run": list(self.rules_run),
            "sim_path_modules": list(self.sim_path_modules),
            "findings": [f.as_dict() for f in self.findings],
            "suppressed": [f.as_dict() for f in self.suppressed],
            "baselined": [f.as_dict() for f in self.baselined],
        }
