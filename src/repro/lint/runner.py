"""Run every registered rule over a module tree and fold in
suppressions and the baseline."""

from __future__ import annotations

import os
from typing import Dict, List, Optional

from repro.lint.base import all_rules
from repro.lint.baseline import Baseline
from repro.lint.classify import classify_modules, sim_modules
from repro.lint.finding import Finding, LintResult
from repro.lint.loader import Module, load_tree

#: Rule id attached to files that do not parse.
PARSE_RULE = "lint-parse"


def default_root() -> str:
    """The installed ``repro`` package directory."""
    import repro

    return os.path.dirname(os.path.abspath(repro.__file__))


def lint_modules(modules: Dict[str, Module],
                 baseline: Optional[Baseline] = None) -> LintResult:
    """Lint an already-loaded module dict (fixtures use this directly)."""
    classify_modules(modules)
    rules = all_rules()
    raw: List[Finding] = []

    for module in modules.values():
        for error in module.errors:
            raw.append(Finding(rule=PARSE_RULE, path=module.path, line=1,
                               message=error, module=module.name))
        raw.extend(module.suppressions.malformed)

    for rule in rules:
        if rule.scope == "tree":
            raw.extend(rule.check_tree(modules))
            continue
        for module in modules.values():
            if rule.scope == "sim" and module.path_kind != "sim":
                continue
            raw.extend(rule.check(module))

    result = LintResult(
        modules_scanned=len(modules),
        sim_path_modules=sorted(m.name for m in sim_modules(modules)),
        rules_run=[rule.id for rule in rules],
    )
    by_name = {module.name: module for module in modules.values()}
    by_path = {module.path: module for module in modules.values()}
    for finding in sorted(raw, key=Finding.sort_key):
        module = by_name.get(finding.module) or by_path.get(finding.path)
        if (
            module is not None
            and finding.rule != PARSE_RULE
            and module.suppressions.matches(finding.rule, finding.line)
        ):
            result.suppressed.append(finding)
        elif baseline is not None and baseline.matches(finding):
            result.baselined.append(finding)
        else:
            result.findings.append(finding)
    return result


def run_lint(root: Optional[str] = None,
             baseline_path: Optional[str] = None) -> LintResult:
    """Load ``root`` (default: the installed package) and lint it."""
    modules = load_tree(root or default_root())
    baseline = Baseline.load(baseline_path) if baseline_path else None
    return lint_modules(modules, baseline=baseline)
