"""The declared protocol contract: who handles and who emits each message.

This is the static twin of Table 1 in the paper (plus the hardening
acks of ``repro.faults``): for every coherence
:mod:`message type <repro.core.messages>` it declares

* ``handler`` — the one module whose dispatch serves the message
  (directories serve requests, processors consume replies, the TID
  vendor answers inline in the node router, the token engine handles
  the baseline's broadcast traffic);
* ``emitters`` — the modules allowed to construct (send) it;
* ``commit_critical`` — True for the request messages the commit
  protocol's forward progress depends on end-to-end; every construction
  site of these must sit in a function that also arms a
  :class:`~repro.faults.retry.Retrier` / ``AckTracker`` (PR 2's
  hardening contract: a single lost packet must never wedge a commit).

``repro lint`` extracts the *actual* handler/emission graph from the
source (:mod:`repro.lint.rules.protocol`) and fails on any divergence;
``tests/test_protocol_table.py`` additionally pins the table against
``core/messages.py`` so an added message type cannot land without a
declared — and implemented — handler.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

PROCESSOR = "repro.processor.core"
COMMIT_ENGINE = "repro.processor.commit"
DIRECTORY = "repro.directory.controller"
VENDOR = "repro.core.system"  # TID requests are answered in the node router
TOKEN = "repro.baseline.token"


@dataclass(slots=True, frozen=True)
class MessageContract:
    """Declared handling/emission contract for one message type."""

    handler: str
    emitters: Tuple[str, ...]
    commit_critical: bool = False


PROTOCOL_TABLE: Dict[str, MessageContract] = {
    # -- data movement --------------------------------------------------
    "LoadRequest": MessageContract(
        handler=DIRECTORY, emitters=(PROCESSOR,), commit_critical=True,
    ),
    "LoadReply": MessageContract(handler=PROCESSOR, emitters=(DIRECTORY,)),
    "FlushRequest": MessageContract(handler=PROCESSOR, emitters=(DIRECTORY,)),
    # A write-back normally leaves a processor; the directory re-emits
    # one when a stale InvAck turns out to carry the only copy of a
    # line's data (the salvage path of the hardened protocol).
    "WriteBackMsg": MessageContract(
        handler=DIRECTORY, emitters=(PROCESSOR, DIRECTORY),
    ),
    # -- TID vendor -----------------------------------------------------
    "TidRequest": MessageContract(
        handler=VENDOR, emitters=(COMMIT_ENGINE,), commit_critical=True,
    ),
    "TidReply": MessageContract(handler=PROCESSOR, emitters=(VENDOR,)),
    # -- commit protocol ------------------------------------------------
    "SkipMsg": MessageContract(
        handler=DIRECTORY, emitters=(COMMIT_ENGINE,), commit_critical=True,
    ),
    "SkipAck": MessageContract(handler=PROCESSOR, emitters=(DIRECTORY,)),
    "ProbeRequest": MessageContract(
        handler=DIRECTORY, emitters=(COMMIT_ENGINE,), commit_critical=True,
    ),
    "ProbeReply": MessageContract(handler=PROCESSOR, emitters=(DIRECTORY,)),
    "MarkMsg": MessageContract(
        handler=DIRECTORY, emitters=(COMMIT_ENGINE,), commit_critical=True,
    ),
    "MarkAck": MessageContract(handler=PROCESSOR, emitters=(DIRECTORY,)),
    "CommitMsg": MessageContract(
        handler=DIRECTORY, emitters=(COMMIT_ENGINE,), commit_critical=True,
    ),
    "CommitAck": MessageContract(handler=PROCESSOR, emitters=(DIRECTORY,)),
    "AbortMsg": MessageContract(
        handler=DIRECTORY, emitters=(COMMIT_ENGINE,), commit_critical=True,
    ),
    "AbortAck": MessageContract(handler=PROCESSOR, emitters=(DIRECTORY,)),
    "Invalidation": MessageContract(handler=PROCESSOR, emitters=(DIRECTORY,)),
    "InvAck": MessageContract(handler=DIRECTORY, emitters=(PROCESSOR,)),
    # -- token-serialized baseline (Section 2.2) ------------------------
    "TokenInv": MessageContract(handler=TOKEN, emitters=(TOKEN,)),
    "TokenInvAck": MessageContract(handler=TOKEN, emitters=(TOKEN,)),
    "TokenWrite": MessageContract(handler=DIRECTORY, emitters=(TOKEN,)),
    "TokenWriteAck": MessageContract(handler=TOKEN, emitters=(DIRECTORY,)),
}

#: Modules whose dispatch structures are scanned for handlers.
HANDLER_MODULES = (PROCESSOR, COMMIT_ENGINE, DIRECTORY, VENDOR, TOKEN)

#: Names that arm a timeout-retry for the request constructed nearby.
RETRY_WRAPPERS = ("Retrier", "AckTracker", "_retry")
