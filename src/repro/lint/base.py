"""Rule base class and registry.

A rule declares an ``id``, a one-line ``title``, a longer ``rationale``
(both surface in ``docs/LINTING.md`` and the JSON report) and a
``scope``:

``sim``
    ``check(module)`` runs on sim-path modules only.
``all``
    ``check(module)`` runs on every module.
``tree``
    ``check_tree(modules)`` runs once with the whole module dict —
    for cross-module contracts like protocol-table conformance.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Type

from repro.lint.finding import Finding
from repro.lint.loader import Module

SCOPES = ("sim", "all", "tree")


class Rule:
    """One static check.  Subclasses override ``check`` or ``check_tree``."""

    id: str = ""
    title: str = ""
    rationale: str = ""
    scope: str = "all"

    def check(self, module: Module) -> Iterable[Finding]:
        return ()

    def check_tree(self, modules: Dict[str, Module]) -> Iterable[Finding]:
        return ()

    def finding(self, module: Module, line: int, message: str) -> Finding:
        return Finding(rule=self.id, path=module.path, line=line,
                       message=message, module=module.name)


_REGISTRY: List[Type[Rule]] = []


def register(rule_class: Type[Rule]) -> Type[Rule]:
    """Class decorator adding a rule to the global registry."""
    if not rule_class.id:
        raise ValueError(f"rule {rule_class.__name__} has no id")
    if rule_class.scope not in SCOPES:
        raise ValueError(
            f"rule {rule_class.id}: scope must be one of {SCOPES}, "
            f"got {rule_class.scope!r}"
        )
    if any(existing.id == rule_class.id for existing in _REGISTRY):
        raise ValueError(f"duplicate rule id {rule_class.id!r}")
    _REGISTRY.append(rule_class)
    return rule_class


def all_rules() -> List[Rule]:
    """Fresh instances of every registered rule, in registration order."""
    import repro.lint.rules  # noqa: F401  (populates the registry)

    return [rule_class() for rule_class in _REGISTRY]
