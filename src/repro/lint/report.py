"""Text and JSON reporters for a :class:`~repro.lint.finding.LintResult`."""

from __future__ import annotations

import json

from repro.lint.finding import LintResult


def format_text(result: LintResult, verbose: bool = False) -> str:
    lines = [finding.render() for finding in result.findings]
    if verbose:
        lines.extend(
            f"{finding.render()} [suppressed]"
            for finding in result.suppressed
        )
        lines.extend(
            f"{finding.render()} [baseline]"
            for finding in result.baselined
        )
    status = "clean" if result.ok else f"{len(result.findings)} finding(s)"
    lines.append(
        f"repro lint: {status} — {result.modules_scanned} modules scanned "
        f"({len(result.sim_path_modules)} sim-path), "
        f"{len(result.rules_run)} rules, "
        f"{len(result.suppressed)} suppressed, "
        f"{len(result.baselined)} baselined"
    )
    return "\n".join(lines)


def format_json(result: LintResult) -> str:
    return json.dumps(result.as_dict(), indent=2, sort_keys=True) + "\n"
