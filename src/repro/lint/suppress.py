"""Inline suppressions: ``# repro: allow[rule-id] reason``.

A suppression silences matching findings on its own line, or — when the
comment stands alone — on the next non-blank, non-comment line (so a
statement can carry the annotation on the line above it).  Several rule
ids may be listed: ``# repro: allow[rule-a, rule-b] reason``.

The *reason* is mandatory: an allow-comment is a reviewed exemption,
and the review lives in the reason text.  A reasonless allow is itself
reported (rule id ``lint-allow-reason``).
"""

from __future__ import annotations

import io
import re
import tokenize
from dataclasses import dataclass, field
from typing import Dict, List, Set

from repro.lint.finding import Finding

ALLOW_RE = re.compile(
    r"#\s*repro:\s*allow\[(?P<rules>[^\]]*)\]\s*(?P<reason>.*)$"
)

#: Rule id under which malformed suppressions are reported.
REASON_RULE = "lint-allow-reason"


@dataclass(slots=True)
class Suppression:
    """One parsed allow-comment."""

    line: int  # line the comment sits on
    applies_to: int  # line whose findings it silences
    rules: Set[str]
    reason: str
    used: bool = False


@dataclass(slots=True)
class Suppressions:
    """All allow-comments of one file, indexed by the line they cover."""

    by_line: Dict[int, List[Suppression]] = field(default_factory=dict)
    malformed: List[Finding] = field(default_factory=list)

    def matches(self, rule: str, line: int) -> bool:
        """Silence (and mark used) a finding of ``rule`` at ``line``."""
        for suppression in self.by_line.get(line, ()):
            if rule in suppression.rules:
                suppression.used = True
                return True
        return False

    def unused(self) -> List[Suppression]:
        return [
            s for entries in self.by_line.values() for s in entries if not s.used
        ]


def parse_suppressions(source: str, path: str) -> Suppressions:
    """Extract every allow-comment from ``source`` via the tokenizer
    (so string literals that merely *look* like comments never match)."""
    result = Suppressions()
    comments: List[tuple] = []  # (line, is_standalone, text)
    try:
        tokens = tokenize.generate_tokens(io.StringIO(source).readline)
        logical_start: Dict[int, bool] = {}
        for token in tokens:
            if token.type == tokenize.COMMENT:
                start_col = token.start[1]
                prefix = token.line[:start_col]
                comments.append((token.start[0], not prefix.strip(), token.string))
    except tokenize.TokenError:
        # Unterminated input: fall back to a line scan, still better than
        # dropping suppressions on the floor.
        for number, line in enumerate(source.splitlines(), start=1):
            if "#" in line:
                text = line[line.index("#"):]
                comments.append((number, not line.split("#")[0].strip(), text))

    lines = source.splitlines()

    def next_code_line(after: int) -> int:
        for number in range(after + 1, len(lines) + 1):
            stripped = lines[number - 1].strip()
            if stripped and not stripped.startswith("#"):
                return number
        return after

    for number, standalone, text in comments:
        match = ALLOW_RE.search(text)
        if match is None:
            continue
        rules = {part.strip() for part in match.group("rules").split(",")}
        rules.discard("")
        reason = match.group("reason").strip()
        if not rules or not reason:
            result.malformed.append(Finding(
                rule=REASON_RULE,
                path=path,
                line=number,
                message=(
                    "allow-comment needs at least one rule id and a reason: "
                    "`# repro: allow[rule-id] reason`"
                ),
            ))
            continue
        applies_to = next_code_line(number) if standalone else number
        entry = Suppression(number, applies_to, rules, reason)
        result.by_line.setdefault(applies_to, []).append(entry)
    return result
