"""Small shared AST helpers for the rule implementations."""

from __future__ import annotations

import ast
from typing import Iterable, Iterator, List, Optional


def dotted_name(node: ast.AST) -> Optional[str]:
    """``a.b.c`` for a Name/Attribute chain, else None."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def call_name(node: ast.Call) -> Optional[str]:
    """Dotted name of a call target, e.g. ``random.Random``."""
    return dotted_name(node.func)


def walk_in_scope(node: ast.AST) -> Iterator[ast.AST]:
    """Like :func:`ast.walk`, but does not descend into nested
    function/class definitions — one function body at a time."""
    stack: List[ast.AST] = list(ast.iter_child_nodes(node))
    while stack:
        child = stack.pop()
        yield child
        if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef,
                              ast.ClassDef, ast.Lambda)):
            continue
        stack.extend(ast.iter_child_nodes(child))


def functions_in(tree: ast.AST) -> Iterator[ast.AST]:
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield node


def decorator_names(node: ast.ClassDef) -> Iterable[str]:
    for decorator in node.decorator_list:
        target = decorator.func if isinstance(decorator, ast.Call) else decorator
        name = dotted_name(target)
        if name:
            yield name.rsplit(".", 1)[-1]


def dataclass_decorator(node: ast.ClassDef) -> Optional[ast.AST]:
    """The ``@dataclass`` decorator node of a class, if present."""
    for decorator in node.decorator_list:
        target = decorator.func if isinstance(decorator, ast.Call) else decorator
        name = dotted_name(target)
        if name and name.rsplit(".", 1)[-1] == "dataclass":
            return decorator
    return None
