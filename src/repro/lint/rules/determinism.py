"""Determinism rules: sim-path code must be a pure function of its seed.

Every rule here protects the repo's bit-identical-replay guarantee
(``tests/test_determinism.py``): a simulation run is a deterministic
function of ``(config, workload, seed)``, on any machine, in any
process, at any ``--jobs`` setting.
"""

from __future__ import annotations

import ast
from typing import Iterable, List, Set

from repro.lint.astutil import (
    call_name,
    dataclass_decorator,
    dotted_name,
    functions_in,
    walk_in_scope,
)
from repro.lint.base import Rule, register
from repro.lint.finding import Finding
from repro.lint.loader import Module

#: ``random.<fn>`` calls that draw from (or reseed) the *shared* module
#: RNG.  Only the ``Random`` class itself is allowed: instance-owned,
#: explicitly seeded generators.
_ALLOWED_RANDOM_ATTRS = {"Random"}

#: Wall-clock reads (suffix match on the dotted call name).
_WALLCLOCK_SUFFIXES = (
    "time.time", "time.time_ns",
    "time.perf_counter", "time.perf_counter_ns",
    "time.monotonic", "time.monotonic_ns",
    "time.process_time", "time.process_time_ns",
    "time.localtime", "time.gmtime", "time.ctime",
    "datetime.now", "datetime.utcnow", "datetime.today", "date.today",
)

#: Call names that hand work to the event queue or the network — the
#: sinks that make iteration order observable in the simulated world.
_SCHEDULING_SINKS = {
    "multicast", "schedule", "schedule_call", "schedule_many",
    "fire", "fire_in", "subscribe", "deliver", "put",
}


def _is_scheduling_sink(name: str) -> bool:
    last = name.rsplit(".", 1)[-1]
    return "send" in last or last in _SCHEDULING_SINKS


@register
class GlobalRngRule(Rule):
    id = "det-global-rng"
    title = "no shared module-level random.* in sim-path code"
    rationale = (
        "The random module's top-level functions share one hidden global "
        "generator; any draw perturbs every other consumer's stream, so "
        "replay depends on call interleaving across the whole process. "
        "Sim-path code must own a random.Random(seed) instance."
    )
    scope = "sim"

    def check(self, module: Module) -> Iterable[Finding]:
        for node in ast.walk(module.tree):
            if isinstance(node, ast.ImportFrom) and node.module == "random":
                for alias in node.names:
                    if alias.name not in _ALLOWED_RANDOM_ATTRS:
                        yield self.finding(
                            module, node.lineno,
                            f"`from random import {alias.name}` exposes the "
                            "shared global RNG; import only random.Random",
                        )
            elif isinstance(node, ast.Call):
                name = call_name(node)
                if (
                    name
                    and name.startswith("random.")
                    and name.split(".", 1)[1] not in _ALLOWED_RANDOM_ATTRS
                ):
                    yield self.finding(
                        module, node.lineno,
                        f"call to `{name}()` uses the shared global RNG; "
                        "use an instance-owned random.Random(seed)",
                    )


@register
class WallClockRule(Rule):
    id = "det-wallclock"
    title = "no wall-clock reads in sim-path code"
    rationale = (
        "Simulated time is the engine's cycle counter; reading the host "
        "clock makes behavior depend on machine load and breaks "
        "bit-identical replay and the content-addressed result cache."
    )
    scope = "sim"

    def check(self, module: Module) -> Iterable[Finding]:
        for node in ast.walk(module.tree):
            if isinstance(node, ast.ImportFrom) and node.module == "time":
                bad = [a.name for a in node.names
                       if any(s.endswith("." + a.name) or s == "time." + a.name
                              for s in _WALLCLOCK_SUFFIXES)]
                for name in bad:
                    yield self.finding(
                        module, node.lineno,
                        f"`from time import {name}` imports a wall-clock "
                        "source into sim-path code",
                    )
            elif isinstance(node, ast.Call):
                name = call_name(node)
                if name and any(
                    name == suffix or name.endswith("." + suffix)
                    for suffix in _WALLCLOCK_SUFFIXES
                ):
                    yield self.finding(
                        module, node.lineno,
                        f"wall-clock read `{name}()`; simulated code must "
                        "use engine.now",
                    )


@register
class EnvironmentRule(Rule):
    id = "det-env"
    title = "no environment access in sim-path code"
    rationale = (
        "os.environ varies per host and shell; a simulation outcome that "
        "depends on it cannot be replayed from its spec, and the cache "
        "key (which hashes only the spec) would collide across genuinely "
        "different runs."
    )
    scope = "sim"

    def check(self, module: Module) -> Iterable[Finding]:
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Attribute):
                name = dotted_name(node)
                if name == "os.environ":
                    yield self.finding(
                        module, node.lineno,
                        "os.environ read in sim-path code; thread explicit "
                        "config through SystemConfig instead",
                    )
            elif isinstance(node, ast.Call):
                name = call_name(node)
                if name in ("os.getenv", "getenv"):
                    yield self.finding(
                        module, node.lineno,
                        "os.getenv in sim-path code; thread explicit config "
                        "through SystemConfig instead",
                    )
            elif isinstance(node, ast.ImportFrom) and node.module == "os":
                for alias in node.names:
                    if alias.name in ("environ", "getenv"):
                        yield self.finding(
                            module, node.lineno,
                            f"`from os import {alias.name}` imports "
                            "environment access into sim-path code",
                        )


@register
class ModuleLevelRngRule(Rule):
    id = "det-owned-rng"
    title = "RNG objects must be instance-owned, not module globals"
    rationale = (
        "A module-level Random instance is shared by every object in the "
        "process; two systems running in one process (e.g. the in-process "
        "--jobs 1 runner, or a test suite) would interleave draws and "
        "diverge from their single-run streams.  Seeded generators belong "
        "to the object that draws from them."
    )
    scope = "sim"

    def check(self, module: Module) -> Iterable[Finding]:
        for node in module.tree.body:
            targets: List[ast.AST] = []
            value = None
            if isinstance(node, ast.Assign):
                targets, value = node.targets, node.value
            elif isinstance(node, ast.AnnAssign) and node.value is not None:
                targets, value = [node.target], node.value
            if not isinstance(value, ast.Call):
                continue
            name = call_name(value)
            if name and name.rsplit(".", 1)[-1] in ("Random", "SystemRandom"):
                label = ", ".join(
                    dotted_name(t) or "<target>" for t in targets
                )
                yield self.finding(
                    module, node.lineno,
                    f"module-level RNG `{label} = {name}(...)`; RNGs must be "
                    "owned by the object that draws from them",
                )


class _SetInference:
    """Conservative, syntactic set-typed-expression inference for one
    function scope (annotations + local assignments, to a fixpoint)."""

    _SET_METHOD_RESULTS = {
        "union", "intersection", "difference", "symmetric_difference", "copy",
    }
    _SET_BINOPS = (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)

    def __init__(self, function: ast.AST) -> None:
        self.set_names: Set[str] = set()
        args = function.args
        for arg in (
            list(args.posonlyargs) + list(args.args) + list(args.kwonlyargs)
        ):
            if arg.annotation is not None and self._annotation_is_set(arg.annotation):
                self.set_names.add(arg.arg)
        # Fixpoint over local assignments (x = set(); y = x | {1} ...).
        for _ in range(4):
            grew = False
            for node in walk_in_scope(function):
                target = None
                value = None
                if isinstance(node, ast.Assign) and len(node.targets) == 1:
                    target, value = node.targets[0], node.value
                elif isinstance(node, ast.AnnAssign) and node.value is not None:
                    target, value = node.target, node.value
                if (
                    isinstance(target, ast.Name)
                    and target.id not in self.set_names
                    and value is not None
                    and self.is_set_expr(value)
                ):
                    self.set_names.add(target.id)
                    grew = True
            if not grew:
                break

    @staticmethod
    def _annotation_is_set(annotation: ast.AST) -> bool:
        if isinstance(annotation, ast.Subscript):
            annotation = annotation.value
        name = dotted_name(annotation)
        return bool(name) and name.rsplit(".", 1)[-1].lower() in (
            "set", "frozenset",
        )

    def is_set_expr(self, node: ast.AST) -> bool:
        if isinstance(node, (ast.Set, ast.SetComp)):
            return True
        if isinstance(node, ast.Name):
            return node.id in self.set_names
        if isinstance(node, ast.Call):
            name = call_name(node)
            if name in ("set", "frozenset"):
                return True
            if (
                isinstance(node.func, ast.Attribute)
                and node.func.attr in self._SET_METHOD_RESULTS
                and self.is_set_expr(node.func.value)
            ):
                return True
            return False
        if isinstance(node, ast.BinOp) and isinstance(node.op, self._SET_BINOPS):
            return self.is_set_expr(node.left) or self.is_set_expr(node.right)
        return False


@register
class UnorderedIterationRule(Rule):
    id = "det-unordered-iter"
    title = "no unordered-collection iteration feeding event scheduling"
    rationale = (
        "Set iteration order is a function of hash-table layout — an "
        "implementation detail that varies with insertion history, "
        "interpreter build, and element type.  When such a loop sends "
        "messages or schedules events, the event stream (and therefore "
        "the whole run) inherits that accident.  Iterate sorted(...) "
        "instead; the same applies to scheduling straight off "
        "dict.values() (sort, or iterate sorted keys)."
    )
    scope = "sim"

    def check(self, module: Module) -> Iterable[Finding]:
        for function in functions_in(module.tree):
            inference = _SetInference(function)
            for node in walk_in_scope(function):
                if isinstance(node, ast.For):
                    yield from self._check_loop(
                        module, inference, node.iter, node.body, node.lineno
                    )
                elif isinstance(node, (ast.ListComp, ast.SetComp,
                                       ast.GeneratorExp, ast.DictComp)):
                    body = (
                        [node.key, node.value]
                        if isinstance(node, ast.DictComp)
                        else [node.elt]
                    )
                    for generator in node.generators:
                        yield from self._check_loop(
                            module, inference, generator.iter, body,
                            node.lineno,
                        )

    def _check_loop(self, module, inference, iterable, body, line):
        over_set = inference.is_set_expr(iterable)
        over_values = (
            isinstance(iterable, ast.Call)
            and isinstance(iterable.func, ast.Attribute)
            and iterable.func.attr == "values"
        )
        if not (over_set or over_values):
            return
        sink = self._first_sink(body)
        if sink is None:
            return
        what = "a set" if over_set else "dict.values()"
        yield self.finding(
            module, line,
            f"iteration over {what} feeds `{sink}` — event order would "
            "depend on hash-table layout; iterate sorted(...) instead",
        )

    @staticmethod
    def _first_sink(body) -> "str | None":
        for statement in body:
            for node in ast.walk(statement):
                if isinstance(node, ast.Call):
                    name = call_name(node)
                    if name and _is_scheduling_sink(name):
                        return name
        return None


@register
class IdOrderingRule(Rule):
    id = "det-id-order"
    title = "no id()-based ordering"
    rationale = (
        "id() is a memory address: unique within a run, meaningless "
        "across runs.  Sorting by it launders nondeterminism into code "
        "that looks ordered.  Sort by a stable domain key (node id, TID, "
        "line address) instead."
    )
    scope = "sim"

    _ORDERING_CALLS = {"sorted", "min", "max", "sort"}

    def check(self, module: Module) -> Iterable[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            name = call_name(node)
            if not name or name.rsplit(".", 1)[-1] not in self._ORDERING_CALLS:
                continue
            for keyword in node.keywords:
                if keyword.arg != "key":
                    continue
                if self._uses_id(keyword.value):
                    yield self.finding(
                        module, node.lineno,
                        f"`{name.rsplit('.', 1)[-1]}(..., key=...)` orders "
                        "by id(); use a stable domain key",
                    )

    @staticmethod
    def _uses_id(key: ast.AST) -> bool:
        if isinstance(key, ast.Name) and key.id == "id":
            return True
        if isinstance(key, ast.Lambda):
            return any(
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Name)
                and node.func.id == "id"
                for node in ast.walk(key.body)
            )
        return False


@register
class SlottedMessageRule(Rule):
    id = "det-slots"
    title = "message/event dataclasses must declare __slots__"
    rationale = (
        "Message and event objects are the simulator's highest-volume "
        "allocations; __slots__ makes them materially cheaper, and — the "
        "determinism angle — a slotted class cannot grow ad-hoc "
        "attributes mid-run, so a message's identity is exactly its "
        "declared fields (what the fault injector duplicates and the "
        "cache key hashes)."
    )
    scope = "sim"

    _MESSAGE_MODULES = {"messages", "message", "events", "eventlog"}
    _MESSAGE_MARKERS = {"traffic_class", "payload_bytes"}

    def check(self, module: Module) -> Iterable[Finding]:
        in_message_module = (
            module.name.rsplit(".", 1)[-1] in self._MESSAGE_MODULES
        )
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.ClassDef):
                continue
            decorator = dataclass_decorator(node)
            if decorator is None:
                continue
            if not (in_message_module or self._has_marker(node)):
                continue
            if self._is_slotted(node, decorator):
                continue
            yield self.finding(
                module, node.lineno,
                f"message/event dataclass `{node.name}` has no __slots__; "
                "use @dataclass(slots=True)",
            )

    def _has_marker(self, node: ast.ClassDef) -> bool:
        for statement in node.body:
            names: List[str] = []
            if isinstance(statement, ast.Assign):
                names = [t.id for t in statement.targets
                         if isinstance(t, ast.Name)]
            elif isinstance(statement, ast.AnnAssign) and isinstance(
                statement.target, ast.Name
            ):
                names = [statement.target.id]
            elif isinstance(statement, ast.FunctionDef):
                names = [statement.name]
            if any(name in self._MESSAGE_MARKERS for name in names):
                return True
        return False

    @staticmethod
    def _is_slotted(node: ast.ClassDef, decorator: ast.AST) -> bool:
        if isinstance(decorator, ast.Call):
            for keyword in decorator.keywords:
                if (
                    keyword.arg == "slots"
                    and isinstance(keyword.value, ast.Constant)
                    and keyword.value.value is True
                ):
                    return True
        for statement in node.body:
            if isinstance(statement, ast.Assign) and any(
                isinstance(t, ast.Name) and t.id == "__slots__"
                for t in statement.targets
            ):
                return True
        return False
