"""Rule families.  Importing this package populates the registry."""

from repro.lint.rules import determinism, protocol, spec  # noqa: F401
