"""Protocol-contract rules: the source must match the declared table.

The extraction here is deliberately structural, not semantic: handler
sites are message-type names used in dispatch structures (dict literals
mapping type -> bound handler, ``kind is X`` / ``isinstance(msg, X)``
tests) inside functions named ``deliver`` / ``_serve`` / ``route``;
emission sites are constructor calls of message-type names.  That is
exactly the shape of the hand-written dispatch in ``processor/`` and
``directory/``, so a new message type, a moved handler, or a rogue send
site shows up as a diff against
:data:`~repro.lint.protocol_table.PROTOCOL_TABLE`.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Tuple

from repro.lint.astutil import call_name, dataclass_decorator
from repro.lint.base import Rule, register
from repro.lint.finding import Finding
from repro.lint.loader import Module
from repro.lint.protocol_table import (
    HANDLER_MODULES,
    PROTOCOL_TABLE,
    RETRY_WRAPPERS,
)

#: Functions whose bodies are treated as dispatch structures.
DISPATCH_FUNCTIONS = ("deliver", "_serve", "route")


def _messages_module(modules: Dict[str, Module]) -> Optional[Module]:
    for name, module in modules.items():
        if name.endswith(".core.messages"):
            return module
    return None


def message_types(modules: Dict[str, Module]) -> Dict[str, int]:
    """Message dataclass names declared in ``core/messages.py`` (with
    their definition lines)."""
    module = _messages_module(modules)
    if module is None:
        return {}
    types: Dict[str, int] = {}
    for node in module.tree.body:
        if isinstance(node, ast.ClassDef) and dataclass_decorator(node):
            types[node.name] = node.lineno
    return types


@dataclass(slots=True, frozen=True)
class HandlerSite:
    message: str
    module: str
    function: str
    line: int


@dataclass(slots=True, frozen=True)
class EmissionSite:
    message: str
    module: str
    function: str  # enclosing function chain, innermost last ("a.b")
    line: int
    retry_wrapped: bool


def _function_index(tree: ast.AST) -> Dict[ast.AST, Tuple[ast.AST, ...]]:
    """Map every node to its chain of enclosing function definitions."""
    index: Dict[ast.AST, Tuple[ast.AST, ...]] = {}

    def visit(node: ast.AST, chain: Tuple[ast.AST, ...]) -> None:
        for child in ast.iter_child_nodes(node):
            extended = chain
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                extended = chain + (child,)
            index[child] = extended
            visit(child, extended)

    visit(tree, ())
    return index


def _arms_retry(function: ast.AST) -> bool:
    for node in ast.walk(function):
        if isinstance(node, ast.Call):
            name = call_name(node)
            if name and name.rsplit(".", 1)[-1] in RETRY_WRAPPERS:
                return True
    return False


def extract_handlers(modules: Dict[str, Module]) -> List[HandlerSite]:
    """Every message-dispatch site in the declared handler modules."""
    types = message_types(modules)
    sites: List[HandlerSite] = []
    for module_name in HANDLER_MODULES:
        module = modules.get(module_name)
        if module is None:
            continue
        index = _function_index(module.tree)
        for node in ast.walk(module.tree):
            chain = index.get(node, ())
            if not any(f.name in DISPATCH_FUNCTIONS for f in chain):
                continue
            function = chain[-1].name if chain else "<module>"
            if isinstance(node, ast.Dict):
                for key in node.keys:
                    if isinstance(key, ast.Name) and key.id in types:
                        sites.append(HandlerSite(
                            key.id, module_name, function, key.lineno,
                        ))
            elif isinstance(node, ast.Compare) and all(
                isinstance(op, ast.Is) for op in node.ops
            ):
                for comparator in node.comparators:
                    if (
                        isinstance(comparator, ast.Name)
                        and comparator.id in types
                    ):
                        sites.append(HandlerSite(
                            comparator.id, module_name, function,
                            comparator.lineno,
                        ))
            elif (
                isinstance(node, ast.Call)
                and call_name(node) == "isinstance"
                and len(node.args) == 2
            ):
                targets = (
                    node.args[1].elts
                    if isinstance(node.args[1], ast.Tuple)
                    else [node.args[1]]
                )
                for target in targets:
                    if isinstance(target, ast.Name) and target.id in types:
                        sites.append(HandlerSite(
                            target.id, module_name, function, target.lineno,
                        ))
    return sites


def extract_emissions(modules: Dict[str, Module]) -> List[EmissionSite]:
    """Every constructor call of a message type, anywhere in the tree
    (outside ``core/messages.py`` itself and the lint package)."""
    types = message_types(modules)
    sites: List[EmissionSite] = []
    for name, module in modules.items():
        if name.endswith(".core.messages") or ".lint" in name:
            continue
        index = _function_index(module.tree)
        for node in ast.walk(module.tree):
            if not (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Name)
                and node.func.id in types
            ):
                continue
            chain = index.get(node, ())
            sites.append(EmissionSite(
                message=node.func.id,
                module=name,
                function=".".join(f.name for f in chain) or "<module>",
                line=node.lineno,
                retry_wrapped=any(_arms_retry(f) for f in chain),
            ))
    return sites


@register
class HandlerCoverageRule(Rule):
    id = "proto-handler-coverage"
    title = "every message type has exactly its declared handler"
    rationale = (
        "A message type without a dispatch entry is dead on arrival (the "
        "node router raises on unknown messages); one with two handlers "
        "races them.  The protocol table is the reviewed contract; the "
        "source must match it exactly."
    )
    scope = "tree"

    def check_tree(self, modules: Dict[str, Module]) -> Iterable[Finding]:
        types = message_types(modules)
        if not types:
            return  # not a tree with a coherence message set
        messages_mod = _messages_module(modules)
        table_mod = next(
            (m for n, m in modules.items() if n.endswith(".protocol_table")),
            messages_mod,
        )
        by_message: Dict[str, List[HandlerSite]] = {}
        for site in extract_handlers(modules):
            by_message.setdefault(site.message, []).append(site)

        for name, line in sorted(types.items()):
            contract = PROTOCOL_TABLE.get(name)
            if contract is None:
                yield self.finding(
                    messages_mod, line,
                    f"message type `{name}` is not declared in the protocol "
                    "table (repro/lint/protocol_table.py)",
                )
                continue
            sites = by_message.get(name, [])
            if not sites:
                yield self.finding(
                    messages_mod, line,
                    f"message type `{name}` has no handler: the table "
                    f"declares `{contract.handler}` but no dispatch site "
                    "was found",
                )
                continue
            if len(sites) > 1:
                places = ", ".join(
                    f"{s.module}:{s.line} ({s.function})" for s in sites
                )
                yield self.finding(
                    messages_mod, line,
                    f"message type `{name}` has {len(sites)} dispatch "
                    f"sites — exactly one handler expected: {places}",
                )
                continue
            site = sites[0]
            if site.module != contract.handler:
                yield self.finding(
                    messages_mod, line,
                    f"message type `{name}` is handled in `{site.module}` "
                    f"but the table declares `{contract.handler}`",
                )
        for name in sorted(set(PROTOCOL_TABLE) - set(types)):
            yield self.finding(
                table_mod, 1,
                f"protocol table declares `{name}` but core/messages.py "
                "defines no such message type",
            )


@register
class EmissionRule(Rule):
    id = "proto-emission"
    title = "messages are only constructed by their declared senders"
    rationale = (
        "The commit protocol's correctness argument assigns each message "
        "a direction (processor->directory requests, directory->processor "
        "replies/invalidations).  A construction site outside the "
        "declared senders is either a protocol change (update the table, "
        "with review) or a layering bug."
    )
    scope = "tree"

    def check_tree(self, modules: Dict[str, Module]) -> Iterable[Finding]:
        if not message_types(modules):
            return
        for site in extract_emissions(modules):
            contract = PROTOCOL_TABLE.get(site.message)
            if contract is None:
                continue  # undeclared types are HandlerCoverageRule's job
            if site.module not in contract.emitters:
                module = modules[site.module]
                yield self.finding(
                    module, site.line,
                    f"`{site.message}` constructed in `{site.module}` "
                    f"({site.function}); declared emitters: "
                    f"{', '.join(contract.emitters)}",
                )


@register
class RetryWrapRule(Rule):
    id = "proto-retry-wrap"
    title = "commit-critical sends sit under a retry/backoff wrapper"
    rationale = (
        "On an unreliable fabric a single dropped request must never "
        "wedge a commit (the non-blocking guarantee).  Every function "
        "that constructs a commit-critical request must also arm a "
        "Retrier/AckTracker so the send is covered end-to-end."
    )
    scope = "tree"

    def check_tree(self, modules: Dict[str, Module]) -> Iterable[Finding]:
        if not message_types(modules):
            return
        for site in extract_emissions(modules):
            contract = PROTOCOL_TABLE.get(site.message)
            if contract is None or not contract.commit_critical:
                continue
            if not site.retry_wrapped:
                module = modules[site.module]
                yield self.finding(
                    module, site.line,
                    f"commit-critical `{site.message}` constructed in "
                    f"`{site.function}` with no Retrier/AckTracker in the "
                    "enclosing function",
                )
