"""Spec/cache rules: job specs must stay declarative and hashable.

The result cache (PR 3) addresses results by
``sha256(json.dumps(spec.canonical(), sort_keys=True))`` and ships
specs to worker processes by pickling.  Both properties are easy to
break silently — a lambda registered as a workload factory unpickles
as an error, an unsorted ``json.dumps`` makes the cache key depend on
dict insertion order, a ``set`` field serializes in hash order.  These
rules pin the conventions that keep the cache sound.
"""

from __future__ import annotations

import ast
from typing import Iterable, List, Set, Tuple

from repro.lint.astutil import call_name, dataclass_decorator, dotted_name
from repro.lint.base import Rule, register
from repro.lint.finding import Finding
from repro.lint.loader import Module

#: Annotation names acceptable in a cache-keyed dataclass: JSON-stable
#: scalars, containers with deterministic iteration, and the domain
#: configs whose ``asdict`` output is itself canonical.
_SERIALIZABLE_NAMES: Set[str] = {
    "int", "float", "bool", "str", "bytes", "None",
    "Optional", "Union", "Any",
    "Dict", "dict", "List", "list", "Tuple", "tuple",
    "Mapping", "Sequence",
    "SystemConfig", "FaultPlan", "PacketFault", "NodeFault",
}

_HASH_CALLS = ("sha256", "sha1", "sha512", "md5", "blake2b", "blake2s")


def _module_level_bindings(tree: ast.Module) -> Set[str]:
    names: Set[str] = set()
    for node in tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.ClassDef)):
            names.add(node.name)
        elif isinstance(node, (ast.Import, ast.ImportFrom)):
            for alias in node.names:
                names.add((alias.asname or alias.name).split(".")[0])
        elif isinstance(node, ast.Assign):
            for target in node.targets:
                if isinstance(target, ast.Name):
                    names.add(target.id)
        elif isinstance(node, ast.AnnAssign):
            if isinstance(node.target, ast.Name):
                names.add(node.target.id)
    return names


@register
class NamedFactoryRule(Rule):
    id = "spec-factory-named"
    title = "workload factories are named module-level callables"
    rationale = (
        "JobSpec reaches worker processes by pickling a factory *name*; "
        "the factory itself must be importable by that name on the "
        "worker side.  A lambda or closure registered in "
        "WORKLOAD_FACTORIES works in-process and breaks exactly when "
        "the parallel runner is used."
    )
    scope = "all"

    def check(self, module: Module) -> Iterable[Finding]:
        bindings = _module_level_bindings(module.tree)
        candidates: List[ast.AST] = []
        for node in ast.walk(module.tree):
            if (
                isinstance(node, ast.Call)
                and call_name(node) is not None
                and call_name(node).rsplit(".", 1)[-1] == "register_workload"
                and len(node.args) >= 2
            ):
                candidates.append(node.args[1])
        # Direct registry writes are only suspect at module level; the
        # sanctioned `register_workload` helper assigns a parameter.
        for node in module.tree.body:
            if (
                isinstance(node, ast.Assign)
                and len(node.targets) == 1
                and isinstance(node.targets[0], ast.Subscript)
                and dotted_name(node.targets[0].value) is not None
                and dotted_name(node.targets[0].value).endswith(
                    "WORKLOAD_FACTORIES")
            ):
                candidates.append(node.value)
        for factory in candidates:
            if isinstance(factory, ast.Lambda):
                yield self.finding(
                    module, factory.lineno,
                    "workload factory is a lambda; define a module-level "
                    "function and register it by name",
                )
            elif not isinstance(factory, ast.Name):
                yield self.finding(
                    module, factory.lineno,
                    "workload factory must be a plain name bound to a "
                    "module-level callable (got a "
                    f"{type(factory).__name__} expression)",
                )
            elif factory.id not in bindings:
                yield self.finding(
                    module, factory.lineno,
                    f"workload factory `{factory.id}` is not bound at "
                    "module level; closures do not survive pickling",
                )


@register
class CanonicalJsonRule(Rule):
    id = "spec-canonical-json"
    title = "hashed JSON is serialized with sort_keys=True"
    rationale = (
        "A cache key derived from json.dumps of a dict is only stable "
        "if key order is forced; insertion order is an implementation "
        "detail of the code that built the dict and changes under "
        "refactoring, silently splitting the cache."
    )
    scope = "all"

    def check(self, module: Module) -> Iterable[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            hashes = any(
                isinstance(sub, ast.Call)
                and call_name(sub) is not None
                and call_name(sub).rsplit(".", 1)[-1] in _HASH_CALLS
                for sub in ast.walk(node)
            )
            if not hashes:
                continue
            for sub in ast.walk(node):
                if not (
                    isinstance(sub, ast.Call)
                    and call_name(sub) in ("json.dumps", "dumps")
                ):
                    continue
                sorted_kw = next(
                    (kw for kw in sub.keywords if kw.arg == "sort_keys"),
                    None,
                )
                if sorted_kw is None or not (
                    isinstance(sorted_kw.value, ast.Constant)
                    and sorted_kw.value.value is True
                ):
                    yield self.finding(
                        module, sub.lineno,
                        f"json.dumps feeding a hash in `{node.name}` must "
                        "pass sort_keys=True",
                    )


def _annotation_ok(node: ast.AST) -> Tuple[bool, str]:
    """(ok, offending-name) for a field annotation subtree."""
    if isinstance(node, ast.Constant):
        if node.value is None:
            return True, ""
        if isinstance(node.value, str):  # forward reference
            try:
                return _annotation_ok(ast.parse(node.value, mode="eval").body)
            except SyntaxError:
                return False, node.value
        return False, repr(node.value)
    if isinstance(node, (ast.Name, ast.Attribute)):
        name = (dotted_name(node) or "?").rsplit(".", 1)[-1]
        return (name in _SERIALIZABLE_NAMES), name
    if isinstance(node, ast.Subscript):
        ok, bad = _annotation_ok(node.value)
        if not ok:
            return ok, bad
        params = (
            node.slice.elts if isinstance(node.slice, ast.Tuple)
            else [node.slice]
        )
        for param in params:
            if isinstance(param, ast.Constant) and param.value is Ellipsis:
                continue
            ok, bad = _annotation_ok(param)
            if not ok:
                return ok, bad
        return True, ""
    if isinstance(node, ast.BinOp) and isinstance(node.op, ast.BitOr):
        ok, bad = _annotation_ok(node.left)
        if not ok:
            return ok, bad
        return _annotation_ok(node.right)
    return False, ast.dump(node)[:40]


@register
class CacheKeyFieldRule(Rule):
    id = "spec-cache-key-field"
    title = "cache-keyed dataclass fields are canonically serializable"
    rationale = (
        "Any dataclass that defines canonical()/key() feeds its fields "
        "into a content hash.  Fields typed as sets, callables, or "
        "arbitrary objects serialize by repr/hash order and poison the "
        "key with run-to-run noise."
    )
    scope = "all"

    def check(self, module: Module) -> Iterable[Finding]:
        for node in ast.walk(module.tree):
            if not (isinstance(node, ast.ClassDef)
                    and dataclass_decorator(node)):
                continue
            methods = {
                item.name for item in node.body
                if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef))
            }
            if not {"canonical", "key"} & methods:
                continue
            for item in node.body:
                if not (isinstance(item, ast.AnnAssign)
                        and isinstance(item.target, ast.Name)):
                    continue
                ok, bad = _annotation_ok(item.annotation)
                if not ok:
                    yield self.finding(
                        module, item.lineno,
                        f"field `{node.name}.{item.target.id}` has "
                        f"non-canonical type `{bad}`; cache-keyed fields "
                        "must be JSON-stable "
                        "(scalars, Optional/Dict/List/Tuple, domain configs)",
                    )
