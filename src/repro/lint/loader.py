"""Load a package tree into parsed, suppression-aware modules."""

from __future__ import annotations

import ast
import os
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.lint.suppress import Suppressions, parse_suppressions


@dataclass(slots=True)
class Module:
    """One parsed source file."""

    name: str  # dotted module name, e.g. "repro.sim.engine"
    path: str  # path as reported in findings (relative to the tree root)
    tree: ast.Module
    source: str
    suppressions: Suppressions
    #: Filled in by the classifier: "sim" or "driver".
    path_kind: str = "driver"
    #: Parse errors surface as findings, not crashes.
    errors: List[str] = field(default_factory=list)


def load_source(source: str, name: str = "fixture",
                path: Optional[str] = None) -> Module:
    """Parse one in-memory source string (test fixtures, CLI stdin)."""
    path = path or name.replace(".", "/") + ".py"
    tree = ast.parse(source, filename=path)
    return Module(
        name=name,
        path=path,
        tree=tree,
        source=source,
        suppressions=parse_suppressions(source, path),
    )


def module_name_for(root: str, file_path: str) -> str:
    """Dotted module name of ``file_path`` inside package dir ``root``.

    ``root`` is the package directory itself (e.g. ``src/repro``); the
    package is named after its basename, so ``src/repro/sim/engine.py``
    becomes ``repro.sim.engine``.
    """
    package = os.path.basename(os.path.normpath(root))
    relative = os.path.relpath(file_path, root)
    parts = [package] + relative.split(os.sep)
    if parts[-1] == "__init__.py":
        parts = parts[:-1]
    else:
        parts[-1] = parts[-1][:-3]  # strip .py
    return ".".join(parts)


def load_tree(root: str) -> Dict[str, Module]:
    """Parse every ``*.py`` under package directory ``root``.

    Returns ``{dotted_name: Module}``.  Files that fail to parse are
    still returned (with an empty AST) so the runner can report them.
    """
    modules: Dict[str, Module] = {}
    for dirpath, dirnames, filenames in os.walk(root):
        dirnames[:] = sorted(
            d for d in dirnames
            if d not in ("__pycache__",) and not d.endswith(".egg-info")
        )
        for filename in sorted(filenames):
            if not filename.endswith(".py"):
                continue
            file_path = os.path.join(dirpath, filename)
            name = module_name_for(root, file_path)
            display = os.path.relpath(file_path, os.path.dirname(root))
            with open(file_path, encoding="utf-8") as handle:
                source = handle.read()
            try:
                tree = ast.parse(source, filename=display)
                errors: List[str] = []
            except SyntaxError as exc:
                tree = ast.Module(body=[], type_ignores=[])
                errors = [f"syntax error: {exc.msg} (line {exc.lineno})"]
            modules[name] = Module(
                name=name,
                path=display,
                tree=tree,
                source=source,
                suppressions=parse_suppressions(source, display),
                errors=errors,
            )
    return modules
