"""TAPE-style transactional profiling.

The paper (Section 3.3) points programmers at TAPE — the TCC group's
Transactional Application Profiling Environment — to "quickly detect the
occurrence" of rare pathologies such as starving transactions.  This
package reproduces that companion tool: it rides along with any
simulation, attributing every violation to the conflicting line, the
committing processor, and the victim transaction, and summarizing the
conflict hot spots, wasted work, retention (starvation) events, and
speculative-buffer overflows.
"""

from repro.profiling.tape import TapeProfiler, ViolationRecord

__all__ = ["TapeProfiler", "ViolationRecord"]
