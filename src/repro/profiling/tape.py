"""The TAPE profiler: violation attribution and pathology reports.

TAPE (Chafi et al., "TAPE: a transactional application profiling
environment") hooks the violation path of a TCC machine: hardware
already knows, at abort time, which address caused the violation, which
transaction committed it, and how much work was discarded.  The profiler
aggregates those events by conflict line ("object"), by transaction
label, and by processor pair, and flags starvation (transactions that
needed TID retention to make progress).

The hooks cost a dictionary update per violation, so the profiler is
always attached to a :class:`~repro.core.system.ScalableTCCSystem` as
``system.tape``.
"""

from __future__ import annotations

from collections import Counter, defaultdict
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.workloads.base import Transaction


@dataclass
class ViolationRecord:
    """One violation event, as hardware would report it to TAPE."""

    time: int
    victim_proc: int
    victim_tx: int
    victim_label: str
    line: int
    word_mask: int
    committer_tid: int
    committer_proc: int
    wasted_cycles: int
    in_commit_phase: bool


class TapeProfiler:
    """Aggregates violation/retention/overflow events for reporting."""

    def __init__(self, max_records: int = 10_000) -> None:
        self.max_records = max_records
        self.records: List[ViolationRecord] = []
        self.total_violations = 0
        self.total_wasted_cycles = 0
        self.by_line: Counter = Counter()
        self.wasted_by_line: Counter = Counter()
        self.by_label: Counter = Counter()
        self.by_pair: Counter = Counter()  # (committer_proc, victim_proc)
        self.retentions: List[Tuple[int, int, int]] = []  # (time, proc, tx)
        self.overflow_events = 0
        # pending causes keyed by victim processor until abort accounting
        self._pending_cause: Dict[int, Tuple[int, int, int, int]] = {}

    # ------------------------------------------------------------------
    # hooks (called by the processor model)
    # ------------------------------------------------------------------

    def note_violation_cause(
        self, victim_proc: int, line: int, word_mask: int,
        committer_tid: int, committer_proc: int,
    ) -> None:
        """The invalidation that killed the transaction (hardware knows
        it at violation time; the wasted work is known at abort time)."""
        self._pending_cause.setdefault(
            victim_proc, (line, word_mask, committer_tid, committer_proc)
        )

    def record_abort(
        self,
        time: int,
        victim_proc: int,
        tx: Transaction,
        wasted_cycles: int,
        in_commit_phase: bool,
    ) -> None:
        """The violated attempt has been rolled back; account it."""
        cause = self._pending_cause.pop(victim_proc, None)
        line, word_mask, committer_tid, committer_proc = cause or (-1, 0, -1, -1)
        self.total_violations += 1
        self.total_wasted_cycles += wasted_cycles
        self.by_line[line] += 1
        self.wasted_by_line[line] += wasted_cycles
        self.by_label[tx.label or f"tx{tx.tx_id}"] += 1
        self.by_pair[(committer_proc, victim_proc)] += 1
        if len(self.records) < self.max_records:
            self.records.append(
                ViolationRecord(
                    time=time,
                    victim_proc=victim_proc,
                    victim_tx=tx.tx_id,
                    victim_label=tx.label,
                    line=line,
                    word_mask=word_mask,
                    committer_tid=committer_tid,
                    committer_proc=committer_proc,
                    wasted_cycles=wasted_cycles,
                    in_commit_phase=in_commit_phase,
                )
            )

    def record_retention(self, time: int, proc: int, tx: Transaction) -> None:
        """A transaction crossed the retention threshold: starvation."""
        self.retentions.append((time, proc, tx.tx_id))

    def record_overflow(self) -> None:
        self.overflow_events += 1

    # ------------------------------------------------------------------
    # queries and reporting
    # ------------------------------------------------------------------

    def hot_lines(self, top: int = 10) -> List[Tuple[int, int, int]]:
        """(line, violations, wasted cycles), most-violating first."""
        return [
            (line, count, self.wasted_by_line[line])
            for line, count in self.by_line.most_common(top)
            if line >= 0
        ]

    def starving_transactions(self) -> List[Tuple[int, int, int]]:
        return list(self.retentions)

    def commit_phase_fraction(self) -> float:
        """Fraction of recorded violations that struck during commit."""
        if not self.records:
            return 0.0
        in_commit = sum(1 for r in self.records if r.in_commit_phase)
        return in_commit / len(self.records)

    def report(self, top: int = 8) -> str:
        lines = [
            "TAPE report",
            f"  violations          : {self.total_violations}",
            f"  wasted cycles       : {self.total_wasted_cycles:,}",
            f"  retained (starving) : {len(self.retentions)}",
            f"  buffer overflows    : {self.overflow_events}",
        ]
        hot = self.hot_lines(top)
        if hot:
            lines.append("  hottest conflict lines:")
            for line, count, wasted in hot:
                lines.append(
                    f"    line {line:#x}: {count} violations, "
                    f"{wasted:,} wasted cycles"
                )
        if self.by_label:
            lines.append("  most-violated transactions:")
            for label, count in self.by_label.most_common(top):
                lines.append(f"    {label}: {count}")
        pairs = [(pair, n) for pair, n in self.by_pair.most_common(top)
                 if pair[0] >= 0]
        if pairs:
            lines.append("  committer -> victim pairs:")
            for (committer, victim), count in pairs:
                lines.append(f"    P{committer} -> P{victim}: {count}")
        return "\n".join(lines)
