"""2-D mesh topology and hop counting.

The paper's machine (Table 2) uses a 2-D grid with dimension-ordered
routing; the only topological quantity the timing model needs is the hop
count between two nodes, which for XY routing is the Manhattan distance.
"""

from __future__ import annotations

import math
from typing import List, Tuple


class MeshTopology:
    """An ``rows x cols`` mesh over ``n_nodes`` consecutive node ids.

    The grid is chosen as close to square as possible (e.g. 64 nodes →
    8x8, 32 → 8x4 or 4x8, 2 → 1x2); trailing grid slots beyond
    ``n_nodes`` are simply unused.
    """

    def __init__(self, n_nodes: int) -> None:
        if n_nodes < 1:
            raise ValueError("need at least one node")
        self.n_nodes = n_nodes
        self.cols = self._best_cols(n_nodes)
        self.rows = math.ceil(n_nodes / self.cols)
        # Hop counts are pure Manhattan distance, so the full n x n table
        # is tiny (64 nodes -> 4096 ints) and kills two divmods plus four
        # abs/compare ops per packet on the send path.
        cols = self.cols
        coords = [divmod(node, cols) for node in range(n_nodes)]
        self._hop_table: List[List[int]] = [
            [abs(ra - rb) + abs(ca - cb) for (rb, cb) in coords]
            for (ra, ca) in coords
        ]
        self._route_cache: dict = {}

    @staticmethod
    def _best_cols(n_nodes: int) -> int:
        """Widest factor ≤ sqrt(n); falls back to a near-square overlay."""
        best = 1
        for cols in range(1, int(math.isqrt(n_nodes)) + 1):
            if n_nodes % cols == 0:
                best = cols
        if best == 1 and n_nodes > 3:
            # Prime node count: use a near-square non-exact grid.
            return max(1, int(math.isqrt(n_nodes)))
        return max(best, 1) if n_nodes <= 3 else n_nodes // best if best > 1 else best

    def coordinates(self, node: int) -> Tuple[int, int]:
        """(row, col) of a node id."""
        self._check(node)
        return divmod(node, self.cols)

    def hops(self, src: int, dst: int) -> int:
        """Manhattan distance — the link traversals of an XY-routed packet."""
        if 0 <= src < self.n_nodes and 0 <= dst < self.n_nodes:
            return self._hop_table[src][dst]
        self._check(src)
        self._check(dst)
        raise AssertionError("unreachable")  # pragma: no cover

    @property
    def diameter(self) -> int:
        """Maximum hop count between any two populated nodes."""
        last = self.n_nodes - 1
        row, col = divmod(last, self.cols)
        return row + max(col, self.cols - 1 if row > 0 else col)

    def average_hops(self) -> float:
        """Mean hop count over all ordered pairs of distinct nodes."""
        if self.n_nodes == 1:
            return 0.0
        total = sum(sum(row) for row in self._hop_table)
        return total / (self.n_nodes * (self.n_nodes - 1))

    def neighbors(self, node: int) -> List[int]:
        """Directly connected nodes (mesh edges, no wraparound)."""
        self._check(node)
        row, col = divmod(node, self.cols)
        found = []
        for d_row, d_col in ((-1, 0), (1, 0), (0, -1), (0, 1)):
            n_row, n_col = row + d_row, col + d_col
            if 0 <= n_row < self.rows and 0 <= n_col < self.cols:
                neighbor = n_row * self.cols + n_col
                if neighbor < self.n_nodes:
                    found.append(neighbor)
        return found

    def route(self, src: int, dst: int) -> List[Tuple[int, int]]:
        """The directed links an XY-routed packet traverses (X first).

        Routes are memoized; callers must not mutate the returned list.
        """
        cached = self._route_cache.get((src, dst))
        if cached is not None:
            return cached
        self._check(src)
        self._check(dst)
        links: List[Tuple[int, int]] = []
        row, col = divmod(src, self.cols)
        dst_row, dst_col = divmod(dst, self.cols)
        current = src
        while col != dst_col:
            col += 1 if dst_col > col else -1
            nxt = row * self.cols + col
            links.append((current, nxt))
            current = nxt
        while row != dst_row:
            row += 1 if dst_row > row else -1
            nxt = row * self.cols + col
            links.append((current, nxt))
            current = nxt
        self._route_cache[(src, dst)] = links
        return links

    def _check(self, node: int) -> None:
        if not 0 <= node < self.n_nodes:
            raise ValueError(f"node {node} outside [0, {self.n_nodes})")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"MeshTopology({self.n_nodes} nodes as {self.rows}x{self.cols})"
