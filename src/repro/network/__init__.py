"""Interconnection network: 2-D mesh topology and message transport.

Models the paper's Table 2 interconnect: a 2-D grid with a configurable
per-link (per-hop) latency — the knob swept by Figure 8 — plus optional
per-node bandwidth serialization and deterministic delivery jitter to
exercise the protocol's unordered-network race handling.  All traffic is
classified and counted so Figure 9 (bytes per instruction by class) can be
regenerated.
"""

from repro.network.interconnect import Interconnect, TrafficStats
from repro.network.message import (
    CLASS_COMMIT,
    CLASS_MISS,
    CLASS_OVERHEAD,
    CLASS_WRITEBACK,
    Packet,
)
from repro.network.topology import MeshTopology

__all__ = [
    "CLASS_COMMIT",
    "CLASS_MISS",
    "CLASS_OVERHEAD",
    "CLASS_WRITEBACK",
    "Interconnect",
    "MeshTopology",
    "Packet",
    "TrafficStats",
]
