"""Message transport over the mesh with latency, bandwidth and jitter.

Delivery time for a packet from ``src`` to ``dst``:

    egress wait (per-node bandwidth serialization, optional)
  + hops(src, dst) * link_latency          (Table 2 / Figure 8 knob)
  + router overhead (fixed)
  + serialization  (total_bytes / link_bytes_per_cycle, optional)
  + jitter          (deterministic pseudo-random, unordered networks only)

The network is *unordered* by default, as in the paper ("additional
mechanisms are required to accommodate ... its distributed memory and
unordered interconnection network"): two packets between the same pair of
nodes may be delivered out of send order because of jitter.  Protocol
layers must (and do) tolerate this; an ``ordered=True`` mode exists for
differential testing.

Jitter comes from an instance-owned generator, never the module-global
``random`` state.  Two sources are available:

* ``"mt"`` (default): the classic per-interconnect ``random.Random(seed)``
  Mersenne Twister stream, drawn via a bound ``_randbelow`` — the exact
  value sequence the original per-packet ``randint`` produced, minus two
  layers of call overhead.
* ``"xorshift"``: a per-(src, dst) xorshift64* stream seeded from
  ``seed`` with splitmix64.  Cheaper and localizes each pair's jitter
  sequence (adding a flow does not perturb other pairs' jitter), but it
  is a *different* deterministic sequence, so simulated timings differ
  from ``"mt"`` runs.  Opt-in for that reason.
"""

from __future__ import annotations

from collections import defaultdict
from random import Random
from typing import Any, Callable, Dict, Iterable, List, Optional

from repro.network.message import HEADER_BYTES, TRAFFIC_CLASSES, Packet
from repro.network.topology import MeshTopology
from repro.sim.engine import Engine

Handler = Callable[[Packet], None]

_CLASS_INDEX = {cls: i for i, cls in enumerate(TRAFFIC_CLASSES)}
_OVERHEAD = _CLASS_INDEX["overhead"]

JITTER_SOURCES = ("mt", "xorshift")

_MASK64 = (1 << 64) - 1


def _splitmix64(state: int) -> int:
    """One splitmix64 step — used only to seed per-pair xorshift streams."""
    state = (state + 0x9E3779B97F4A7C15) & _MASK64
    z = state
    z = ((z ^ (z >> 30)) * 0xBF58476D1CE4E5B9) & _MASK64
    z = ((z ^ (z >> 27)) * 0x94D049BB133111EB) & _MASK64
    return z ^ (z >> 31)


class TrafficStats:
    """Byte counters by class and by receiving node (Figure 9's inputs).

    Counters are fixed-index lists on the hot path; the dict views the
    analysis layer reads (:attr:`bytes_by_class`, :attr:`bytes_into_node`,
    :attr:`bytes_out_of_node`) are built on demand.
    """

    __slots__ = ("_by_class", "_into", "_out", "packets", "total_hop_cycles")

    def __init__(self, n_nodes: int = 0) -> None:
        self._by_class: List[int] = [0] * len(TRAFFIC_CLASSES)
        self._into: List[int] = [0] * n_nodes
        self._out: List[int] = [0] * n_nodes
        self.packets = 0
        self.total_hop_cycles = 0

    def _grow(self, node: int) -> None:
        pad = node + 1 - len(self._into)
        if pad > 0:
            self._into.extend([0] * pad)
            self._out.extend([0] * pad)

    def record(self, packet: Packet, hop_cycles: int) -> None:
        self.packets += 1
        by_class = self._by_class
        by_class[_CLASS_INDEX[packet.traffic_class]] += packet.payload_bytes
        by_class[_OVERHEAD] += HEADER_BYTES
        total = packet.payload_bytes + HEADER_BYTES
        if packet.dst >= len(self._into) or packet.src >= len(self._into):
            self._grow(max(packet.dst, packet.src))
        self._into[packet.dst] += total
        self._out[packet.src] += total
        self.total_hop_cycles += hop_cycles

    def record_replica(self, packet: Packet) -> None:
        """A fabric-replicated multicast copy: one route byte of overhead."""
        self.packets += 1
        self._by_class[_OVERHEAD] += 1
        if packet.dst >= len(self._into):
            self._grow(packet.dst)
        self._into[packet.dst] += 1

    @property
    def bytes_by_class(self) -> Dict[str, int]:
        return dict(zip(TRAFFIC_CLASSES, self._by_class))

    @property
    def bytes_into_node(self) -> Dict[int, int]:
        return defaultdict(
            int, {node: count for node, count in enumerate(self._into) if count}
        )

    @property
    def bytes_out_of_node(self) -> Dict[int, int]:
        return defaultdict(
            int, {node: count for node, count in enumerate(self._out) if count}
        )

    @property
    def total_bytes(self) -> int:
        return sum(self._by_class)

    def per_class_fraction(self) -> Dict[str, float]:
        total = self.total_bytes
        if not total:
            return {cls: 0.0 for cls in TRAFFIC_CLASSES}
        return {
            cls: count / total
            for cls, count in zip(TRAFFIC_CLASSES, self._by_class)
        }


class Interconnect:
    """The machine's 2-D mesh transport."""

    def __init__(
        self,
        engine: Engine,
        n_nodes: int,
        link_latency: int = 3,
        router_latency: int = 1,
        local_latency: int = 1,
        link_bytes_per_cycle: Optional[int] = 16,
        ordered: bool = False,
        jitter: int = 2,
        seed: int = 0,
        link_contention: bool = False,
        jitter_source: str = "mt",
    ) -> None:
        if jitter_source not in JITTER_SOURCES:
            raise ValueError(
                f"jitter_source must be one of {JITTER_SOURCES}, got {jitter_source!r}"
            )
        self.engine = engine
        self.topology = MeshTopology(n_nodes)
        self.link_latency = link_latency
        self.router_latency = router_latency
        self.local_latency = local_latency
        self.link_bytes_per_cycle = link_bytes_per_cycle
        self.ordered = ordered
        self.jitter = jitter if not ordered else 0
        self.jitter_source = jitter_source
        self.seed = seed
        self._rng = Random(seed)
        # randint(0, j) == _randbelow(j + 1) on the same Mersenne Twister
        # stream; binding it skips the randint/randrange wrappers while
        # producing bit-identical draws.
        self._draw = getattr(
            self._rng, "_randbelow", None
        ) or (lambda n: self._rng.randrange(n))
        # Lazily-seeded xorshift64* state per (src, dst), for the
        # "xorshift" jitter source.
        self._pair_state: Dict[int, int] = {}
        self._handlers: Dict[int, Handler] = {}
        self._egress_free_at: List[int] = [0] * n_nodes
        self.link_contention = link_contention
        self._link_free_at: Dict[tuple, int] = defaultdict(int)
        self.stats = TrafficStats(n_nodes)
        #: Optional :class:`repro.faults.injector.FaultInjector`; when set
        #: it owns final delivery scheduling (drop/dup/delay/reorder).
        #: None (the default) keeps the fault-free fast path untouched.
        self.fault_injector = None

    # -- wiring -----------------------------------------------------------

    def register(self, node: int, handler: Handler) -> None:
        """Attach the node's message handler (its communication assist)."""
        if node in self._handlers:
            raise ValueError(f"node {node} already registered")
        self._handlers[node] = handler

    # -- timing -----------------------------------------------------------

    def transit_cycles(self, src: int, dst: int, total_bytes: int) -> int:
        """Pure wire time, excluding egress queueing and jitter."""
        hops = self.topology.hops(src, dst)
        if hops == 0:
            return self.local_latency
        cycles = hops * self.link_latency + self.router_latency
        if self.link_bytes_per_cycle:
            cycles += (total_bytes + self.link_bytes_per_cycle - 1) // self.link_bytes_per_cycle
        return cycles

    def _contended_transit(
        self, src: int, dst: int, total_bytes: int, start_offset: int
    ) -> int:
        """Wormhole-style XY traversal with per-link occupancy.

        The packet's head flit reserves each directed link in path order;
        a busy link stalls the packet until it frees.  Each link stays
        busy for the packet's serialization time.
        """
        serialization = 1
        if self.link_bytes_per_cycle:
            serialization = max(
                1,
                (total_bytes + self.link_bytes_per_cycle - 1)
                // self.link_bytes_per_cycle,
            )
        now = self.engine.now + start_offset
        arrival = now
        link_free = self._link_free_at
        for link in self.topology.route(src, dst):
            enter = arrival if arrival >= link_free[link] else link_free[link]
            link_free[link] = enter + serialization
            arrival = enter + self.link_latency
        arrival += self.router_latency + serialization
        return arrival - now

    def _jitter_cycles(self, src: int, dst: int) -> int:
        """The next jitter draw in ``[0, self.jitter]`` for this packet."""
        if self.jitter_source == "mt":
            return self._draw(self.jitter + 1)
        # xorshift64* keyed by (seed, src, dst): each pair advances its
        # own stream, so unrelated flows never perturb each other.
        key = src * self.topology.n_nodes + dst
        state = self._pair_state.get(key)
        if state is None:
            state = _splitmix64((self.seed << 32) ^ (key + 1)) or 0x2545F4914F6CDD1D
        state ^= (state << 13) & _MASK64
        state ^= state >> 7
        state ^= (state << 17) & _MASK64
        self._pair_state[key] = state
        return (((state * 0x2545F4914F6CDD1D) & _MASK64) * (self.jitter + 1)) >> 64

    # -- sending ----------------------------------------------------------

    def send(
        self,
        src: int,
        dst: int,
        payload: Any,
        payload_bytes: int,
        traffic_class: str,
        replica: bool = False,
    ) -> Packet:
        """Dispatch a packet; the destination handler runs at delivery time.

        ``replica`` marks in-fabric copies of a multicast: they are
        delivered normally but charged only a route byte (the routers
        replicate the flit; it is not re-injected at the source).
        """
        packet = Packet(src, dst, payload, payload_bytes, traffic_class)
        engine = self.engine
        now = engine.now
        packet.send_time = now
        total_bytes = payload_bytes + HEADER_BYTES
        bandwidth = self.link_bytes_per_cycle
        hops = self.topology.hops(src, dst)
        # Egress serialization: a node injects one packet at a time.
        if replica or not bandwidth:
            delay = 0
        else:
            free_at = self._egress_free_at[src]
            if free_at < now:
                free_at = now
            self._egress_free_at[src] = (
                free_at + (total_bytes + bandwidth - 1) // bandwidth
            )
            delay = free_at - now
        if self.link_contention and src != dst:
            delay += self._contended_transit(src, dst, total_bytes, delay)
        elif hops == 0:
            delay += self.local_latency
        else:
            delay += hops * self.link_latency + self.router_latency
            if bandwidth:
                delay += (total_bytes + bandwidth - 1) // bandwidth
        if self.jitter:
            delay += self._jitter_cycles(src, dst)
        packet.deliver_time = now + delay
        if replica:
            self.stats.record_replica(packet)
        else:
            self.stats.record(packet, hops * self.link_latency)
        if self.fault_injector is None:
            engine.schedule_call(delay, self._deliver, packet)
        else:
            self.fault_injector.dispatch(engine, self._deliver, packet, delay)
        return packet

    def multicast(
        self,
        src: int,
        dsts: Iterable[int],
        payload: Any,
        payload_bytes: int,
        traffic_class: str,
    ) -> int:
        """Limited multicast (Section 2.2: "limited multicast messages are
        cheap in a high bandwidth interconnect").

        One full packet is injected and charged; the fabric replicates it
        toward the remaining destinations, each copy costing only a route
        byte of overhead.  Every destination still receives its own
        delivery with an independent latency.
        """
        count = 0
        for dst in dsts:
            self.send(src, dst, payload, payload_bytes, traffic_class,
                      replica=count > 0)
            count += 1
        return count

    def _deliver(self, packet: Packet) -> None:
        handler = self._handlers.get(packet.dst)
        if handler is None:
            raise RuntimeError(f"packet to unregistered node {packet.dst}: {packet!r}")
        handler(packet)
