"""Message transport over the mesh with latency, bandwidth and jitter.

Delivery time for a packet from ``src`` to ``dst``:

    egress wait (per-node bandwidth serialization, optional)
  + hops(src, dst) * link_latency          (Table 2 / Figure 8 knob)
  + router overhead (fixed)
  + serialization  (total_bytes / link_bytes_per_cycle, optional)
  + jitter          (deterministic pseudo-random, unordered networks only)

The network is *unordered* by default, as in the paper ("additional
mechanisms are required to accommodate ... its distributed memory and
unordered interconnection network"): two packets between the same pair of
nodes may be delivered out of send order because of jitter.  Protocol
layers must (and do) tolerate this; an ``ordered=True`` mode exists for
differential testing.
"""

from __future__ import annotations

import random
from collections import defaultdict
from typing import Any, Callable, Dict, Iterable, Optional

from repro.network.message import HEADER_BYTES, TRAFFIC_CLASSES, Packet
from repro.network.topology import MeshTopology
from repro.sim.engine import Engine

Handler = Callable[[Packet], None]


class TrafficStats:
    """Byte counters by class and by receiving node (Figure 9's inputs)."""

    def __init__(self) -> None:
        self.bytes_by_class: Dict[str, int] = {cls: 0 for cls in TRAFFIC_CLASSES}
        self.bytes_into_node: Dict[int, int] = defaultdict(int)
        self.bytes_out_of_node: Dict[int, int] = defaultdict(int)
        self.packets = 0
        self.total_hop_cycles = 0

    def record(self, packet: Packet, hop_cycles: int) -> None:
        self.packets += 1
        self.bytes_by_class[packet.traffic_class] += packet.payload_bytes
        self.bytes_by_class["overhead"] += HEADER_BYTES
        self.bytes_into_node[packet.dst] += packet.total_bytes
        self.bytes_out_of_node[packet.src] += packet.total_bytes
        self.total_hop_cycles += hop_cycles

    def record_replica(self, packet: Packet) -> None:
        """A fabric-replicated multicast copy: one route byte of overhead."""
        self.packets += 1
        self.bytes_by_class["overhead"] += 1
        self.bytes_into_node[packet.dst] += 1

    @property
    def total_bytes(self) -> int:
        return sum(self.bytes_by_class.values())

    def per_class_fraction(self) -> Dict[str, float]:
        total = self.total_bytes
        if not total:
            return {cls: 0.0 for cls in TRAFFIC_CLASSES}
        return {cls: count / total for cls, count in self.bytes_by_class.items()}


class Interconnect:
    """The machine's 2-D mesh transport."""

    def __init__(
        self,
        engine: Engine,
        n_nodes: int,
        link_latency: int = 3,
        router_latency: int = 1,
        local_latency: int = 1,
        link_bytes_per_cycle: Optional[int] = 16,
        ordered: bool = False,
        jitter: int = 2,
        seed: int = 0,
        link_contention: bool = False,
    ) -> None:
        self.engine = engine
        self.topology = MeshTopology(n_nodes)
        self.link_latency = link_latency
        self.router_latency = router_latency
        self.local_latency = local_latency
        self.link_bytes_per_cycle = link_bytes_per_cycle
        self.ordered = ordered
        self.jitter = jitter if not ordered else 0
        self._rng = random.Random(seed)
        self._handlers: Dict[int, Handler] = {}
        self._egress_free_at: Dict[int, int] = defaultdict(int)
        self.link_contention = link_contention
        self._link_free_at: Dict[tuple, int] = defaultdict(int)
        self.stats = TrafficStats()

    # -- wiring -----------------------------------------------------------

    def register(self, node: int, handler: Handler) -> None:
        """Attach the node's message handler (its communication assist)."""
        if node in self._handlers:
            raise ValueError(f"node {node} already registered")
        self._handlers[node] = handler

    # -- timing -----------------------------------------------------------

    def transit_cycles(self, src: int, dst: int, total_bytes: int) -> int:
        """Pure wire time, excluding egress queueing and jitter."""
        hops = self.topology.hops(src, dst)
        if hops == 0:
            return self.local_latency
        cycles = hops * self.link_latency + self.router_latency
        if self.link_bytes_per_cycle:
            cycles += (total_bytes + self.link_bytes_per_cycle - 1) // self.link_bytes_per_cycle
        return cycles

    def _contended_transit(
        self, src: int, dst: int, total_bytes: int, start_offset: int
    ) -> int:
        """Wormhole-style XY traversal with per-link occupancy.

        The packet's head flit reserves each directed link in path order;
        a busy link stalls the packet until it frees.  Each link stays
        busy for the packet's serialization time.
        """
        serialization = 1
        if self.link_bytes_per_cycle:
            serialization = max(
                1,
                (total_bytes + self.link_bytes_per_cycle - 1)
                // self.link_bytes_per_cycle,
            )
        now = self.engine.now + start_offset
        arrival = now
        for link in self.topology.route(src, dst):
            enter = max(arrival, self._link_free_at[link])
            self._link_free_at[link] = enter + serialization
            arrival = enter + self.link_latency
        arrival += self.router_latency + serialization
        return arrival - now

    def _departure_delay(self, src: int, total_bytes: int) -> int:
        """Egress serialization: a node injects one packet at a time."""
        if not self.link_bytes_per_cycle:
            return 0
        now = self.engine.now
        free_at = max(self._egress_free_at[src], now)
        inject = (total_bytes + self.link_bytes_per_cycle - 1) // self.link_bytes_per_cycle
        self._egress_free_at[src] = free_at + inject
        return free_at - now

    # -- sending ----------------------------------------------------------

    def send(
        self,
        src: int,
        dst: int,
        payload: Any,
        payload_bytes: int,
        traffic_class: str,
        replica: bool = False,
    ) -> Packet:
        """Dispatch a packet; the destination handler runs at delivery time.

        ``replica`` marks in-fabric copies of a multicast: they are
        delivered normally but charged only a route byte (the routers
        replicate the flit; it is not re-injected at the source).
        """
        packet = Packet(src, dst, payload, payload_bytes, traffic_class)
        packet.send_time = self.engine.now
        delay = 0 if replica else self._departure_delay(src, packet.total_bytes)
        if self.link_contention and src != dst:
            delay += self._contended_transit(src, dst, packet.total_bytes, delay)
        else:
            delay += self.transit_cycles(src, dst, packet.total_bytes)
        if self.jitter:
            delay += self._rng.randint(0, self.jitter)
        packet.deliver_time = self.engine.now + delay
        hops = self.topology.hops(src, dst)
        if replica:
            self.stats.record_replica(packet)
        else:
            self.stats.record(packet, hops * self.link_latency)
        self.engine.schedule(delay, lambda: self._deliver(packet))
        return packet

    def multicast(
        self,
        src: int,
        dsts: Iterable[int],
        payload: Any,
        payload_bytes: int,
        traffic_class: str,
    ) -> int:
        """Limited multicast (Section 2.2: "limited multicast messages are
        cheap in a high bandwidth interconnect").

        One full packet is injected and charged; the fabric replicates it
        toward the remaining destinations, each copy costing only a route
        byte of overhead.  Every destination still receives its own
        delivery with an independent latency.
        """
        count = 0
        for dst in dsts:
            self.send(src, dst, payload, payload_bytes, traffic_class,
                      replica=count > 0)
            count += 1
        return count

    def _deliver(self, packet: Packet) -> None:
        handler = self._handlers.get(packet.dst)
        if handler is None:
            raise RuntimeError(f"packet to unregistered node {packet.dst}: {packet!r}")
        handler(packet)
