"""Packets and traffic classification.

The interconnect transports opaque payloads wrapped in :class:`Packet`
metadata.  Every packet is split, for accounting, into a fixed header
(counted as *overhead*) and a payload counted under one of the Figure 9
traffic classes:

* ``commit``     — commit-protocol addresses and control (probe, skip,
                   mark, commit, abort, TID traffic, invalidations, acks);
* ``miss``       — data moved to satisfy remote load misses;
* ``writeback``  — committed data returning to its home node (write-backs
                   and flushes);
* ``overhead``   — packet headers (every message pays this).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

CLASS_COMMIT = "commit"
CLASS_MISS = "miss"
CLASS_WRITEBACK = "writeback"
CLASS_OVERHEAD = "overhead"

TRAFFIC_CLASSES = (CLASS_COMMIT, CLASS_MISS, CLASS_WRITEBACK, CLASS_OVERHEAD)

#: Fixed per-packet header: route, type, TID tag, address — 8 bytes is the
#: conventional flit-header allowance used in DSM studies.
HEADER_BYTES = 8

_packet_counter = 0


def _next_packet_id() -> int:
    global _packet_counter
    _packet_counter += 1
    return _packet_counter


@dataclass(slots=True)
class Packet:
    """One message in flight on the interconnect."""

    src: int
    dst: int
    payload: Any
    payload_bytes: int
    traffic_class: str
    send_time: int = 0
    deliver_time: int = 0
    packet_id: int = field(default_factory=_next_packet_id)

    def __post_init__(self) -> None:
        if self.traffic_class not in TRAFFIC_CLASSES:
            raise ValueError(f"unknown traffic class {self.traffic_class!r}")
        if self.payload_bytes < 0:
            raise ValueError("payload size cannot be negative")

    @property
    def total_bytes(self) -> int:
        return HEADER_BYTES + self.payload_bytes

    @property
    def latency(self) -> int:
        return self.deliver_time - self.send_time
