"""Parallel simulation job runner with a content-addressed result cache.

The experiment harness's answer to the paper's own thesis: independent
work must not serialize on a global token.  Every multi-run driver
(sweeps, scaling studies, chaos campaigns, figure benchmarks) describes
its runs as declarative :class:`JobSpec`\\ s and hands them to
:func:`run_jobs`, which fans them out over worker processes and
memoizes their summaries on disk keyed by ``SHA-256(spec) +
code-fingerprint``.  Serial and parallel execution are bit-identical;
warm re-runs of unchanged experiments are near-instant.

See ``docs/SIMULATOR.md`` ("Parallel execution & result cache").
"""

from repro.runner.cache import ResultCache, code_fingerprint
from repro.runner.pool import (
    JobOutcome,
    RunnerStats,
    as_cache,
    execute_job,
    resolve_jobs,
    run_jobs,
)
from repro.runner.spec import (
    JobSpec,
    WORKLOAD_FACTORIES,
    build_workload,
    register_workload,
)
from repro.runner.summary import ResultSummary

__all__ = [
    "JobOutcome",
    "JobSpec",
    "ResultCache",
    "ResultSummary",
    "RunnerStats",
    "WORKLOAD_FACTORIES",
    "as_cache",
    "build_workload",
    "code_fingerprint",
    "execute_job",
    "register_workload",
    "resolve_jobs",
    "run_jobs",
]
