"""On-disk content-addressed result cache for simulation jobs.

Layout: one JSON file per job under ``.repro_cache/<key[:2]>/<key>.json``
where ``key`` is the SHA-256 of the canonicalized job spec
(:meth:`~repro.runner.spec.JobSpec.key`).  Each entry also records the
*code fingerprint* — a SHA-256 over the contents of every ``.py`` file
in the installed ``repro`` package — at the time it was written.  A
lookup whose stored fingerprint differs from the current one is an
**invalidation**: the spec is unchanged but the simulator is not, so the
stale entry is discarded (and overwritten on the next store).  Because
simulations are pure functions of ``(spec, code version)``, these two
hashes are the complete invalidation story; there is no TTL.

Counters (``hits`` / ``misses`` / ``invalidations`` / ``writes``) are
kept per :class:`ResultCache` instance and surface in every runner
report.  ``REPRO_CACHE_DIR`` overrides the default root; ``clear()``
removes every entry under the root.
"""

from __future__ import annotations

import hashlib
import json
import os
import pathlib
import tempfile
from typing import Any, Dict, Optional

import repro

#: Cached per process — hashing ~70 source files once is cheap, doing it
#: per job lookup is not.
_FINGERPRINT: Optional[str] = None


def code_fingerprint(refresh: bool = False) -> str:
    """SHA-256 over (relative path, content) of every repro source file."""
    global _FINGERPRINT
    if _FINGERPRINT is not None and not refresh:
        return _FINGERPRINT
    package_root = pathlib.Path(repro.__file__).resolve().parent
    digest = hashlib.sha256()
    for path in sorted(package_root.rglob("*.py")):
        digest.update(str(path.relative_to(package_root)).encode())
        digest.update(b"\0")
        digest.update(path.read_bytes())
        digest.update(b"\0")
    _FINGERPRINT = digest.hexdigest()
    return _FINGERPRINT


DEFAULT_ROOT = ".repro_cache"


class ResultCache:
    """Content-addressed JSON store for job payloads."""

    def __init__(self, root: Optional[str] = None,
                 fingerprint: Optional[str] = None) -> None:
        self.root = pathlib.Path(
            root or os.environ.get("REPRO_CACHE_DIR") or DEFAULT_ROOT
        )
        self.fingerprint = fingerprint or code_fingerprint()
        self.hits = 0
        self.misses = 0
        self.invalidations = 0
        self.writes = 0

    def _path(self, key: str) -> pathlib.Path:
        return self.root / key[:2] / f"{key}.json"

    def get(self, key: str) -> Optional[Dict[str, Any]]:
        """The stored payload for ``key``, or None (miss or stale)."""
        path = self._path(key)
        try:
            entry = json.loads(path.read_text())
        except (OSError, ValueError):
            self.misses += 1
            return None
        if entry.get("fingerprint") != self.fingerprint:
            # Same spec, different simulator: the entry is stale.
            self.invalidations += 1
            self.misses += 1
            return None
        self.hits += 1
        return entry.get("payload")

    def put(self, key: str, payload: Dict[str, Any]) -> None:
        path = self._path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        entry = {"fingerprint": self.fingerprint, "key": key,
                 "payload": payload}
        # Atomic publish: a crashed or concurrent writer can never leave a
        # half-written entry where a reader will find it.
        fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
        try:
            with os.fdopen(fd, "w") as handle:
                json.dump(entry, handle)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        self.writes += 1

    def clear(self) -> int:
        """Delete every entry; returns how many were removed."""
        removed = 0
        if not self.root.is_dir():
            return removed
        for path in self.root.rglob("*.json"):
            try:
                path.unlink()
                removed += 1
            except OSError:
                pass
        return removed

    def entry_count(self) -> int:
        if not self.root.is_dir():
            return 0
        return sum(1 for _ in self.root.rglob("*.json"))

    def stats(self) -> Dict[str, Any]:
        return {
            "root": str(self.root),
            "fingerprint": self.fingerprint[:12],
            "hits": self.hits,
            "misses": self.misses,
            "invalidations": self.invalidations,
            "writes": self.writes,
        }
