"""Declarative simulation job specs and the named-workload registry.

A :class:`JobSpec` describes one simulation as pure data — the full
effective :class:`~repro.core.config.SystemConfig`, a workload *factory
name* plus keyword arguments, a seed, and run flags — so it can be
pickled to a worker process and hashed into a stable cache key.  The
indirection through :data:`WORKLOAD_FACTORIES` is what keeps specs
declarative: a lambda closed over a workload object is neither
picklable nor hashable, a ``("app", {"name": "barnes"})`` pair is both.

Three job kinds exist:

``sim``
    Build config + workload, run one system, summarize
    (:class:`~repro.runner.summary.ResultSummary`).  Cacheable.
``chaos``
    One seeded chaos case (``run_case(make_case(seed))``); the seed
    alone determines workload, machine size, and fault plan.  Cacheable
    (wall-clock is zeroed on a cache hit).
``perf``
    ``warmup`` untimed + ``repeats`` timed passes of one application in
    one worker.  Never cached — the payload *is* a wall-clock sample.
``conform``
    One seeded differential-conformance case
    (``run_conform_case(make_case(seed, **args))``); the seed plus the
    ``faults`` flag in ``workload_args`` determine program, machine,
    and fault plan.  Cacheable (payloads carry no wall-clock fields).
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Optional

from repro.core.config import SystemConfig
from repro.workloads.apps import app_workload
from repro.workloads.base import Workload
from repro.workloads.micro import CounterWorkload
from repro.workloads.tm_patterns import (
    ListSetWorkload,
    MatrixTileWorkload,
    QueueWorkload,
)

JOB_KINDS = ("sim", "chaos", "perf", "conform")

#: name -> factory(config, **args) -> Workload.  Factories take the
#: effective config first so they can match line/word geometry.
WORKLOAD_FACTORIES: Dict[str, Callable[..., Workload]] = {}


def register_workload(name: str, factory: Callable[..., Workload]) -> None:
    """Register (or replace) a named workload factory."""
    WORKLOAD_FACTORIES[name] = factory


def build_workload(name: str, config: SystemConfig,
                   args: Optional[Dict[str, Any]] = None) -> Workload:
    if name not in WORKLOAD_FACTORIES:
        raise ValueError(
            f"unknown workload factory {name!r}; registered: "
            f"{sorted(WORKLOAD_FACTORIES)}"
        )
    return WORKLOAD_FACTORIES[name](config, **(args or {}))


def make_app_workload(config: SystemConfig, name: str,
                      scale: float = 1.0) -> Workload:
    return app_workload(
        name, scale=scale,
        line_size=config.line_size, word_size=config.word_size,
    )


def make_counter_workload(config: SystemConfig, **kw: Any) -> Workload:
    return CounterWorkload(**kw)


def make_list_set_workload(config: SystemConfig, **kw: Any) -> Workload:
    return ListSetWorkload(**kw)


def make_queue_workload(config: SystemConfig, **kw: Any) -> Workload:
    return QueueWorkload(**kw)


def make_matrix_tile_workload(config: SystemConfig, **kw: Any) -> Workload:
    return MatrixTileWorkload(**kw)


def make_conform_workload(config: SystemConfig, seed: int = 0) -> Workload:
    """The conformance generator's program for ``seed``, as a plain
    workload (lazy import: repro.conform imports repro.core.system)."""
    from repro.conform.generator import generate_program

    return generate_program(seed).to_workload()


register_workload("app", make_app_workload)
register_workload("counter", make_counter_workload)
register_workload("list-set", make_list_set_workload)
register_workload("queue", make_queue_workload)
register_workload("matrix-tile", make_matrix_tile_workload)
register_workload("conform", make_conform_workload)


@dataclass(frozen=True)
class JobSpec:
    """One simulation job as pure, picklable data."""

    kind: str = "sim"
    #: ``sim``: a WORKLOAD_FACTORIES name.  ``perf``: an application name.
    workload: Optional[str] = None
    workload_args: Optional[Dict[str, Any]] = None
    #: The full effective config (already has overrides applied).
    config: Optional[SystemConfig] = None
    #: ``chaos`` only: the case seed (everything derives from it).
    seed: Optional[int] = None
    max_cycles: Optional[int] = None
    verify: bool = True
    #: ``perf`` only.
    repeats: int = 1
    warmup: int = 0
    #: ``perf`` jobs are never cached; chaos/sim jobs opt out with this.
    cacheable: bool = True
    #: Free-form label for progress lines (not part of the cache key).
    label: str = ""

    def __post_init__(self) -> None:
        if self.kind not in JOB_KINDS:
            raise ValueError(f"job kind must be one of {JOB_KINDS}, got {self.kind!r}")
        if self.kind in ("chaos", "conform") and self.seed is None:
            raise ValueError(f"{self.kind} jobs need a seed")
        if self.kind in ("sim", "perf") and not self.workload:
            raise ValueError(f"{self.kind} jobs need a workload name")

    def canonical(self) -> Dict[str, Any]:
        """The identity of this job: everything that changes the outcome
        (and nothing that doesn't — labels and cache policy stay out)."""
        return {
            "kind": self.kind,
            "workload": self.workload,
            "workload_args": self.workload_args or {},
            "config": dataclasses.asdict(self.config) if self.config else None,
            "seed": self.seed,
            "max_cycles": self.max_cycles,
            "verify": self.verify,
            "repeats": self.repeats,
            "warmup": self.warmup,
        }

    def key(self) -> str:
        """Content address: SHA-256 of the canonical JSON spec."""
        canonical = json.dumps(self.canonical(), sort_keys=True, default=repr)
        return hashlib.sha256(canonical.encode()).hexdigest()

    def describe(self) -> str:
        if self.label:
            return self.label
        if self.kind in ("chaos", "conform"):
            return f"{self.kind} seed={self.seed}"
        n = self.config.n_processors if self.config else "?"
        return f"{self.kind} {self.workload}@{n}"
