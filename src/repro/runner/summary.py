"""Picklable, JSON-able summaries of simulation outcomes.

A :class:`ResultSummary` is the slice of a
:class:`~repro.core.system.SimulationResult` that the multi-run
consumers (sweeps, scaling studies, figure drivers) actually read:
cycle counts, commit/violation totals, the machine-wide breakdown, and
remote-traffic counters.  Unlike the full result it carries no
per-processor sample lists, commit log, or memory image, so it is cheap
to ship across a worker-process queue and small enough to archive as a
cache entry.

Every field is deterministic for a given job spec, so
:meth:`ResultSummary.fingerprint` — a SHA-256 over the canonical JSON
form — doubles as the bit-exactness witness for serial-vs-parallel and
cold-vs-cached equivalence tests.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from dataclasses import dataclass, field
from typing import Any, Dict, Optional

from repro.core.system import SimulationResult

BREAKDOWN_KEYS = ("useful", "miss", "idle", "commit", "violation")


@dataclass
class ResultSummary:
    """Deterministic scalar summary of one simulation run."""

    n_processors: int
    cycles: int
    committed_transactions: int
    total_violations: int
    committed_instructions: int
    events_executed: int
    breakdown: Dict[str, int] = field(default_factory=dict)
    traffic_bytes_by_class: Dict[str, int] = field(default_factory=dict)
    traffic_bytes: int = 0
    traffic_packets: int = 0
    #: max over nodes of bytes delivered into that node (Fig. 9's
    #: per-node bandwidth argument).
    traffic_peak_node_bytes: int = 0
    fault_stats: Optional[Dict[str, int]] = None

    @classmethod
    def from_result(cls, result: SimulationResult) -> "ResultSummary":
        return cls(
            n_processors=result.config.n_processors,
            cycles=result.cycles,
            committed_transactions=result.committed_transactions,
            total_violations=result.total_violations,
            committed_instructions=result.committed_instructions,
            events_executed=result.events_executed,
            breakdown=dict(result.breakdown()),
            traffic_bytes_by_class=dict(result.traffic.bytes_by_class),
            traffic_bytes=result.traffic.total_bytes,
            traffic_packets=result.traffic.packets,
            traffic_peak_node_bytes=max(
                result.traffic.bytes_into_node.values(), default=0
            ),
            fault_stats=(
                result.fault_stats.as_dict() if result.fault_stats else None
            ),
        )

    # -- the SimulationResult surface the multi-run consumers use ---------

    def breakdown_fractions(self) -> Dict[str, float]:
        total_cycles = self.cycles * self.n_processors
        if not total_cycles:
            return {key: 0.0 for key in BREAKDOWN_KEYS}
        return {
            key: self.breakdown.get(key, 0) / total_cycles
            for key in BREAKDOWN_KEYS
        }

    def bytes_per_instruction(self) -> Dict[str, float]:
        instructions = max(1, self.committed_instructions)
        return {
            cls_: count / instructions
            for cls_, count in self.traffic_bytes_by_class.items()
        }

    # -- serialization -----------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "ResultSummary":
        known = {f.name for f in dataclasses.fields(cls)}
        return cls(**{k: v for k, v in data.items() if k in known})

    def fingerprint(self) -> str:
        """SHA-256 over the canonical JSON form: two runs are bit-identical
        exactly when their fingerprints match."""
        canonical = json.dumps(self.to_dict(), sort_keys=True)
        return hashlib.sha256(canonical.encode()).hexdigest()
