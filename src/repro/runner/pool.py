"""Process-pool execution of simulation job specs.

``run_jobs(specs)`` resolves each :class:`~repro.runner.spec.JobSpec`
to a :class:`JobOutcome` — from the result cache when the content
address hits, otherwise by executing it — and returns outcomes in spec
order plus a :class:`RunnerStats` accounting.  With ``jobs=1`` (the
library default) everything runs in-process with no pickling, so
breakpoints, profilers, and exception tracebacks behave exactly as in a
plain loop.  With ``jobs > 1`` a pool of worker processes executes jobs
concurrently; because every job is a pure function of its spec, the
outcome list is bit-identical to the serial one regardless of
scheduling.

Failure containment, not propagation: a Python exception inside a job
is deterministic (retrying cannot help) and becomes an ``error``
outcome immediately; a *worker crash* (segfault, OOM kill) is requeued
onto a fresh worker up to ``crash_retries`` times and then quarantined
as an error outcome — a single bad job can never kill a campaign.
Parents detect crashes by liveness-checking workers, each of which owns
a private task queue so the parent always knows which job died with it.
"""

from __future__ import annotations

import multiprocessing
import os
import queue as queue_module
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple, Union

from repro.core.config import SystemConfig
from repro.core.system import ScalableTCCSystem
from repro.runner.cache import ResultCache
from repro.runner.spec import JobSpec, build_workload
from repro.runner.summary import ResultSummary

CacheLike = Union[None, bool, str, ResultCache]

#: How long the parent waits on the result queue before checking worker
#: liveness.  Purely a crash-detection latency knob.
_POLL_SECONDS = 0.1


# -- job execution (runs inside workers, and in-process at jobs=1) --------


def execute_job(spec: JobSpec) -> Dict[str, Any]:
    """Run one job to a JSON-able payload.  Pure: the payload depends
    only on the spec and the simulator version."""
    if spec.kind == "sim":
        return _execute_sim(spec)
    if spec.kind == "chaos":
        # Imported lazily: repro.faults.chaos imports the top-level
        # package and must stay out of import cycles.
        from repro.faults.chaos import make_case, run_case

        case = make_case(spec.seed, **(spec.workload_args or {}))
        return {"case": run_case(case).as_dict()}
    if spec.kind == "conform":
        # Same lazy-import rule as chaos: repro.conform imports
        # repro.core.system and must stay out of import cycles.
        from repro.conform.differ import run_conform_case
        from repro.conform.generator import make_case as make_conform_case

        case = make_conform_case(spec.seed, **(spec.workload_args or {}))
        return {"case": run_conform_case(case).as_dict()}
    if spec.kind == "perf":
        return _execute_perf(spec)
    raise ValueError(f"unknown job kind {spec.kind!r}")


def _execute_sim(spec: JobSpec) -> Dict[str, Any]:
    config = spec.config or SystemConfig()
    workload = build_workload(spec.workload, config, spec.workload_args)
    system = ScalableTCCSystem(config)
    result = system.run(workload, max_cycles=spec.max_cycles,
                        verify=spec.verify)
    return {"summary": ResultSummary.from_result(result).to_dict()}


def _execute_perf(spec: JobSpec) -> Dict[str, Any]:
    """``warmup`` untimed + ``repeats`` timed passes of one application;
    repeats must be simulation-identical (the standing nondeterminism
    tripwire of the perf harness)."""
    config = spec.config or SystemConfig()
    args = dict(spec.workload_args or {})

    def one_pass() -> Tuple[float, ResultSummary]:
        system = ScalableTCCSystem(config)
        workload = build_workload("app", config,
                                  {"name": spec.workload, **args})
        start = time.perf_counter()
        result = system.run(workload, max_cycles=spec.max_cycles,
                            verify=spec.verify)
        return time.perf_counter() - start, ResultSummary.from_result(result)

    for _ in range(spec.warmup):
        one_pass()
    samples = [one_pass() for _ in range(max(1, spec.repeats))]
    first = samples[0][1]
    for _, summary in samples[1:]:
        if summary.fingerprint() != first.fingerprint():
            raise RuntimeError(
                f"nondeterministic run: {spec.workload} repeats disagree "
                f"(cycles {summary.cycles} != {first.cycles} or other fields)"
            )
    return {
        "wall_samples_s": [wall for wall, _ in samples],
        "summary": first.to_dict(),
    }


# -- outcomes and accounting ----------------------------------------------


@dataclass
class JobOutcome:
    """Resolution of one spec: a payload, a cache hit, or an error."""

    index: int
    spec: JobSpec
    payload: Optional[Dict[str, Any]] = None
    error: Optional[str] = None
    cached: bool = False
    attempts: int = 1
    wall_s: float = 0.0

    @property
    def ok(self) -> bool:
        return self.error is None

    def summary(self) -> ResultSummary:
        """The ResultSummary of a ``sim``/``perf`` payload."""
        if not self.ok:
            raise RuntimeError(
                f"job {self.spec.describe()} failed: {self.error}"
            )
        return ResultSummary.from_dict(self.payload["summary"])


@dataclass
class RunnerStats:
    """One run_jobs call's accounting, for reports and artifacts."""

    jobs: int
    total: int
    executed: int = 0
    from_cache: int = 0
    errors: int = 0
    crashes: int = 0
    retried: int = 0
    quarantined: int = 0
    wall_s: float = 0.0
    cache: Optional[Dict[str, Any]] = None

    def as_dict(self) -> Dict[str, Any]:
        return {
            "jobs": self.jobs,
            "total": self.total,
            "executed": self.executed,
            "from_cache": self.from_cache,
            "errors": self.errors,
            "crashes": self.crashes,
            "retried": self.retried,
            "quarantined": self.quarantined,
            "wall_s": round(self.wall_s, 4),
            "cache": self.cache,
        }

    def describe(self) -> str:
        parts = [
            f"runner: {self.total} job(s) on {self.jobs} worker(s) "
            f"in {self.wall_s:.2f}s — {self.executed} executed, "
            f"{self.from_cache} from cache"
        ]
        if self.errors:
            parts.append(f"{self.errors} failed")
        if self.crashes:
            parts.append(
                f"{self.crashes} worker crash(es): "
                f"{self.retried} retried, {self.quarantined} quarantined"
            )
        if self.cache:
            parts.append(
                f"cache {self.cache['hits']} hit / {self.cache['misses']} "
                f"miss / {self.cache['invalidations']} stale"
            )
        return "; ".join(parts)


def resolve_jobs(jobs: Optional[int]) -> int:
    """None/0 means "all cores"; anything else must be a positive int."""
    if jobs in (None, 0):
        return os.cpu_count() or 1
    if jobs < 1:
        raise ValueError(f"jobs must be >= 1 (or None for all cores), got {jobs}")
    return jobs


def as_cache(cache: CacheLike) -> Optional[ResultCache]:
    """Normalize the ``cache`` argument consumers accept: None/False (no
    caching), True (default location), a root path, or a ResultCache."""
    if cache is None or cache is False:
        return None
    if cache is True:
        return ResultCache()
    if isinstance(cache, ResultCache):
        return cache
    return ResultCache(root=str(cache))


# -- the pool --------------------------------------------------------------


def _worker_main(worker_id: int, task_queue, result_queue) -> None:
    """Worker loop: take (index, spec) until the None sentinel."""
    while True:
        try:
            item = task_queue.get()
        except (EOFError, OSError, KeyboardInterrupt):
            break
        if item is None:
            break
        index, spec = item
        start = time.perf_counter()
        try:
            payload = execute_job(spec)
        except Exception as exc:  # deterministic job failure, not a crash
            text = str(exc).splitlines()[0] if str(exc) else ""
            result_queue.put(("fail", worker_id, index,
                              f"{type(exc).__name__}: {text}",
                              time.perf_counter() - start))
        else:
            result_queue.put(("done", worker_id, index, payload,
                              time.perf_counter() - start))


def run_jobs(
    specs: Sequence[JobSpec],
    jobs: Optional[int] = 1,
    cache: CacheLike = None,
    progress: Optional[Callable[[JobOutcome], None]] = None,
    crash_retries: int = 1,
) -> Tuple[List[JobOutcome], RunnerStats]:
    """Resolve every spec; outcomes come back in spec order.

    ``progress`` is called once per outcome as it resolves (cache hits
    first, then executed jobs in completion order).
    """
    specs = list(specs)
    n_workers = resolve_jobs(jobs)
    cache_obj = as_cache(cache)
    stats = RunnerStats(jobs=n_workers, total=len(specs))
    counters_before = (
        (cache_obj.hits, cache_obj.misses, cache_obj.invalidations,
         cache_obj.writes) if cache_obj is not None else None
    )
    started = time.perf_counter()
    outcomes: List[Optional[JobOutcome]] = [None] * len(specs)

    def finish(outcome: JobOutcome) -> None:
        outcomes[outcome.index] = outcome
        spec = outcome.spec
        if (outcome.ok and not outcome.cached and cache_obj is not None
                and spec.cacheable and spec.kind != "perf"):
            cache_obj.put(spec.key(), outcome.payload)
        if progress is not None:
            progress(outcome)

    to_run: List[int] = []
    for i, spec in enumerate(specs):
        payload = None
        if cache_obj is not None and spec.cacheable and spec.kind != "perf":
            payload = cache_obj.get(spec.key())
        if payload is not None:
            stats.from_cache += 1
            finish(JobOutcome(i, spec, payload=payload, cached=True,
                              attempts=0))
        else:
            to_run.append(i)

    if to_run:
        if n_workers == 1 or len(to_run) == 1:
            for i in to_run:
                start = time.perf_counter()
                try:
                    payload = execute_job(specs[i])
                except Exception as exc:
                    text = str(exc).splitlines()[0] if str(exc) else ""
                    finish(JobOutcome(
                        i, specs[i],
                        error=f"{type(exc).__name__}: {text}",
                        wall_s=time.perf_counter() - start,
                    ))
                else:
                    finish(JobOutcome(i, specs[i], payload=payload,
                                      wall_s=time.perf_counter() - start))
        else:
            _run_parallel(specs, to_run, n_workers, finish, stats,
                          crash_retries)

    stats.executed = len(to_run)
    stats.errors = sum(1 for o in outcomes if o is not None and not o.ok)
    stats.wall_s = time.perf_counter() - started
    if cache_obj is not None:
        # Per-run deltas, not instance-lifetime counters: a warm re-run
        # must report its own hits, not the cold run's misses.
        stats.cache = cache_obj.stats()
        for name, before in zip(
                ("hits", "misses", "invalidations", "writes"),
                counters_before):
            stats.cache[name] = stats.cache[name] - before
    return [o for o in outcomes if o is not None], stats


def _run_parallel(
    specs: List[JobSpec],
    to_run: List[int],
    n_workers: int,
    finish: Callable[[JobOutcome], None],
    stats: RunnerStats,
    crash_retries: int,
) -> None:
    methods = multiprocessing.get_all_start_methods()
    ctx = multiprocessing.get_context(
        "fork" if "fork" in methods else "spawn"
    )
    result_queue = ctx.Queue()
    pending = deque(to_run)
    attempts: Dict[int, int] = {}
    unresolved = set(to_run)
    workers: List[Dict[str, Any]] = []
    next_id = 0

    def spawn() -> None:
        nonlocal next_id
        task_queue = ctx.Queue()
        proc = ctx.Process(
            target=_worker_main, args=(next_id, task_queue, result_queue),
            daemon=True,
        )
        proc.start()
        workers.append({"id": next_id, "proc": proc, "queue": task_queue,
                        "current": None})
        next_id += 1

    for _ in range(min(n_workers, len(pending))):
        spawn()

    try:
        while unresolved:
            for worker in workers:
                if worker["current"] is None and pending:
                    index = pending.popleft()
                    worker["current"] = index
                    worker["queue"].put((index, specs[index]))

            try:
                kind, worker_id, index, body, wall = result_queue.get(
                    timeout=_POLL_SECONDS
                )
            except queue_module.Empty:
                pass
            else:
                for worker in workers:
                    if worker["id"] == worker_id:
                        worker["current"] = None
                if index in unresolved:
                    unresolved.discard(index)
                    tries = attempts.get(index, 0) + 1
                    if kind == "done":
                        finish(JobOutcome(index, specs[index], payload=body,
                                          attempts=tries, wall_s=wall))
                    else:
                        finish(JobOutcome(index, specs[index], error=body,
                                          attempts=tries, wall_s=wall))
                continue

            # No result within the poll window: check worker liveness.
            for worker in list(workers):
                if worker["proc"].is_alive():
                    continue
                workers.remove(worker)
                index = worker["current"]
                if index is None or index not in unresolved:
                    continue
                stats.crashes += 1
                attempts[index] = attempts.get(index, 0) + 1
                if attempts[index] <= crash_retries:
                    stats.retried += 1
                    pending.append(index)
                else:
                    stats.quarantined += 1
                    unresolved.discard(index)
                    code = worker["proc"].exitcode
                    finish(JobOutcome(
                        index, specs[index],
                        error=f"worker crashed (exit code {code}); "
                              f"quarantined after {attempts[index]} attempts",
                        attempts=attempts[index],
                    ))
            # Keep enough workers alive to drain the (possibly refilled)
            # pending queue.
            while pending and len(workers) < n_workers:
                spawn()
    finally:
        for worker in workers:
            try:
                worker["queue"].put(None)
            except (OSError, ValueError):
                pass
        deadline = time.monotonic() + 2.0
        for worker in workers:
            worker["proc"].join(timeout=max(0.0, deadline - time.monotonic()))
            if worker["proc"].is_alive():
                worker["proc"].terminate()
        result_queue.close()
