"""Analytical OCC conflict model, for sanity-checking the simulator.

A first-order model of lazy-OCC conflict probability, in the style of
the classic optimistic-concurrency analyses:

A transaction with read-set R words over a shared pool of H words is
violated by a concurrent commit writing W pool words with probability

    p1 = 1 - C(H - W, R) / C(H, R)  ~=  1 - (1 - W/H)^R

If K rival transactions commit during its window, survival requires
dodging all of them:

    P(violation) = 1 - (1 - p1)^K

The model deliberately ignores second-order effects the simulator has
(skewed access distributions, retention serialization, partial overlap
of execution windows), so agreement is expected to be directional, not
exact: the tests check that model and simulation *rank* contention
levels identically and land in the same ballpark for uniform pools.
"""

from __future__ import annotations

import math
from dataclasses import dataclass


def overlap_probability(pool_words: int, writes: int, reads: int) -> float:
    """P(a uniform W-word commit intersects a uniform R-word read set)."""
    if pool_words <= 0:
        raise ValueError("pool must be positive")
    writes = min(writes, pool_words)
    reads = min(reads, pool_words)
    if writes == 0 or reads == 0:
        return 0.0
    # exact hypergeometric complement, in log space for stability
    log_miss = 0.0
    for i in range(reads):
        if pool_words - writes - i <= 0:
            return 1.0
        log_miss += math.log(pool_words - writes - i) - math.log(pool_words - i)
    return 1.0 - math.exp(log_miss)


def violation_probability(
    pool_words: int, writes: int, reads: int, rivals: int
) -> float:
    """P(violated) against ``rivals`` independent concurrent commits."""
    if rivals < 0:
        raise ValueError("rivals cannot be negative")
    p1 = overlap_probability(pool_words, writes, reads)
    return 1.0 - (1.0 - p1) ** rivals


@dataclass
class ConflictModel:
    """Model of one symmetric workload: every transaction reads ``reads``
    and writes ``writes`` uniform words of a shared pool."""

    pool_words: int
    reads: int
    writes: int

    def violation_rate(self, n_processors: int) -> float:
        """Expected per-attempt violation probability with all other
        processors as rivals (one concurrent commit each)."""
        return violation_probability(
            self.pool_words, self.writes, self.reads, n_processors - 1
        )

    def expected_attempts(self, n_processors: int) -> float:
        """Mean attempts per committed transaction (geometric)."""
        p = self.violation_rate(n_processors)
        if p >= 1.0:
            return float("inf")
        return 1.0 / (1.0 - p)
