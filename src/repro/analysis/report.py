"""Full-run markdown report generation.

Bundles everything a single simulation can say — configuration,
execution-time breakdown, commit-phase breakdown, Table 3
characteristics, Figure 9 traffic, and the TAPE violation profile —
into one markdown document (the CLI's ``--report`` output).
"""

from __future__ import annotations

from typing import Optional

from repro.core.system import SimulationResult
from repro.stats import characteristics


def _md_table(headers, rows) -> str:
    lines = [
        "| " + " | ".join(headers) + " |",
        "| " + " | ".join("---" for _ in headers) + " |",
    ]
    lines.extend("| " + " | ".join(str(c) for c in row) + " |" for row in rows)
    return "\n".join(lines)


def render_report(
    name: str,
    result: SimulationResult,
    tape_report: Optional[str] = None,
) -> str:
    """A self-contained markdown report for one run."""
    config = result.config
    sections = [f"# Simulation report — {name}", ""]

    sections.append("## Machine")
    sections.append("")
    sections.append("```")
    sections.append(config.describe())
    sections.append("```")
    sections.append("")

    sections.append("## Outcome")
    sections.append("")
    sections.append(_md_table(
        ["metric", "value"],
        [
            ["cycles", f"{result.cycles:,}"],
            ["committed transactions", result.committed_transactions],
            ["violations (re-runs)", result.total_violations],
            ["committed instructions", f"{result.committed_instructions:,}"],
            ["simulator events", f"{result.events_executed:,}"],
        ],
    ))
    sections.append("")

    sections.append("## Execution-time breakdown")
    sections.append("")
    fractions = result.breakdown_fractions()
    sections.append(_md_table(
        ["component", "fraction"],
        [[k, f"{v * 100:.1f}%"] for k, v in fractions.items()],
    ))
    sections.append("")

    tid = sum(s.commit_tid_cycles for s in result.proc_stats)
    probe = sum(s.commit_probe_cycles for s in result.proc_stats)
    ack = sum(s.commit_ack_cycles for s in result.proc_stats)
    total_commit = tid + probe + ack
    if total_commit:
        sections.append("## Commit-phase breakdown")
        sections.append("")
        sections.append(_md_table(
            ["phase", "cycles", "fraction"],
            [
                ["TID acquisition", f"{tid:,}", f"{tid / total_commit * 100:.1f}%"],
                ["probe + mark", f"{probe:,}", f"{probe / total_commit * 100:.1f}%"],
                ["commit + acks", f"{ack:,}", f"{ack / total_commit * 100:.1f}%"],
            ],
        ))
        sections.append("")

    sections.append("## Transactional characteristics (Table 3 row)")
    sections.append("")
    row = characteristics(name, result)
    sections.append(_md_table(
        ["tx size p90", "wr-set p90", "rd-set p90", "ops/word",
         "dirs/commit p90", "occupancy p90"],
        [[
            f"{row.tx_size_p90:,.0f} inst",
            f"{row.write_set_p90_kb:.2f} KB",
            f"{row.read_set_p90_kb:.2f} KB",
            f"{row.ops_per_word_written:.0f}",
            f"{row.dirs_per_commit_p90:.0f}",
            f"{row.occupancy_p90_cycles:,.0f} cy",
        ]],
    ))
    sections.append("")

    sections.append("## Remote traffic (Figure 9 row)")
    sections.append("")
    bpi = result.bytes_per_instruction()
    sections.append(_md_table(
        ["commit", "miss", "writeback", "overhead", "total"],
        [[f"{bpi[k]:.4f}" for k in ("commit", "miss", "writeback", "overhead")]
         + [f"{sum(bpi.values()):.4f}"]],
    ))
    sections.append("")

    if tape_report:
        sections.append("## TAPE profile")
        sections.append("")
        sections.append("```")
        sections.append(tape_report)
        sections.append("```")
        sections.append("")

    return "\n".join(sections)
