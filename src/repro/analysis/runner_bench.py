"""Wall-clock benchmark of the parallel runner and result cache.

Measures the three execution modes the :mod:`repro.runner` subsystem
exists for and records them side by side in ``BENCH_runner.json`` so
the repo's performance trajectory covers the harness itself, not just
the simulation kernel:

* a chaos campaign run serially (``jobs=1``) vs. in parallel
  (``jobs=N``), both with the cache bypassed — the process-level
  speedup (bounded by physical cores, recorded in ``machine``);
* a config sweep run cold (empty cache) vs. warm (same cache, unchanged
  code) — the memoization speedup;
* serial-vs-parallel result fingerprints for the sweep — the
  bit-exactness witness.

Usage:

    PYTHONPATH=src python -m benchmarks.runner            # full, writes BENCH_runner.json
    PYTHONPATH=src python -m benchmarks.runner --quick    # CI smoke
"""

from __future__ import annotations

import json
import os
import sys
import tempfile
import time
from typing import Dict, Optional

from repro.analysis.sweep import Sweep
from repro.core.config import SystemConfig
from repro.faults.chaos import run_chaos
from repro.runner import ResultCache, resolve_jobs


def _timed(fn) -> Dict:
    start = time.perf_counter()
    value = fn()
    return {"wall_s": round(time.perf_counter() - start, 4), "value": value}


def _make_sweep(points_scale: float, seeds: int) -> Sweep:
    return Sweep(
        SystemConfig(n_processors=8),
        {"link_latency": [1, 2, 3, 6], "seed": list(range(seeds))},
        ("app", {"name": "barnes", "scale": points_scale}),
        verify=True,
    )


def run_runner_bench(
    chaos_cases: int = 200,
    jobs: Optional[int] = 4,
    sweep_scale: float = 0.25,
    sweep_seeds: int = 3,
    quick: bool = False,
) -> Dict:
    """Run the comparison and return the report dict."""
    if quick:
        chaos_cases = min(chaos_cases, 30)
        sweep_seeds = 2
    n_jobs = resolve_jobs(jobs)

    # -- chaos: serial vs parallel, cache bypassed ------------------------
    serial = _timed(lambda: run_chaos(cases=chaos_cases, jobs=1, cache=None))
    parallel = _timed(
        lambda: run_chaos(cases=chaos_cases, jobs=n_jobs, cache=None)
    )
    chaos_identical = (
        {k: serial["value"][k] for k in ("passed", "failed", "fault_totals")}
        == {k: parallel["value"][k] for k in ("passed", "failed",
                                              "fault_totals")}
    )

    # -- sweep: cold vs warm cache, plus serial-vs-parallel fingerprints --
    with tempfile.TemporaryDirectory(prefix="repro-bench-cache-") as root:
        cache = ResultCache(root=root)
        sweep = _make_sweep(sweep_scale, sweep_seeds)
        cold = _timed(lambda: sweep.run(jobs=n_jobs, cache=cache))
        cold_fingerprints = sweep.fingerprints()
        cold_stats = sweep.last_run_stats.as_dict()

        warm_sweep = _make_sweep(sweep_scale, sweep_seeds)
        warm = _timed(lambda: warm_sweep.run(jobs=n_jobs, cache=cache))
        warm_fingerprints = warm_sweep.fingerprints()
        warm_stats = warm_sweep.last_run_stats.as_dict()

    serial_sweep = _make_sweep(sweep_scale, sweep_seeds)
    serial_sweep.run(jobs=1, cache=None)
    serial_fingerprints = serial_sweep.fingerprints()

    def ratio(a: float, b: float) -> float:
        return round(a / b, 2) if b > 0 else float("inf")

    return {
        "bench": "runner",
        "python": sys.version.split()[0],
        "machine": {"cpu_count": os.cpu_count()},
        "jobs": n_jobs,
        "chaos": {
            "cases": chaos_cases,
            "serial_wall_s": serial["wall_s"],
            "parallel_wall_s": parallel["wall_s"],
            "parallel_speedup": ratio(serial["wall_s"], parallel["wall_s"]),
            "outcomes_identical": chaos_identical,
        },
        "sweep": {
            "points": len(serial_fingerprints),
            "cold_wall_s": cold["wall_s"],
            "warm_wall_s": warm["wall_s"],
            "warm_speedup": ratio(cold["wall_s"], warm["wall_s"]),
            "cold_runner": cold_stats,
            "warm_runner": warm_stats,
        },
        "determinism": {
            "serial_vs_parallel_identical":
                serial_fingerprints == cold_fingerprints,
            "cold_vs_warm_identical":
                cold_fingerprints == warm_fingerprints,
            "fingerprints": serial_fingerprints,
        },
    }


def format_report(report: Dict) -> str:
    chaos = report["chaos"]
    sweep = report["sweep"]
    det = report["determinism"]
    lines = [
        f"runner bench — {report['jobs']} worker(s) on "
        f"{report['machine']['cpu_count']} core(s) "
        f"(python {report['python']})",
        f"  chaos {chaos['cases']} cases: serial {chaos['serial_wall_s']:.2f}s, "
        f"parallel {chaos['parallel_wall_s']:.2f}s "
        f"({chaos['parallel_speedup']:.2f}x), outcomes identical: "
        f"{chaos['outcomes_identical']}",
        f"  sweep {sweep['points']} points: cold {sweep['cold_wall_s']:.2f}s, "
        f"warm {sweep['warm_wall_s']:.2f}s ({sweep['warm_speedup']:.2f}x)",
        f"  bit-identical: serial-vs-parallel "
        f"{det['serial_vs_parallel_identical']}, cold-vs-warm "
        f"{det['cold_vs_warm_identical']}",
    ]
    return "\n".join(lines)


def save_report(report: Dict, path: str) -> None:
    with open(path, "w") as handle:
        json.dump(report, handle, indent=2)
        handle.write("\n")


def main(argv=None) -> int:
    import argparse

    parser = argparse.ArgumentParser(
        prog="benchmarks.runner",
        description="wall-clock benchmark of the parallel runner + cache",
    )
    parser.add_argument("--cases", type=int, default=200,
                        help="chaos cases (default 200)")
    parser.add_argument("--jobs", type=int, default=4,
                        help="parallel worker count (default 4)")
    parser.add_argument("--quick", action="store_true",
                        help="CI smoke: 30 cases, smaller sweep")
    parser.add_argument("--out", metavar="FILE", default=None,
                        help="write the JSON report to FILE")
    args = parser.parse_args(argv)
    report = run_runner_bench(chaos_cases=args.cases, jobs=args.jobs,
                              quick=args.quick)
    print(format_report(report))
    if args.out:
        save_report(report, args.out)
        print(f"report written to {args.out}")
    return 0
