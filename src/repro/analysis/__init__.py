"""Analysis and reporting: paper-style tables and figure data.

Renders simulation results in the shape of the paper's artefacts —
ASCII tables for Table 2/3, stacked-breakdown rows for Figures 6/7,
latency-sweep series for Figure 8, traffic rows for Figure 9 — so the
benchmark harness can print directly comparable output.
"""

from repro.analysis.tables import (
    format_breakdown_figure,
    format_table,
    format_traffic_figure,
)
from repro.analysis.experiments import (
    run_app,
    run_apps,
    run_latency_sweep,
    run_scaling,
)
from repro.analysis.perf import run_perf
from repro.analysis.report import render_report
from repro.analysis.sweep import Sweep, SweepPoint

__all__ = [
    "Sweep",
    "SweepPoint",
    "format_breakdown_figure",
    "format_table",
    "format_traffic_figure",
    "render_report",
    "run_app",
    "run_apps",
    "run_latency_sweep",
    "run_perf",
    "run_scaling",
]
