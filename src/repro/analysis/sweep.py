"""Generic configuration sweeps over the application suite.

A sweep takes a base :class:`SystemConfig`, a grid of config overrides,
and a workload; it runs every grid point (fresh system each — systems
are single-shot) and collects the results in a flat table that renders
as text or CSV.  The Figure 7/8 drivers are special cases of this; the
sweep exists for the *other* questions users ask ("what if lines were
64 bytes?", "how does jitter interact with retention?").

Grid points are independent, so ``run(jobs=N)`` fans them out over the
:mod:`repro.runner` process pool, and ``run(cache=True)`` memoizes each
point in the content-addressed result cache — a warm re-run of an
unchanged sweep costs milliseconds.  Both require the workload to be
*named* — a ``("app", {"name": "barnes", "scale": 0.5})`` spec rather
than a bare callable — because a closure can neither cross a process
boundary nor hash into a stable cache key.  Plain callables still work
for ad-hoc in-process sweeps (``jobs=1``, no cache).
"""

from __future__ import annotations

import csv
import dataclasses
import difflib
import io
import itertools
from typing import Any, Callable, Dict, Iterable, List, Optional, Tuple, Union

from repro.analysis.tables import format_table
from repro.core.config import SystemConfig
from repro.core.system import ScalableTCCSystem
from repro.runner import JobSpec, ResultSummary, RunnerStats, run_jobs
from repro.runner.pool import CacheLike
from repro.workloads.base import Workload

WorkloadFactory = Callable[[SystemConfig], Workload]
#: A named workload: a factory name from repro.runner.WORKLOAD_FACTORIES,
#: optionally with keyword arguments.
WorkloadSpec = Union[str, Tuple[str, Dict[str, Any]]]

_CONFIG_FIELDS = frozenset(f.name for f in dataclasses.fields(SystemConfig))


def _validate_grid_keys(grid: Dict[str, Any]) -> None:
    """Reject unknown override keys up front with a one-line error,
    instead of the opaque TypeError dataclasses.replace raises mid-sweep."""
    for key in grid:
        if key not in _CONFIG_FIELDS:
            hint = difflib.get_close_matches(key, _CONFIG_FIELDS, n=1)
            suggestion = f" (did you mean {hint[0]!r}?)" if hint else ""
            raise ValueError(
                f"sweep override {key!r} is not a SystemConfig field{suggestion}"
            )


@dataclasses.dataclass
class SweepPoint:
    """One grid point's parameters and outcome."""

    overrides: Dict[str, Any]
    result: ResultSummary

    def row(self) -> Dict[str, Any]:
        fractions = self.result.breakdown_fractions()
        return {
            **self.overrides,
            "cycles": self.result.cycles,
            "commits": self.result.committed_transactions,
            "violations": self.result.total_violations,
            "useful_frac": round(fractions["useful"], 4),
            "commit_frac": round(fractions["commit"], 4),
            "violation_frac": round(fractions["violation"], 4),
            "bytes_per_instr": round(
                sum(self.result.bytes_per_instruction().values()), 4
            ),
        }


class Sweep:
    """Cartesian sweep over config dimensions."""

    def __init__(
        self,
        base_config: SystemConfig,
        grid: Dict[str, Iterable[Any]],
        workload_factory: Union[WorkloadFactory, WorkloadSpec],
        max_cycles: Optional[int] = 5_000_000_000,
        verify: bool = True,
    ) -> None:
        self.base_config = base_config
        self.grid = {key: list(values) for key, values in grid.items()}
        _validate_grid_keys(self.grid)
        self.workload_factory = workload_factory
        self.max_cycles = max_cycles
        self.verify = verify
        self.points: List[SweepPoint] = []
        self.last_run_stats: Optional[RunnerStats] = None

    def __len__(self) -> int:
        total = 1
        for values in self.grid.values():
            total *= len(values)
        return total

    def _combos(self) -> List[Dict[str, Any]]:
        keys = list(self.grid)
        return [
            dict(zip(keys, combo))
            for combo in itertools.product(*(self.grid[k] for k in keys))
        ]

    def _named_workload(self) -> Optional[Tuple[str, Dict[str, Any]]]:
        if isinstance(self.workload_factory, str):
            return self.workload_factory, {}
        if isinstance(self.workload_factory, tuple):
            name, args = self.workload_factory
            return name, dict(args)
        return None

    def run(
        self,
        jobs: Optional[int] = 1,
        cache: CacheLike = None,
        progress=None,
    ) -> List[SweepPoint]:
        """Execute every grid point; returns (and stores) the points.

        ``jobs`` > 1 (or None for all cores) fans grid points out over
        worker processes; ``cache`` memoizes point summaries on disk
        (True, a directory path, or a ResultCache).  Results are
        bit-identical across any jobs/cache setting.
        """
        combos = self._combos()
        named = self._named_workload()
        if named is None:
            if (jobs not in (1,)) or cache:
                raise ValueError(
                    "parallel or cached sweeps need a named workload spec "
                    "like ('app', {'name': 'barnes'}) — a bare callable "
                    "cannot be pickled to a worker or hashed into a cache key"
                )
            self.points = self._run_callable(combos)
            self.last_run_stats = None
            return self.points

        name, args = named
        specs = []
        for overrides in combos:
            config = dataclasses.replace(self.base_config, **overrides)
            specs.append(JobSpec(
                kind="sim",
                workload=name,
                workload_args=args,
                config=config,
                max_cycles=self.max_cycles,
                verify=self.verify,
                label=f"{name} {overrides}",
            ))
        outcomes, stats = run_jobs(specs, jobs=jobs, cache=cache,
                                   progress=progress)
        for outcome in outcomes:
            if not outcome.ok:
                raise RuntimeError(
                    f"sweep point {combos[outcome.index]} failed: "
                    f"{outcome.error}"
                )
        self.points = [
            SweepPoint(combos[o.index], o.summary()) for o in outcomes
        ]
        self.last_run_stats = stats
        return self.points

    def _run_callable(self, combos: List[Dict[str, Any]]) -> List[SweepPoint]:
        """Legacy in-process path for arbitrary factory callables."""
        points = []
        for overrides in combos:
            config = dataclasses.replace(self.base_config, **overrides)
            system = ScalableTCCSystem(config)
            workload = self.workload_factory(config)
            result = system.run(
                workload, max_cycles=self.max_cycles, verify=self.verify
            )
            points.append(
                SweepPoint(overrides, ResultSummary.from_result(result))
            )
        return points

    def fingerprints(self) -> List[str]:
        """Per-point result fingerprints — the bit-exactness witness for
        serial-vs-parallel and cold-vs-cached equivalence."""
        if not self.points:
            raise RuntimeError("sweep has not been run")
        return [point.result.fingerprint() for point in self.points]

    # -- rendering ---------------------------------------------------------

    def _rows(self) -> List[Dict[str, Any]]:
        if not self.points:
            raise RuntimeError("sweep has not been run")
        return [point.row() for point in self.points]

    def as_table(self) -> str:
        rows = self._rows()
        headers = list(rows[0])
        return format_table(
            headers, [[str(row[h]) for h in headers] for row in rows]
        )

    def as_csv(self) -> str:
        rows = self._rows()
        buffer = io.StringIO()
        writer = csv.DictWriter(buffer, fieldnames=list(rows[0]))
        writer.writeheader()
        writer.writerows(rows)
        return buffer.getvalue()

    def best(self, metric: str = "cycles") -> SweepPoint:
        """The point minimizing ``metric`` (a row key)."""
        if not self.points:
            raise RuntimeError("sweep has not been run")
        return min(self.points, key=lambda p: p.row()[metric])
