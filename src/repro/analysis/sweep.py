"""Generic configuration sweeps over the application suite.

A sweep takes a base :class:`SystemConfig`, a grid of config overrides,
and a workload factory; it runs every grid point (fresh system each —
systems are single-shot) and collects the results in a flat table that
renders as text or CSV.  The Figure 7/8 drivers are special cases of
this; the sweep exists for the *other* questions users ask ("what if
lines were 64 bytes?", "how does jitter interact with retention?").
"""

from __future__ import annotations

import csv
import dataclasses
import io
import itertools
from typing import Any, Callable, Dict, Iterable, List, Optional

from repro.analysis.tables import format_table
from repro.core.config import SystemConfig
from repro.core.system import ScalableTCCSystem, SimulationResult
from repro.workloads.base import Workload

WorkloadFactory = Callable[[SystemConfig], Workload]


@dataclasses.dataclass
class SweepPoint:
    """One grid point's parameters and outcome."""

    overrides: Dict[str, Any]
    result: SimulationResult

    def row(self) -> Dict[str, Any]:
        fractions = self.result.breakdown_fractions()
        return {
            **self.overrides,
            "cycles": self.result.cycles,
            "commits": self.result.committed_transactions,
            "violations": self.result.total_violations,
            "useful_frac": round(fractions["useful"], 4),
            "commit_frac": round(fractions["commit"], 4),
            "violation_frac": round(fractions["violation"], 4),
            "bytes_per_instr": round(
                sum(self.result.bytes_per_instruction().values()), 4
            ),
        }


class Sweep:
    """Cartesian sweep over config dimensions."""

    def __init__(
        self,
        base_config: SystemConfig,
        grid: Dict[str, Iterable[Any]],
        workload_factory: WorkloadFactory,
        max_cycles: Optional[int] = 5_000_000_000,
        verify: bool = True,
    ) -> None:
        self.base_config = base_config
        self.grid = {key: list(values) for key, values in grid.items()}
        self.workload_factory = workload_factory
        self.max_cycles = max_cycles
        self.verify = verify
        self.points: List[SweepPoint] = []

    def __len__(self) -> int:
        total = 1
        for values in self.grid.values():
            total *= len(values)
        return total

    def run(self) -> List[SweepPoint]:
        """Execute every grid point; returns (and stores) the points."""
        keys = list(self.grid)
        self.points = []
        for combo in itertools.product(*(self.grid[k] for k in keys)):
            overrides = dict(zip(keys, combo))
            config = dataclasses.replace(self.base_config, **overrides)
            system = ScalableTCCSystem(config)
            workload = self.workload_factory(config)
            result = system.run(
                workload, max_cycles=self.max_cycles, verify=self.verify
            )
            self.points.append(SweepPoint(overrides, result))
        return self.points

    # -- rendering ---------------------------------------------------------

    def _rows(self) -> List[Dict[str, Any]]:
        if not self.points:
            raise RuntimeError("sweep has not been run")
        return [point.row() for point in self.points]

    def as_table(self) -> str:
        rows = self._rows()
        headers = list(rows[0])
        return format_table(
            headers, [[str(row[h]) for h in headers] for row in rows]
        )

    def as_csv(self) -> str:
        rows = self._rows()
        buffer = io.StringIO()
        writer = csv.DictWriter(buffer, fieldnames=list(rows[0]))
        writer.writeheader()
        writer.writerows(rows)
        return buffer.getvalue()

    def best(self, metric: str = "cycles") -> SweepPoint:
        """The point minimizing ``metric`` (a row key)."""
        return min(self.points, key=lambda p: p.row()[metric])
