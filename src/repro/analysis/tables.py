"""ASCII rendering of paper-style tables and figures."""

from __future__ import annotations

from typing import Dict, List, Sequence

BREAKDOWN_ORDER = ("useful", "miss", "idle", "commit", "violation")


def format_table(headers: Sequence[str], rows: Sequence[Sequence[str]]) -> str:
    """A plain monospace table with right-padded columns."""
    columns = [list(col) for col in zip(headers, *rows)] if rows else [[h] for h in headers]
    widths = [max(len(str(cell)) for cell in col) for col in columns]
    def fmt_row(cells):
        return "  ".join(str(cell).ljust(width) for cell, width in zip(cells, widths))
    lines = [fmt_row(headers), fmt_row(["-" * w for w in widths])]
    lines.extend(fmt_row(row) for row in rows)
    return "\n".join(lines)


def format_breakdown_figure(
    title: str,
    series: Dict[str, Dict[str, float]],
    speedups: Dict[str, float] | None = None,
) -> str:
    """Figure 6/7-style rows: one line per configuration with the
    normalized execution-time components and an optional speedup label.

    ``series`` maps a row label (e.g. "barnes@8") to its breakdown
    fractions.
    """
    headers = ["config"] + list(BREAKDOWN_ORDER) + (["speedup"] if speedups else [])
    rows = []
    for label, breakdown in series.items():
        row = [label] + [f"{breakdown.get(k, 0.0) * 100:5.1f}%" for k in BREAKDOWN_ORDER]
        if speedups:
            row.append(f"{speedups.get(label, 0.0):5.1f}x")
        rows.append(row)
    return f"{title}\n" + format_table(headers, rows)


def format_traffic_figure(title: str, series: Dict[str, Dict[str, float]]) -> str:
    """Figure 9-style rows: bytes/instruction by traffic class."""
    classes = ("commit", "miss", "writeback", "overhead")
    headers = ["app"] + [f"{c} B/instr" for c in classes] + ["total"]
    rows = []
    for label, by_class in series.items():
        values = [by_class.get(c, 0.0) for c in classes]
        rows.append(
            [label]
            + [f"{v:.4f}" for v in values]
            + [f"{sum(values):.4f}"]
        )
    return f"{title}\n" + format_table(headers, rows)
