"""Wall-clock performance harness for the simulation kernel.

Every optimization PR records its before/after numbers with this
harness so the repo accumulates a performance trajectory next to its
correctness trajectory.  The headline experiment is the Figure 7
scaling workload at 32 CPUs: every application profile, full volume,
one run each.  The metric is *engine events per wall-clock second*
(plus wall time per app); simulated cycle counts are recorded too so a
perf run doubles as a quick determinism check — they must not change
unless the timing model itself changed.

Each application's ``warmup`` untimed and ``repeats`` timed passes run
back-to-back in one process (one :mod:`repro.runner` ``perf`` job);
with ``jobs`` > 1 the applications themselves run concurrently.
Concurrent workers contend for cores, so per-app events/sec is only
comparable between runs at the same ``jobs`` setting — the report
records it.  Perf jobs are never served from the result cache: the
payload *is* a wall-clock measurement.

Usage:

    python -m repro perf                 # full Fig. 7 @ 32 CPUs, 3 repeats
    python -m repro perf --quick         # seconds-long smoke (CI)
    python -m repro perf --jobs 4        # apps across 4 worker processes
    python -m repro perf --out BENCH_kernel.json

or programmatically via :func:`run_perf`.
"""

from __future__ import annotations

import json
import statistics
import sys
from typing import Dict, Optional, Sequence

from repro.core.config import SystemConfig
from repro.runner import JobSpec, resolve_jobs, run_jobs
from repro.workloads.apps import APP_PROFILES

#: The headline experiment: the Fig. 7 scaling run at 32 CPUs.
FULL_APPS = tuple(sorted(APP_PROFILES))
QUICK_APPS = ("barnes", "equake", "swim")


def run_perf(
    apps: Optional[Sequence[str]] = None,
    n_processors: int = 32,
    scale: float = 1.0,
    repeats: int = 3,
    warmup: int = 1,
    seed: int = 0,
    config_overrides: Optional[dict] = None,
    jobs: Optional[int] = 1,
) -> Dict:
    """Run the perf experiment and return the report dict.

    ``repeats`` timed passes over every app (after ``warmup`` untimed
    ones); per-app wall time is the median over repeats, events/sec is
    total events over median total wall time.  ``jobs`` fans apps out
    over worker processes (None = all cores).
    """
    apps = list(apps or FULL_APPS)
    unknown = [a for a in apps if a not in APP_PROFILES]
    if unknown:
        raise ValueError(f"unknown apps: {unknown}")
    overrides = dict(config_overrides or {})
    config = SystemConfig(n_processors=n_processors, seed=seed, **overrides)
    jobs = resolve_jobs(jobs)

    specs = [
        JobSpec(
            kind="perf",
            workload=app,
            workload_args={"scale": scale},
            config=config,
            verify=False,
            repeats=max(1, repeats),
            warmup=warmup,
            cacheable=False,
            label=f"perf {app}",
        )
        for app in apps
    ]
    outcomes, _ = run_jobs(specs, jobs=jobs)
    for outcome in outcomes:
        if not outcome.ok:
            raise RuntimeError(
                f"perf job {outcome.spec.workload} failed: {outcome.error}"
            )

    per_app = {}
    for outcome in outcomes:
        app = outcome.spec.workload
        walls = outcome.payload["wall_samples_s"]
        summary = outcome.summary()
        wall = statistics.median(walls)
        per_app[app] = {
            "wall_s": round(wall, 4),
            "wall_samples_s": [round(w, 4) for w in walls],
            "events": summary.events_executed,
            "cycles": summary.cycles,
            "committed": summary.committed_transactions,
            "violations": summary.total_violations,
            "traffic_bytes": summary.traffic_bytes,
            "events_per_sec": round(summary.events_executed / wall),
        }

    total_events = sum(v["events"] for v in per_app.values())
    total_wall = sum(v["wall_s"] for v in per_app.values())
    return {
        "bench": "kernel",
        "experiment": {
            "apps": apps,
            "n_processors": n_processors,
            "scale": scale,
            "repeats": repeats,
            "warmup": warmup,
            "seed": seed,
            "config_overrides": overrides,
            "jobs": jobs,
        },
        "python": sys.version.split()[0],
        "per_app": per_app,
        "total": {
            "events": total_events,
            "wall_s": round(total_wall, 4),
            "events_per_sec": round(total_events / total_wall),
            "cycles": sum(v["cycles"] for v in per_app.values()),
        },
    }


def format_report(report: Dict) -> str:
    """Human-readable table for one harness report."""
    jobs = report["experiment"].get("jobs", 1)
    lines = [
        f"kernel perf — {report['experiment']['n_processors']} CPUs, "
        f"scale {report['experiment']['scale']}, "
        f"{report['experiment']['repeats']} repeats, {jobs} worker(s) "
        f"(python {report['python']})",
        f"{'app':<16} {'events':>10} {'cycles':>10} {'wall s':>8} {'events/s':>10}",
    ]
    for app, row in report["per_app"].items():
        lines.append(
            f"{app:<16} {row['events']:>10,} {row['cycles']:>10,} "
            f"{row['wall_s']:>8.3f} {row['events_per_sec']:>10,}"
        )
    total = report["total"]
    lines.append(
        f"{'TOTAL':<16} {total['events']:>10,} {total['cycles']:>10,} "
        f"{total['wall_s']:>8.3f} {total['events_per_sec']:>10,}"
    )
    return "\n".join(lines)


def save_report(report: Dict, path: str) -> None:
    with open(path, "w") as handle:
        json.dump(report, handle, indent=2)
        handle.write("\n")
