"""Wall-clock performance harness for the simulation kernel.

Every optimization PR records its before/after numbers with this
harness so the repo accumulates a performance trajectory next to its
correctness trajectory.  The headline experiment is the Figure 7
scaling workload at 32 CPUs: every application profile, full volume,
one run each.  The metric is *engine events per wall-clock second*
(plus wall time per app); simulated cycle counts are recorded too so a
perf run doubles as a quick determinism check — they must not change
unless the timing model itself changed.

Usage:

    python -m repro perf                 # full Fig. 7 @ 32 CPUs, 3 repeats
    python -m repro perf --quick         # seconds-long smoke (CI)
    python -m repro perf --out BENCH_kernel.json

or programmatically via :func:`run_perf`.
"""

from __future__ import annotations

import json
import statistics
import sys
import time
from typing import Dict, List, Optional, Sequence

from repro.core.config import SystemConfig
from repro.core.system import ScalableTCCSystem
from repro.workloads.apps import APP_PROFILES, app_workload

#: The headline experiment: the Fig. 7 scaling run at 32 CPUs.
FULL_APPS = tuple(sorted(APP_PROFILES))
QUICK_APPS = ("barnes", "equake", "swim")


def _run_once(app: str, config: SystemConfig, scale: float) -> Dict[str, float]:
    """One timed run; returns wall seconds, events and cycles."""
    system = ScalableTCCSystem(config)
    workload = app_workload(app, scale=scale)
    start = time.perf_counter()
    result = system.run(workload, verify=False)
    wall = time.perf_counter() - start
    return {
        "wall_s": wall,
        "events": result.events_executed,
        "cycles": result.cycles,
        "committed": result.committed_transactions,
        "violations": result.total_violations,
        "traffic_bytes": result.traffic.total_bytes,
    }


def run_perf(
    apps: Optional[Sequence[str]] = None,
    n_processors: int = 32,
    scale: float = 1.0,
    repeats: int = 3,
    warmup: int = 1,
    seed: int = 0,
    config_overrides: Optional[dict] = None,
) -> Dict:
    """Run the perf experiment and return the report dict.

    ``repeats`` timed passes over every app (after ``warmup`` untimed
    ones); per-app wall time is the median over repeats, events/sec is
    total events over median total wall time.
    """
    apps = list(apps or FULL_APPS)
    unknown = [a for a in apps if a not in APP_PROFILES]
    if unknown:
        raise ValueError(f"unknown apps: {unknown}")
    overrides = dict(config_overrides or {})
    config = SystemConfig(n_processors=n_processors, seed=seed, **overrides)

    for _ in range(warmup):
        for app in apps:
            _run_once(app, config, scale)

    samples: Dict[str, List[Dict[str, float]]] = {app: [] for app in apps}
    for _ in range(max(1, repeats)):
        for app in apps:
            samples[app].append(_run_once(app, config, scale))

    per_app = {}
    for app, runs in samples.items():
        walls = [r["wall_s"] for r in runs]
        first = runs[0]
        # Simulated outcomes must be identical across repeats; a
        # mismatch means nondeterminism crept into the kernel.
        for r in runs[1:]:
            for key in ("events", "cycles", "committed", "violations", "traffic_bytes"):
                if r[key] != first[key]:
                    raise RuntimeError(
                        f"nondeterministic run: {app} {key} {r[key]} != {first[key]}"
                    )
        wall = statistics.median(walls)
        per_app[app] = {
            "wall_s": round(wall, 4),
            "wall_samples_s": [round(w, 4) for w in walls],
            "events": first["events"],
            "cycles": first["cycles"],
            "committed": first["committed"],
            "violations": first["violations"],
            "traffic_bytes": first["traffic_bytes"],
            "events_per_sec": round(first["events"] / wall),
        }

    total_events = sum(v["events"] for v in per_app.values())
    total_wall = sum(v["wall_s"] for v in per_app.values())
    return {
        "bench": "kernel",
        "experiment": {
            "apps": apps,
            "n_processors": n_processors,
            "scale": scale,
            "repeats": repeats,
            "warmup": warmup,
            "seed": seed,
            "config_overrides": overrides,
        },
        "python": sys.version.split()[0],
        "per_app": per_app,
        "total": {
            "events": total_events,
            "wall_s": round(total_wall, 4),
            "events_per_sec": round(total_events / total_wall),
            "cycles": sum(v["cycles"] for v in per_app.values()),
        },
    }


def format_report(report: Dict) -> str:
    """Human-readable table for one harness report."""
    lines = [
        f"kernel perf — {report['experiment']['n_processors']} CPUs, "
        f"scale {report['experiment']['scale']}, "
        f"{report['experiment']['repeats']} repeats (python {report['python']})",
        f"{'app':<16} {'events':>10} {'cycles':>10} {'wall s':>8} {'events/s':>10}",
    ]
    for app, row in report["per_app"].items():
        lines.append(
            f"{app:<16} {row['events']:>10,} {row['cycles']:>10,} "
            f"{row['wall_s']:>8.3f} {row['events_per_sec']:>10,}"
        )
    total = report["total"]
    lines.append(
        f"{'TOTAL':<16} {total['events']:>10,} {total['cycles']:>10,} "
        f"{total['wall_s']:>8.3f} {total['events_per_sec']:>10,}"
    )
    return "\n".join(lines)


def save_report(report: Dict, path: str) -> None:
    with open(path, "w") as handle:
        json.dump(report, handle, indent=2)
        handle.write("\n")
