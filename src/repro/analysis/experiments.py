"""Experiment drivers shared by the benchmark harness and examples.

Each driver builds fresh systems (one per configuration — a system runs
exactly one workload), runs the named application, and returns results
keyed the way the corresponding paper artefact needs them.

The multi-run drivers (``run_apps``, ``run_scaling``,
``run_latency_sweep``) accept ``jobs`` and ``cache`` and always route
through the :mod:`repro.runner` process pool: with ``jobs=1`` (the
default) points execute in-process sequentially, with ``jobs > 1`` they
run concurrently across worker processes, and ``cache`` memoizes their
summaries in the content-addressed result cache.  They return
:class:`~repro.runner.ResultSummary` objects — the scalar surface the
figure drivers read (``cycles``, ``committed_transactions``,
``breakdown_fractions()``, ``bytes_per_instruction()``, …) —
bit-identical at any jobs/cache setting.  ``run_app`` stays in-process
and returns the full :class:`~repro.core.system.SimulationResult` for
callers that need per-transaction samples (Table 3 characteristics,
reports).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional

from repro.core.config import SystemConfig
from repro.core.system import ScalableTCCSystem, SimulationResult
from repro.runner import JobSpec, ResultSummary, run_jobs
from repro.runner.pool import CacheLike
from repro.workloads.apps import app_workload

#: Safety bound: no single experiment may exceed this many cycles.
MAX_CYCLES = 5_000_000_000


def run_app(
    name: str,
    config: SystemConfig,
    scale: float = 1.0,
    verify: bool = True,
) -> SimulationResult:
    """One application on one configuration (in-process, full result)."""
    system = ScalableTCCSystem(config)
    workload = app_workload(name, scale=scale, line_size=config.line_size,
                            word_size=config.word_size)
    return system.run(workload, max_cycles=MAX_CYCLES, verify=verify)


def _app_spec(name: str, config: SystemConfig, scale: float,
              verify: bool) -> JobSpec:
    return JobSpec(
        kind="sim",
        workload="app",
        workload_args={"name": name, "scale": scale},
        config=config,
        max_cycles=MAX_CYCLES,
        verify=verify,
        label=f"{name}@{config.n_processors}",
    )


def _run_app_specs(specs: List[JobSpec], jobs: Optional[int],
                   cache: CacheLike) -> List[ResultSummary]:
    outcomes, _ = run_jobs(specs, jobs=jobs, cache=cache)
    for outcome in outcomes:
        if not outcome.ok:
            raise RuntimeError(
                f"experiment job {outcome.spec.describe()} failed: "
                f"{outcome.error}"
            )
    return [outcome.summary() for outcome in outcomes]


def run_apps(
    names: Iterable[str],
    config: SystemConfig,
    scale: float = 1.0,
    verify: bool = True,
    jobs: Optional[int] = 1,
    cache: CacheLike = None,
) -> Dict[str, ResultSummary]:
    """Several applications on one configuration (Figures 6 and 9)."""
    names = list(names)
    specs = [_app_spec(name, config, scale, verify) for name in names]
    return dict(zip(names, _run_app_specs(specs, jobs, cache)))


def run_scaling(
    name: str,
    processor_counts: Iterable[int],
    base_config: Optional[SystemConfig] = None,
    scale: float = 1.0,
    verify: bool = True,
    jobs: Optional[int] = 1,
    cache: CacheLike = None,
) -> Dict[int, ResultSummary]:
    """Figure 7: the same total work across processor counts."""
    base = base_config or SystemConfig()
    counts = list(processor_counts)
    specs = [
        _app_spec(name, base.scaled_to(n), scale, verify) for n in counts
    ]
    return dict(zip(counts, _run_app_specs(specs, jobs, cache)))


def run_latency_sweep(
    name: str,
    link_latencies: Iterable[int],
    n_processors: int = 64,
    base_config: Optional[SystemConfig] = None,
    scale: float = 1.0,
    verify: bool = True,
    jobs: Optional[int] = 1,
    cache: CacheLike = None,
) -> Dict[int, ResultSummary]:
    """Figure 8: the impact of cycles-per-hop at a fixed processor count."""
    base = (base_config or SystemConfig()).scaled_to(n_processors)
    latencies = list(link_latencies)
    specs = [
        _app_spec(name, base.with_link_latency(latency), scale, verify)
        for latency in latencies
    ]
    return dict(zip(latencies, _run_app_specs(specs, jobs, cache)))
