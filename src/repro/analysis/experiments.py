"""Experiment drivers shared by the benchmark harness and examples.

Each driver builds fresh systems (one per configuration — a system runs
exactly one workload), runs the named application, and returns results
keyed the way the corresponding paper artefact needs them.
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional

from repro.core.config import SystemConfig
from repro.core.system import ScalableTCCSystem, SimulationResult
from repro.workloads.apps import app_workload

#: Safety bound: no single experiment may exceed this many cycles.
MAX_CYCLES = 5_000_000_000


def run_app(
    name: str,
    config: SystemConfig,
    scale: float = 1.0,
    verify: bool = True,
) -> SimulationResult:
    """One application on one configuration."""
    system = ScalableTCCSystem(config)
    workload = app_workload(name, scale=scale, line_size=config.line_size,
                            word_size=config.word_size)
    return system.run(workload, max_cycles=MAX_CYCLES, verify=verify)


def run_scaling(
    name: str,
    processor_counts: Iterable[int],
    base_config: Optional[SystemConfig] = None,
    scale: float = 1.0,
    verify: bool = True,
) -> Dict[int, SimulationResult]:
    """Figure 7: the same total work across processor counts."""
    base = base_config or SystemConfig()
    results = {}
    for n in processor_counts:
        results[n] = run_app(name, base.scaled_to(n), scale=scale, verify=verify)
    return results


def run_latency_sweep(
    name: str,
    link_latencies: Iterable[int],
    n_processors: int = 64,
    base_config: Optional[SystemConfig] = None,
    scale: float = 1.0,
    verify: bool = True,
) -> Dict[int, SimulationResult]:
    """Figure 8: the impact of cycles-per-hop at a fixed processor count."""
    base = (base_config or SystemConfig()).scaled_to(n_processors)
    results = {}
    for latency in link_latencies:
        results[latency] = run_app(
            name, base.with_link_latency(latency), scale=scale, verify=verify
        )
    return results
