"""The token-serialized commit engine (small-scale TCC baseline).

See :mod:`repro.baseline` for the motivation.  The engine plugs into
:class:`~repro.processor.core.TCCProcessor` exactly like the scalable
engine, but serializes every commit through one global token and pushes
write-through data + broadcast snoop invalidations, modelling the
original bus-based TCC on the mesh.
"""

from __future__ import annotations

from typing import Dict, Set

from repro.core.messages import (
    TokenInv,
    TokenInvAck,
    TokenWrite,
    TokenWriteAck,
)
from repro.processor.commit import CommitEngine


class TokenCommitEngine(CommitEngine):
    """Small-scale TCC: serialized write-through commit via a global token."""

    def __init__(self, proc) -> None:
        super().__init__(proc)
        self._inv_acks = 0
        self._expected_inv_acks = 0
        self._write_acks: Set[int] = set()
        self._expected_write_acks: Set[int] = set()

    def deliver(self, msg) -> bool:
        if isinstance(msg, TokenInv):
            self._on_token_inv(msg)
            return True
        if isinstance(msg, TokenInvAck):
            self._inv_acks += 1
            self.proc._notify()
            return True
        if isinstance(msg, TokenWriteAck):
            self._write_acks.add(msg.directory)
            self.proc._notify()
            return True
        return False

    def _on_token_inv(self, msg: TokenInv) -> None:
        proc = self.proc
        for line, word_mask in msg.lines.items():
            proc._apply_invalidation(line, word_mask, msg.tid, msg.committer)
        proc._send(msg.committer, TokenInvAck(proc.node, msg.tid))

    def commit(self, tx):
        proc = self.proc
        cfg = proc.config

        yield proc.system.token.acquire()
        if proc.violated:
            proc.system.token.release()
            return False

        # Token ownership is the serialization point; the vendor call is
        # bookkeeping (the bus arbiter implicitly orders commits).
        tid = proc.system.vendor.next_tid(proc.node)
        proc.current_tid = tid

        lines_masks: Dict[int, int] = {}
        data_by_dir: Dict[int, Dict[int, Dict[int, int]]] = {}
        for entry in proc.hierarchy.written_lines():
            lines_masks[entry.line] = entry.sm_mask
            home = proc.mapping.home(entry.line)
            written_words = {
                word: entry.data[word]
                for word in proc.amap.words_in_mask(entry.sm_mask & entry.valid_mask)
            }
            data_by_dir.setdefault(home, {})[entry.line] = written_words

        write_set_bytes = proc.hierarchy.write_set_bytes()
        read_set_bytes = proc.hierarchy.read_set_bytes()

        self._inv_acks = 0
        self._write_acks = set()
        others = [p for p in range(cfg.n_processors) if p != proc.node]
        if lines_masks:
            # Write-through broadcast commit.  Data goes to the home
            # memories *first* and is acknowledged before the snoop
            # invalidations go out, so any processor whose load was
            # poisoned by an invalidation always refetches post-commit
            # memory (the ordered bus gives small-scale TCC this for
            # free; on the mesh we enforce it with the ack barrier).
            self._expected_inv_acks = len(others)
            self._expected_write_acks = set(data_by_dir)
            for directory, lines in data_by_dir.items():
                proc._send(directory, TokenWrite(proc.node, tid, lines))
            while not self._write_acks >= self._expected_write_acks:
                yield proc.wait()
            if others:
                proc.multicast(others, TokenInv(proc.node, tid, lines_masks))
        else:
            self._expected_inv_acks = 0
            self._expected_write_acks = set()

        while self._inv_acks < self._expected_inv_acks:
            yield proc.wait()

        proc.validated = True
        proc.latest_tid = tid
        committed_lines = proc.hierarchy.commit_speculative()
        for line in committed_lines:
            proc.hierarchy.flushed(line)  # write-through: nothing stays dirty
        proc.system.vendor.resolve(tid)
        proc.current_tid = None
        proc.system.token.release()

        proc.stats.write_set_bytes.append(write_set_bytes)
        proc.stats.read_set_bytes.append(read_set_bytes)
        proc.stats.dirs_touched.append(len(data_by_dir))
        return True
