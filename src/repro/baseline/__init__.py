"""Small-scale TCC baseline (the paper's Section 2.2 motivation).

The original TCC design operates under OCC "condition 2": commits are
fully serialized by a global commit token and broadcast write-through on
an ordered bus.  That works on a small CMP but, as the paper argues,
"the sum of all commit times places a lower bound on execution time" at
scale — which is exactly what the A1 ablation benchmark measures against
the scalable directory protocol.

Select it with ``SystemConfig(commit_backend="token")``.
"""

from repro.baseline.token import TokenCommitEngine

__all__ = ["TokenCommitEngine"]
