"""Memory system: address model, main memory, speculative caches.

This package models the node-local memory system of the simulated DSM
machine (Figure 1 of the paper): per-node physical memory fronted by a
directory, and per-processor private cache hierarchies whose lines carry
the speculatively-modified (SM) and speculatively-read (SR) bits that TCC
uses for lazy versioning and conflict detection.
"""

from repro.memory.address import AddressMap, FirstTouchMapping, InterleavedMapping
from repro.memory.cache import CacheLine, EvictionNotice, SpeculativeCache
from repro.memory.hierarchy import AccessResult, PrivateHierarchy
from repro.memory.mainmem import MainMemory

__all__ = [
    "AccessResult",
    "AddressMap",
    "CacheLine",
    "EvictionNotice",
    "FirstTouchMapping",
    "InterleavedMapping",
    "MainMemory",
    "PrivateHierarchy",
    "SpeculativeCache",
]
