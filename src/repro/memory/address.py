"""Address arithmetic and home-directory mapping.

Addresses are plain byte-address integers.  The machine is parameterized
by a line size (32 bytes in the paper's Table 2) and a word size (4 bytes,
PowerPC).  The *home* of a line is the node whose directory and physical
memory own it; the paper uses a first-touch page policy, and we also
provide simple line-interleaving for workloads that want uniform spread.
"""

from __future__ import annotations

from typing import Dict, Iterable


class AddressMap:
    """Line/word arithmetic shared by caches, directories, and workloads."""

    def __init__(self, line_size: int = 32, word_size: int = 4) -> None:
        if line_size <= 0 or line_size & (line_size - 1):
            raise ValueError(f"line size must be a power of two, got {line_size}")
        if word_size <= 0 or word_size & (word_size - 1):
            raise ValueError(f"word size must be a power of two, got {word_size}")
        if word_size > line_size:
            raise ValueError("word size cannot exceed line size")
        self.line_size = line_size
        self.word_size = word_size
        self.words_per_line = line_size // word_size
        self._line_shift = line_size.bit_length() - 1
        self._word_shift = word_size.bit_length() - 1
        self._word_mask = self.words_per_line - 1

    def line_of(self, addr: int) -> int:
        """Line number containing byte address ``addr``."""
        return addr >> self._line_shift

    def word_of(self, addr: int) -> int:
        """Word index of ``addr`` within its line (0 .. words_per_line-1)."""
        return (addr >> self._word_shift) & self._word_mask

    def addr_of(self, line: int, word: int = 0) -> int:
        """Byte address of ``word`` within ``line`` (inverse of the above)."""
        return (line << self._line_shift) | (word << self._word_shift)

    def word_bit(self, addr: int) -> int:
        """Single-bit mask selecting ``addr``'s word — SM/SR masks use these."""
        return 1 << self.word_of(addr)

    @property
    def full_line_mask(self) -> int:
        """Mask with one bit per word in a line, all set."""
        return (1 << self.words_per_line) - 1

    def words_in_mask(self, mask: int) -> Iterable[int]:
        """Word indices present in a word-flag mask."""
        word = 0
        while mask:
            if mask & 1:
                yield word
            mask >>= 1
            word += 1


class InterleavedMapping:
    """Home directory = line number modulo node count.

    Spreads consecutive lines round-robin across nodes — the conventional
    NUMA interleave.  Deterministic, stateless.
    """

    def __init__(self, n_nodes: int) -> None:
        if n_nodes < 1:
            raise ValueError("need at least one node")
        self.n_nodes = n_nodes

    def home(self, line: int) -> int:
        return line % self.n_nodes

    def touch(self, line: int, node: int) -> int:
        """Interleaving ignores first touch; returns the fixed home."""
        return self.home(line)


class FirstTouchMapping:
    """First-touch page placement (the paper's policy).

    The first node to access any line of a page becomes the page's home.
    Lines never referenced resolve, for robustness, to an interleaved
    fallback so ``home()`` is total.
    """

    def __init__(self, n_nodes: int, page_size: int = 4096, line_size: int = 32) -> None:
        if n_nodes < 1:
            raise ValueError("need at least one node")
        if page_size % line_size:
            raise ValueError("page size must be a multiple of line size")
        self.n_nodes = n_nodes
        self.lines_per_page = page_size // line_size
        self._page_home: Dict[int, int] = {}
        # line -> home, memoized only once the page is *placed* (placement
        # is permanent, so these entries can never go stale); the
        # interleaved fallback for untouched pages must not be cached.
        self._line_home: Dict[int, int] = {}

    def _page_of(self, line: int) -> int:
        return line // self.lines_per_page

    def touch(self, line: int, node: int) -> int:
        """Record ``node`` touching ``line``; return the (possibly new) home."""
        page = self._page_of(line)
        home = self._page_home.get(page)
        if home is None:
            home = node % self.n_nodes
            self._page_home[page] = home
        self._line_home[line] = home
        return home

    def home(self, line: int) -> int:
        home = self._line_home.get(line)
        if home is not None:
            return home
        page = self._page_of(line)
        home = self._page_home.get(page)
        if home is None:
            # Untouched page: fall back to interleave so the map is total.
            return page % self.n_nodes
        self._line_home[line] = home
        return home

    @property
    def placed_pages(self) -> int:
        return len(self._page_home)
