"""The per-processor private cache hierarchy.

The paper's processors have a 32 KB L1 (1-cycle) and a 512 KB L2
(6-cycle), with every level tracking SR/SM speculative state (Table 2,
Section 3.1).  Because both levels hold identical speculative state and
the protocol engages only when a request leaves the hierarchy, we keep the
*authoritative* state and data in a single :class:`SpeculativeCache` sized
as the L2, and model the L1 as an inclusive tag-only timing filter: an
access that hits the filter costs the L1 latency, an access that hits only
the backing cache costs the L2 latency, anything else leaves the node.

The hierarchy also implements the paper's write-back rule: the dirty bit
is checked on the first speculative write of each transaction, and if set
the committed data must first be flushed home so that main memory retains
the pre-transaction version (Section 3.1).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.memory.address import AddressMap
from repro.memory.cache import CacheLine, EvictionNotice, SpeculativeCache

HIT_L1 = "l1"
HIT_L2 = "l2"
MISS = "miss"
FLUSH_FIRST = "flush_first"


@dataclass
class AccessResult:
    """Outcome of a load/store against the private hierarchy."""

    outcome: str
    cycles: int = 0
    value: Optional[int] = None
    flush_line: Optional[int] = None
    flush_words: Optional[Dict[int, int]] = None

    @property
    def hit(self) -> bool:
        return self.outcome in (HIT_L1, HIT_L2)


class _TagFilter:
    """Tag-only set-associative LRU store modelling L1 residency."""

    def __init__(self, n_lines: int, ways: int) -> None:
        self.ways = ways
        self.n_sets = max(1, n_lines // ways)
        self._sets: List[Dict[int, int]] = [dict() for _ in range(self.n_sets)]
        self._clock = 0

    def contains(self, line: int, touch: bool = True) -> bool:
        bucket = self._sets[line % self.n_sets]
        if line not in bucket:
            return False
        if touch:
            self._clock += 1
            bucket[line] = self._clock
        return True

    def insert(self, line: int) -> None:
        bucket = self._sets[line % self.n_sets]
        self._clock += 1
        if line not in bucket and len(bucket) >= self.ways:
            victim = min(bucket, key=bucket.get)
            del bucket[victim]
        bucket[line] = self._clock

    def invalidate(self, line: int) -> None:
        self._sets[line % self.n_sets].pop(line, None)

    def clear(self) -> None:
        for bucket in self._sets:
            bucket.clear()


class PrivateHierarchy:
    """L1 timing filter over an authoritative speculative L2."""

    def __init__(
        self,
        amap: AddressMap,
        l1_size: int = 32 * 1024,
        l1_ways: int = 4,
        l1_latency: int = 1,
        l2_size: int = 512 * 1024,
        l2_ways: int = 8,
        l2_latency: int = 6,
        granularity: str = "word",
        name: str = "hier",
    ) -> None:
        self.amap = amap
        self.l1_latency = l1_latency
        self.l2_latency = l2_latency
        self.l1 = _TagFilter(l1_size // amap.line_size, l1_ways)
        self.l2 = SpeculativeCache(amap, l2_size, l2_ways, granularity, name=f"{name}.l2")
        self.granularity = granularity

    # -- timing helper ---------------------------------------------------

    def _latency(self, line: int) -> int:
        if self.l1.contains(line):
            return self.l1_latency
        self.l1.insert(line)
        return self.l2_latency

    # -- accesses ---------------------------------------------------------

    def load(self, line: int, word: int, speculative: bool = True) -> AccessResult:
        value = self.l2.read(line, word, speculative=speculative)
        if value is None:
            self.l1.invalidate(line)
            return AccessResult(MISS)
        cycles = self._latency(line)
        outcome = HIT_L1 if cycles == self.l1_latency else HIT_L2
        return AccessResult(outcome, cycles=cycles, value=value)

    def store(self, line: int, word: int, value: int, speculative: bool = True) -> AccessResult:
        entry = self.l2.lookup(line)
        if entry is None:
            self.l1.invalidate(line)
            return AccessResult(MISS)
        if speculative and entry.dirty and not entry.sm_mask:
            # Paper rule: committed (dirty) data must reach home memory
            # before the first speculative overwrite in a new transaction.
            return AccessResult(
                FLUSH_FIRST,
                flush_line=line,
                flush_words=entry.valid_words(),
            )
        self.l2.write(line, word, value, speculative=speculative)
        cycles = self._latency(line)
        outcome = HIT_L1 if cycles == self.l1_latency else HIT_L2
        return AccessResult(outcome, cycles=cycles, value=value)

    def fill(self, line: int, data: List[int], dirty: bool = False) -> List[EvictionNotice]:
        """Install a remotely fetched line; returns dirty lines forced out."""
        notice = self.l2.fill(line, data, dirty=dirty)
        self.l1.insert(line)
        if notice is None:
            return []
        self.l1.invalidate(notice.line)
        return [notice] if notice.dirty else []

    # -- external coherence actions ---------------------------------------

    def peek(self, line: int) -> Optional[CacheLine]:
        """The resident line without touching LRU state."""
        return self.l2.lookup(line, touch=False)

    def invalidate(self, line: int) -> Optional[CacheLine]:
        """Drop a line (inclusion victim etc.); returns its old state."""
        self.l1.invalidate(line)
        return self.l2.invalidate(line)

    def invalidate_words(self, line: int, word_mask: int) -> Optional[CacheLine]:
        """Word-granularity invalidation (remote commit); the line survives
        if it retains valid words.  Returns the updated/removed entry."""
        entry = self.l2.invalidate_words(line, word_mask)
        if entry is None or not entry.valid_mask:
            self.l1.invalidate(line)
        return entry

    def flushed(self, line: int) -> None:
        """The line's dirty data has reached home; keep it, now clean."""
        self.l2.clear_dirty(line)

    def extract_for_writeback(self, line: int) -> Optional[Dict[int, int]]:
        """Valid words for a write-back that removes the line from cache."""
        entry = self.l2.invalidate(line)
        self.l1.invalidate(line)
        return None if entry is None else entry.valid_words()

    # -- transaction boundaries --------------------------------------------

    def written_lines(self) -> List[CacheLine]:
        return self.l2.written_lines()

    def read_lines(self) -> List[CacheLine]:
        return self.l2.read_lines()

    def commit_speculative(self) -> List[int]:
        return self.l2.commit_speculative()

    def abort_speculative(self) -> List[int]:
        dropped = self.l2.abort_speculative()
        for line in dropped:
            self.l1.invalidate(line)
        return dropped

    # -- statistics ---------------------------------------------------------

    @property
    def stats(self):
        return self.l2.stats

    def read_set_bytes(self) -> int:
        """Current transaction read-set size in bytes (for Table 3)."""
        return sum(
            bin(entry.sr_mask).count("1") * self.amap.word_size
            for entry in self.l2.read_lines()
        )

    def write_set_bytes(self) -> int:
        """Current transaction write-set size in bytes (for Table 3)."""
        return sum(
            bin(entry.sm_mask).count("1") * self.amap.word_size
            for entry in self.l2.written_lines()
        )
