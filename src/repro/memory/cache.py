"""Set-associative caches with TCC speculative state.

Each cache line carries per-word state, exactly as in Figure 1b of the
paper ("Tag bits include valid, speculatively-modified (SM), and
speculatively-read (SR) bits for each word"):

* ``valid_mask`` — which words hold meaningful data.  Word-granularity
  invalidations clear individual valid bits, so a line can be partially
  valid; write-backs send only valid words and main memory merges them.
* ``sr_mask`` — speculatively read by the current transaction; an
  invalidation hitting one of these words (from a logically-earlier
  transaction) violates the transaction.
* ``sm_mask`` — speculatively modified by the current transaction; SM
  data is invisible to the rest of the system until commit (lazy
  versioning) and discarded on abort.

At line granularity the same machinery runs with full-line masks, which is
exactly how the paper describes line-level tracking.

Speculative lines are never chosen as victims; if a set fills up with
speculative lines, the set is allowed to overflow (modelling a victim
buffer / VTM-style fallback) and the overflow is counted — the paper notes
that with large private L2 caches these overflows are rare.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional

from repro.memory.address import AddressMap


@dataclass
class CacheLine:
    """One cache line: per-word tag state plus actual word values."""

    line: int
    data: List[int]
    valid_mask: int = 0
    dirty: bool = False
    sr_mask: int = 0
    sm_mask: int = 0
    #: TID of the local commit that produced the current dirty data and
    #: the word mask that commit wrote (hardened protocol only; -1/0
    #: when untracked).  An invalidation carrying an older TID must not
    #: touch those words: they were serialized *after* its commit, and
    #: destroying them would drop the only architectural copy.
    commit_tid: int = -1
    commit_sm_mask: int = 0
    last_use: int = 0
    #: Monotone stamp from the owning cache at bucket insertion, used to
    #: reproduce dict-insertion scan order without scanning.
    insert_seq: int = 0

    @property
    def speculative(self) -> bool:
        return bool(self.sr_mask or self.sm_mask)

    def valid_words(self) -> Dict[int, int]:
        """Mapping word -> value for the valid words (write-back payload)."""
        words = {}
        mask = self.valid_mask
        word = 0
        while mask:
            if mask & 1:
                words[word] = self.data[word]
            mask >>= 1
            word += 1
        return words


@dataclass
class EvictionNotice:
    """A line pushed out of the cache; ``dirty`` data must reach its home."""

    line: int
    data: List[int]
    valid_mask: int
    dirty: bool

    def valid_words(self) -> Dict[int, int]:
        words = {}
        mask = self.valid_mask
        word = 0
        while mask:
            if mask & 1:
                words[word] = self.data[word]
            mask >>= 1
            word += 1
        return words


@dataclass
class CacheStats:
    """Aggregate counters, kept cheap to update on the hot path."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    dirty_evictions: int = 0
    speculative_overflows: int = 0
    commits: int = 0
    aborts: int = 0

    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        total = self.accesses
        return self.hits / total if total else 0.0


class SpeculativeCache:
    """One level of private cache with speculative word state.

    The cache stores real word values so the protocol can move data
    between nodes; ways/sets follow Table 2 geometry and victims are LRU
    among non-speculative lines.
    """

    def __init__(
        self,
        amap: AddressMap,
        size_bytes: int,
        ways: int,
        granularity: str = "word",
        name: str = "cache",
    ) -> None:
        if granularity not in ("word", "line"):
            raise ValueError(f"granularity must be 'word' or 'line', got {granularity!r}")
        n_lines = size_bytes // amap.line_size
        if n_lines < ways or n_lines % ways:
            raise ValueError(
                f"{size_bytes} bytes / {amap.line_size}B lines does not divide into {ways} ways"
            )
        self.amap = amap
        self.ways = ways
        self.n_sets = n_lines // ways
        self.granularity = granularity
        self.name = name
        self._sets: List[Dict[int, CacheLine]] = [dict() for _ in range(self.n_sets)]
        self._clock = 0
        # Index of lines with SR/SM state, so transaction-boundary walks
        # touch only the speculative footprint instead of every resident
        # line.  ``_spec_sorted`` caches the scan-ordered view (set index,
        # then bucket insertion order — identical to a full-set walk).
        self._spec: Dict[int, CacheLine] = {}
        self._spec_sorted: Optional[List[CacheLine]] = None
        self.stats = CacheStats()

    # -- indexing -------------------------------------------------------

    def _set_of(self, line: int) -> Dict[int, CacheLine]:
        return self._sets[line % self.n_sets]

    def _mask_for(self, word: int) -> int:
        if self.granularity == "line":
            return self.amap.full_line_mask
        return 1 << word

    def _tick(self) -> int:
        self._clock += 1
        return self._clock

    # -- basic presence -------------------------------------------------

    def lookup(self, line: int, touch: bool = True) -> Optional[CacheLine]:
        """The resident line, or None.  ``touch`` refreshes LRU state."""
        entry = self._set_of(line).get(line)
        if entry is not None and touch:
            entry.last_use = self._tick()
        return entry

    def contains(self, line: int) -> bool:
        return line in self._set_of(line)

    # -- accesses -------------------------------------------------------

    def read(self, line: int, word: int, speculative: bool = True) -> Optional[int]:
        """Read a word; None on a line miss *or* an invalid word.

        Sets SR when speculative and the read hits.
        """
        entry = self.lookup(line)
        if entry is None or not entry.valid_mask & (1 << word):
            self.stats.misses += 1
            return None
        self.stats.hits += 1
        if speculative:
            if not (entry.sr_mask | entry.sm_mask):
                self._spec[line] = entry
                self._spec_sorted = None
            entry.sr_mask |= self._mask_for(word)
        return entry.data[word]

    def write(self, line: int, word: int, value: int, speculative: bool = True) -> bool:
        """Write a word; returns False on miss (caller must allocate first).

        Speculative writes set SM; non-speculative writes set dirty.  The
        written word becomes valid.  The caller is responsible for the
        write-back-before-first-speculative-write rule (see
        :class:`~repro.memory.hierarchy.PrivateHierarchy`).
        """
        entry = self.lookup(line)
        if entry is None:
            self.stats.misses += 1
            return False
        self.stats.hits += 1
        entry.data[word] = value
        entry.valid_mask |= 1 << word
        if speculative:
            if not (entry.sr_mask | entry.sm_mask):
                self._spec[line] = entry
                self._spec_sorted = None
            entry.sm_mask |= self._mask_for(word)
        else:
            entry.dirty = True
        return True

    def fill(self, line: int, data: List[int], dirty: bool = False) -> Optional[EvictionNotice]:
        """Install a line, evicting if needed; returns the eviction if any.

        When the line is already resident (a partial-line refetch), the
        incoming data fills only the *invalid* words — locally valid words
        (possibly dirty or speculative) always win.
        """
        if len(data) != self.amap.words_per_line:
            raise ValueError("fill data has wrong word count")
        bucket = self._set_of(line)
        existing = bucket.get(line)
        full = self.amap.full_line_mask
        if existing is not None:
            for word in range(self.amap.words_per_line):
                if not existing.valid_mask & (1 << word):
                    existing.data[word] = data[word]
            existing.valid_mask = full
            existing.dirty = existing.dirty or dirty
            existing.last_use = self._tick()
            return None
        notice = None
        if len(bucket) >= self.ways:
            notice = self._evict_from(bucket)
        tick = self._tick()
        bucket[line] = CacheLine(
            line, list(data), valid_mask=full, dirty=dirty,
            last_use=tick, insert_seq=tick,
        )
        return notice

    def _evict_from(self, bucket: Dict[int, CacheLine]) -> Optional[EvictionNotice]:
        candidates = [entry for entry in bucket.values() if not entry.speculative]
        if not candidates:
            # Every resident line is speculative: overflow the set rather
            # than violate the transaction (victim-buffer model).
            self.stats.speculative_overflows += 1
            return None
        victim = min(candidates, key=lambda entry: entry.last_use)
        del bucket[victim.line]
        self.stats.evictions += 1
        if victim.dirty:
            self.stats.dirty_evictions += 1
        return EvictionNotice(victim.line, victim.data, victim.valid_mask, victim.dirty)

    def invalidate(self, line: int) -> Optional[CacheLine]:
        """Drop the whole line (inclusion victim or full invalidation)."""
        entry = self._set_of(line).pop(line, None)
        if entry is not None and (entry.sr_mask | entry.sm_mask):
            if self._spec.pop(line, None) is not None:
                self._spec_sorted = None
        return entry

    def invalidate_words(self, line: int, word_mask: int) -> Optional[CacheLine]:
        """Clear valid/SR/SM bits for the given words; drop the line if no
        valid words remain.  Returns the (possibly removed) entry."""
        bucket = self._set_of(line)
        entry = bucket.get(line)
        if entry is None:
            return None
        entry.valid_mask &= ~word_mask
        entry.sr_mask &= ~word_mask
        entry.sm_mask &= ~word_mask
        if not entry.valid_mask:
            del bucket[line]
        if not (entry.sr_mask | entry.sm_mask):
            if self._spec.pop(line, None) is not None:
                self._spec_sorted = None
        return entry

    def clear_dirty(self, line: int) -> None:
        """Mark a line clean after its data was flushed to the home node."""
        entry = self._set_of(line).get(line)
        if entry is not None:
            entry.dirty = False

    # -- transaction boundaries ------------------------------------------

    def _spec_scan(self) -> List[CacheLine]:
        """Speculative lines in full-set scan order (set index, then bucket
        insertion order), produced from the index without touching the
        non-speculative resident lines."""
        scan = self._spec_sorted
        if scan is None:
            n_sets = self.n_sets
            scan = sorted(
                self._spec.values(),
                key=lambda entry: (entry.line % n_sets, entry.insert_seq),
            )
            self._spec_sorted = scan
        return scan

    def speculative_lines(self) -> Iterable[CacheLine]:
        return self._spec_scan()

    def written_lines(self) -> List[CacheLine]:
        """Lines with speculative modifications (the transaction write-set)."""
        return [entry for entry in self._spec_scan() if entry.sm_mask]

    def read_lines(self) -> List[CacheLine]:
        """Lines with speculative reads (the transaction read-set)."""
        return [entry for entry in self._spec_scan() if entry.sr_mask]

    def commit_speculative(self) -> List[int]:
        """Transaction committed: SM data becomes dirty-owned, flags clear.

        Returns the committed (written) line numbers.
        """
        committed = []
        for entry in self._spec_scan():
            if entry.sm_mask:
                entry.dirty = True
                committed.append(entry.line)
            entry.sm_mask = 0
            entry.sr_mask = 0
        self._spec.clear()
        self._spec_sorted = None
        self.stats.commits += 1
        return committed

    def abort_speculative(self) -> List[int]:
        """Transaction violated: drop SM lines, clear SR flags.

        Returns the invalidated (speculatively written) line numbers.
        """
        dropped = []
        for entry in self._spec_scan():
            if entry.sm_mask:
                del self._sets[entry.line % self.n_sets][entry.line]
                dropped.append(entry.line)
            entry.sm_mask = 0
            entry.sr_mask = 0
        self._spec.clear()
        self._spec_sorted = None
        self.stats.aborts += 1
        return dropped

    # -- introspection ---------------------------------------------------

    def resident_lines(self) -> int:
        return sum(len(bucket) for bucket in self._sets)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"SpeculativeCache({self.name!r}, {self.n_sets}x{self.ways}, "
            f"{self.resident_lines()} lines)"
        )
