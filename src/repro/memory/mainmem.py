"""Per-node physical memory holding actual word values.

We model data values (not just addresses) so that the serializability
checker in :mod:`repro.verify` can compare the machine's final state and
every transactional read against a serial replay.  Untouched words read as
zero, so memory is stored sparsely.
"""

from __future__ import annotations

from typing import Dict, List

from repro.memory.address import AddressMap


class MainMemory:
    """Sparse word-addressable memory for one node's physical address slice.

    The directory is the only agent that reads/writes this in the scalable
    system; latency is modelled by the directory controller (Table 2: 100
    cycles), not here — this class is pure state.
    """

    def __init__(self, amap: AddressMap) -> None:
        self.amap = amap
        self._lines: Dict[int, List[int]] = {}
        self.reads = 0
        self.writes = 0

    def read_line(self, line: int) -> List[int]:
        """Copy of the line's words (zeros if never written)."""
        self.reads += 1
        data = self._lines.get(line)
        if data is None:
            return [0] * self.amap.words_per_line
        return list(data)

    def write_line(self, line: int, data: List[int]) -> None:
        """Replace the whole line."""
        if len(data) != self.amap.words_per_line:
            raise ValueError(
                f"line write needs {self.amap.words_per_line} words, got {len(data)}"
            )
        self.writes += 1
        self._lines[line] = list(data)

    def write_words(self, line: int, words: Dict[int, int]) -> None:
        """Merge individual word values into the line (write-through commits)."""
        self.writes += 1
        data = self._lines.setdefault(line, [0] * self.amap.words_per_line)
        for word, value in words.items():
            data[word] = value

    def read_word(self, line: int, word: int) -> int:
        data = self._lines.get(line)
        return 0 if data is None else data[word]

    def snapshot(self) -> Dict[int, List[int]]:
        """Deep copy of all stored lines (for verification)."""
        return {line: list(words) for line, words in self._lines.items()}

    @property
    def resident_lines(self) -> int:
        return len(self._lines)
