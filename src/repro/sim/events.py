"""Events: the unit of synchronization between simulated agents."""

from __future__ import annotations

from typing import Any, Callable, Iterable, Optional

from repro.sim.engine import Engine, SimulationError


class Event:
    """A one-shot occurrence processes can wait on.

    An event starts *pending*; :meth:`fire` transitions it to *fired* and
    schedules all subscribed callbacks at the current cycle with the
    event's value.  Subscribing to an already-fired event schedules the
    callback immediately, so there is no fire/subscribe race.
    """

    __slots__ = ("engine", "_fired", "_value", "_callbacks")

    def __init__(self, engine: Engine) -> None:
        self.engine = engine
        self._fired = False
        self._value: Any = None
        self._callbacks: list[Callable[[Any], None]] = []

    @property
    def fired(self) -> bool:
        return self._fired

    @property
    def value(self) -> Any:
        if not self._fired:
            raise SimulationError("event value read before fire()")
        return self._value

    def fire(self, value: Any = None) -> "Event":
        """Mark the event as having happened, waking all waiters."""
        if self._fired:
            raise SimulationError("event fired twice")
        self._fired = True
        self._value = value
        callbacks, self._callbacks = self._callbacks, []
        if callbacks:
            self.engine.schedule_many(0, callbacks, self._value)
        return self

    def fire_in(self, delay: int, value: Any = None) -> "Event":
        """Fire this event ``delay`` cycles from now."""
        self.engine.schedule_call(delay, self.fire, value)
        return self

    def subscribe(self, callback: Callable[[Any], None]) -> None:
        """Invoke ``callback(value)`` when (or if already) fired."""
        if self._fired:
            self.engine.schedule_call(0, callback, self._value)
        else:
            self._callbacks.append(callback)


class Timeout(Event):
    """An event that fires after a fixed delay — ``yield Timeout(engine, n)``."""

    __slots__ = ()

    def __init__(self, engine: Engine, delay: int, value: Any = None) -> None:
        super().__init__(engine)
        self.fire_in(delay, value)


class AllOf(Event):
    """Fires once every constituent event has fired.

    The value is the list of constituent values in constructor order.
    An empty collection fires immediately (at the current cycle).
    """

    __slots__ = ("_pending", "_values")

    def __init__(self, engine: Engine, events: Iterable[Event]) -> None:
        super().__init__(engine)
        events = list(events)
        self._values: list[Any] = [None] * len(events)
        self._pending = len(events)
        if self._pending == 0:
            self.fire([])
            return
        for index, event in enumerate(events):
            event.subscribe(lambda value, i=index: self._one_done(i, value))

    def _one_done(self, index: int, value: Any) -> None:
        self._values[index] = value
        self._pending -= 1
        if self._pending == 0:
            self.fire(list(self._values))


class AnyOf(Event):
    """Fires when the first constituent event fires, with ``(index, value)``."""

    __slots__ = ()

    def __init__(self, engine: Engine, events: Iterable[Event]) -> None:
        super().__init__(engine)
        for index, event in enumerate(events):
            event.subscribe(lambda value, i=index: self._first(i, value))

    def _first(self, index: int, value: Any) -> None:
        if not self.fired:
            self.fire((index, value))


def maybe_timeout(engine: Engine, delay: int) -> Optional[Timeout]:
    """A ``Timeout`` for positive delays, ``None`` for zero.

    Lets hot paths skip the event queue entirely when a modelled latency
    happens to be zero cycles.
    """
    return Timeout(engine, delay) if delay > 0 else None
