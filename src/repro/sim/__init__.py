"""Discrete-event simulation kernel.

A minimal, dependency-free process/event simulator in the style of SimPy,
sized for architectural simulation: an :class:`~repro.sim.engine.Engine`
owns the event queue and the clock (measured in CPU cycles); coroutine
:class:`~repro.sim.process.Process` objects model hardware agents
(processors, directory controllers); :mod:`repro.sim.resources` provides
the synchronization primitives the protocol model needs (FIFO servers for
occupancy modelling, barriers for the workloads' barrier structure).

Everything in :mod:`repro` runs on this kernel, so its semantics are the
semantics of the whole simulator:

* Time is an integer cycle count; events scheduled for the same cycle fire
  in FIFO scheduling order (deterministic).
* A process is a Python generator that ``yield``-s :class:`Event` objects
  (or uses ``yield from`` for sub-routines); it resumes when the yielded
  event fires, receiving the event's value.
* Firing an event schedules its callbacks at the *current* cycle; there is
  no zero-delay cascade limit, but cycles never go backwards.
"""

from repro.sim.engine import Engine
from repro.sim.events import AllOf, AnyOf, Event, Timeout
from repro.sim.process import Process
from repro.sim.resources import Barrier, Resource, Store

__all__ = [
    "AllOf",
    "AnyOf",
    "Barrier",
    "Engine",
    "Event",
    "Process",
    "Resource",
    "Store",
    "Timeout",
]
