"""The discrete-event engine: clock plus time-ordered callback queue."""

from __future__ import annotations

import heapq
from typing import Any, Callable, Optional


class SimulationError(RuntimeError):
    """Raised for kernel misuse (negative delays, running a dead engine)."""


class Engine:
    """Event queue and simulated clock.

    The engine is deliberately tiny: it knows nothing about processes or
    hardware, it only runs ``(cycle, seq, callback)`` entries in
    deterministic order.  Higher layers (events, processes, resources)
    build on :meth:`schedule`.
    """

    def __init__(self) -> None:
        self._now: int = 0
        self._queue: list[tuple[int, int, Callable[[], None]]] = []
        self._seq: int = 0
        self._running = False
        # Diagnostic counters; cheap and useful for performance reports.
        self.events_executed: int = 0

    @property
    def now(self) -> int:
        """Current simulation time in cycles."""
        return self._now

    def schedule(self, delay: int, callback: Callable[[], None]) -> None:
        """Run ``callback()`` ``delay`` cycles from now.

        ``delay`` must be a non-negative integer; a zero delay runs the
        callback later in the current cycle, after already-queued work for
        this cycle.
        """
        if delay < 0:
            raise SimulationError(f"cannot schedule {delay} cycles in the past")
        self._seq += 1
        heapq.heappush(self._queue, (self._now + int(delay), self._seq, callback))

    def run(self, until: Optional[int] = None) -> int:
        """Execute queued events; return the final simulation time.

        Runs until the queue drains (the clock stays at the last executed
        event) or until the clock would pass ``until`` (events at exactly
        ``until`` still execute, and the clock parks at ``until``).
        """
        if self._running:
            raise SimulationError("engine is already running (re-entrant run())")
        self._running = True
        try:
            while self._queue:
                when, _seq, callback = self._queue[0]
                if until is not None and when > until:
                    self._now = until
                    break
                heapq.heappop(self._queue)
                self._now = when
                self.events_executed += 1
                callback()
        finally:
            self._running = False
        return self._now

    def peek(self) -> Optional[int]:
        """Time of the next queued event, or ``None`` if the queue is empty."""
        return self._queue[0][0] if self._queue else None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Engine(now={self._now}, pending={len(self._queue)})"


def ensure_engine(obj: Any) -> Engine:
    """Return ``obj`` if it is an :class:`Engine`, else raise.

    Used by components that accept either an engine or a larger system
    object exposing ``.engine``.
    """
    if isinstance(obj, Engine):
        return obj
    engine = getattr(obj, "engine", None)
    if isinstance(engine, Engine):
        return engine
    raise TypeError(f"expected an Engine (or object with .engine), got {obj!r}")
