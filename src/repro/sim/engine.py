"""The discrete-event engine: clock plus time-ordered callback queue.

The queue is three structures behind one deterministic ordering:

* a plain FIFO for zero-delay work — the majority of scheduling in the
  TCC model (event fan-out, process wakeups) happens at the current
  cycle, and a deque append/popleft is far cheaper than a heap push/pop;
* an optional calendar of ``calendar_horizon`` buckets for near-future
  events (``0 < delay < horizon``), each bucket an append-only list;
* a heapq for everything at or beyond the horizon (and for everything
  past the FIFO when the calendar is disabled).

Execution order is exactly the classic ``(cycle, seq)`` order of the
original single-heap kernel.  The proof rests on two invariants: the
global ``seq`` counter is monotone, and the clock only advances when
the FIFO is empty.  Hence every heap/bucket entry for cycle ``T`` was
created before the clock reached ``T`` and carries a smaller ``seq``
than any FIFO entry (which can only be created *at* ``T``); and a
bucket or heap entry for ``T`` can never be created during ``T``
because a positive delay lands strictly after ``T``.  So running all
heap/bucket entries for ``T`` merged by ``seq``, then draining the
FIFO in append order, reproduces the old kernel event for event.
"""

from __future__ import annotations

import heapq
from collections import deque
from typing import Any, Callable, Iterable, Optional


class SimulationError(RuntimeError):
    """Raised for kernel misuse (negative delays, running a dead engine)."""


class _NoValue:
    __slots__ = ()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "<no value>"


#: Sentinel meaning "call the function with no argument".  Lets hot
#: paths schedule bound methods plus one argument without allocating a
#: closure per event.
_NO_VALUE = _NoValue()


class Engine:
    """Event queue and simulated clock.

    The engine is deliberately tiny: it knows nothing about processes or
    hardware, it only runs ``(cycle, seq, callback)`` entries in
    deterministic order.  Higher layers (events, processes, resources)
    build on :meth:`schedule` / :meth:`schedule_call`.

    ``calendar_horizon`` enables the bucket front-end for delays in
    ``(0, horizon)``; zero (the default) routes every positive delay to
    the heap.  Either way the observable execution order is identical.
    """

    def __init__(self, calendar_horizon: int = 0) -> None:
        self._now: int = 0
        self._heap: list = []
        self._fifo: deque = deque()
        self._seq: int = 0
        self._running = False
        self._horizon = int(calendar_horizon)
        if self._horizon < 0:
            raise SimulationError("calendar_horizon must be >= 0")
        self._buckets: Optional[list] = (
            [[] for _ in range(self._horizon)] if self._horizon else None
        )
        self._bucket_count = 0
        # Diagnostic counters; cheap and useful for performance reports.
        self.events_executed: int = 0

    @property
    def now(self) -> int:
        """Current simulation time in cycles."""
        return self._now

    def schedule(self, delay: int, callback: Callable[[], None]) -> None:
        """Run ``callback()`` ``delay`` cycles from now.

        ``delay`` must be a non-negative integer; a zero delay runs the
        callback later in the current cycle, after already-queued work for
        this cycle.
        """
        self.schedule_call(delay, callback)

    def schedule_call(
        self, delay: int, fn: Callable, arg: Any = _NO_VALUE
    ) -> None:
        """Like :meth:`schedule`, but runs ``fn(arg)`` (or ``fn()`` when
        ``arg`` is omitted) without a per-event closure."""
        if delay < 0:
            raise SimulationError(f"cannot schedule {delay} cycles in the past")
        delay = int(delay)
        self._seq += 1
        if delay == 0:
            self._fifo.append((fn, arg))
        elif delay < self._horizon:
            self._buckets[(self._now + delay) % self._horizon].append(
                (self._now + delay, self._seq, fn, arg)
            )
            self._bucket_count += 1
        else:
            heapq.heappush(self._heap, (self._now + delay, self._seq, fn, arg))

    def schedule_many(
        self, delay: int, fns: Iterable[Callable], arg: Any = _NO_VALUE
    ) -> None:
        """Schedule a batch of callbacks at the same delay, preserving
        iteration order; each receives ``arg`` (or nothing)."""
        if delay < 0:
            raise SimulationError(f"cannot schedule {delay} cycles in the past")
        delay = int(delay)
        if delay == 0:
            append = self._fifo.append
            count = 0
            for fn in fns:
                append((fn, arg))
                count += 1
            self._seq += count
            return
        when = self._now + delay
        seq = self._seq
        if delay < self._horizon:
            bucket = self._buckets[when % self._horizon]
            for fn in fns:
                seq += 1
                bucket.append((when, seq, fn, arg))
            self._bucket_count += seq - self._seq
        else:
            heap = self._heap
            for fn in fns:
                seq += 1
                heapq.heappush(heap, (when, seq, fn, arg))
        self._seq = seq

    def _next_cycle(self) -> Optional[int]:
        """Earliest cycle with a pending bucket or heap entry (FIFO aside)."""
        candidate: Optional[int] = None
        if self._bucket_count:
            buckets = self._buckets
            horizon = self._horizon
            now = self._now
            # Every bucket entry targets a cycle in (now, now + horizon),
            # so scanning forward from now+1 finds the earliest one.
            for cycle in range(now + 1, now + horizon):
                if buckets[cycle % horizon]:
                    candidate = cycle
                    break
        if self._heap:
            top = self._heap[0][0]
            if candidate is None or top < candidate:
                candidate = top
        return candidate

    def run(self, until: Optional[int] = None) -> int:
        """Execute queued events; return the final simulation time.

        Runs until the queue drains (the clock stays at the last executed
        event) or until the clock would pass ``until`` (events at exactly
        ``until`` still execute, and the clock parks at ``until``).
        """
        if self._running:
            raise SimulationError("engine is already running (re-entrant run())")
        self._running = True
        executed = 0
        fifo = self._fifo
        heap = self._heap
        buckets = self._buckets
        horizon = self._horizon
        pop_fifo = fifo.popleft
        pop_heap = heapq.heappop
        no_value = _NO_VALUE
        try:
            if until is not None and self._now > until:
                # Pathological but defined: with pending events the old
                # kernel parked the (backward) clock at ``until`` without
                # executing anything.
                if fifo or heap or self._bucket_count:
                    self._now = until
                return self._now
            # Zero-delay work queued since the last run belongs to the
            # current cycle and precedes any clock advance.
            while fifo:
                fn, arg = pop_fifo()
                executed += 1
                if arg is no_value:
                    fn()
                else:
                    fn(arg)
            while True:
                cycle = self._next_cycle()
                if cycle is None:
                    break
                if until is not None and cycle > until:
                    self._now = until
                    break
                self._now = cycle
                bucket = buckets[cycle % horizon] if horizon else None
                if bucket:
                    # Merge the cycle's bucket entries (append order ==
                    # seq order) with its heap entries by seq.
                    self._bucket_count -= len(bucket)
                    index, length = 0, len(bucket)
                    while True:
                        heap_here = heap and heap[0][0] == cycle
                        if index < length and (
                            not heap_here or bucket[index][1] < heap[0][1]
                        ):
                            _, _, fn, arg = bucket[index]
                            index += 1
                        elif heap_here:
                            _, _, fn, arg = pop_heap(heap)
                        else:
                            break
                        executed += 1
                        if arg is no_value:
                            fn()
                        else:
                            fn(arg)
                    del bucket[:]
                else:
                    while heap and heap[0][0] == cycle:
                        _, _, fn, arg = pop_heap(heap)
                        executed += 1
                        if arg is no_value:
                            fn()
                        else:
                            fn(arg)
                # Zero-delay work spawned during this cycle runs after
                # every previously queued entry for the cycle (it carries
                # a larger seq by construction).
                while fifo:
                    fn, arg = pop_fifo()
                    executed += 1
                    if arg is no_value:
                        fn()
                    else:
                        fn(arg)
        finally:
            self.events_executed += executed
            self._running = False
        return self._now

    def peek(self) -> Optional[int]:
        """Time of the next queued event, or ``None`` if the queue is empty."""
        if self._fifo:
            return self._now
        return self._next_cycle()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        pending = len(self._fifo) + len(self._heap) + self._bucket_count
        return f"Engine(now={self._now}, pending={pending})"


def ensure_engine(obj: Any) -> Engine:
    """Return ``obj`` if it is an :class:`Engine`, else raise.

    Used by components that accept either an engine or a larger system
    object exposing ``.engine``.
    """
    if isinstance(obj, Engine):
        return obj
    engine = getattr(obj, "engine", None)
    if isinstance(engine, Engine):
        return engine
    raise TypeError(f"expected an Engine (or object with .engine), got {obj!r}")
