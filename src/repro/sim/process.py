"""Generator-based processes running on the engine."""

from __future__ import annotations

from typing import Any, Generator, Optional

from repro.sim.engine import Engine, SimulationError
from repro.sim.events import Event

ProcessGenerator = Generator[Optional[Event], Any, Any]


class Process(Event):
    """A simulated agent: a generator that yields events to wait on.

    The process itself is an :class:`Event` that fires when the generator
    returns, with the generator's return value — so processes can wait on
    each other (fork/join) just by yielding a child process.

    A generator may yield:

    * an :class:`Event` — the process resumes when it fires, and the
      ``yield`` expression evaluates to the event's value;
    * ``None`` — resume later in the same cycle (a cooperative yield).

    Exceptions raised inside the generator propagate out of the engine's
    ``run()`` — architectural bugs should crash the simulation loudly, not
    be swallowed.
    """

    __slots__ = ("generator", "name")

    def __init__(
        self,
        engine: Engine,
        generator: ProcessGenerator,
        name: str = "process",
    ) -> None:
        super().__init__(engine)
        if not hasattr(generator, "send"):
            raise SimulationError(
                f"Process needs a generator, got {type(generator).__name__}; "
                "did you call the function instead of passing its generator?"
            )
        self.generator = generator
        self.name = name
        engine.schedule_call(0, self._step, None)

    def _step(self, value: Any) -> None:
        try:
            target = self.generator.send(value)
        except StopIteration as stop:
            self.fire(stop.value)
            return
        if target is None:
            self.engine.schedule_call(0, self._step, None)
        elif isinstance(target, Event):
            target.subscribe(self._step)
        else:
            raise SimulationError(
                f"process {self.name!r} yielded {target!r}; "
                "processes may only yield Event instances or None"
            )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "done" if self.fired else "running"
        return f"Process({self.name!r}, {state})"
