"""Synchronization primitives built on events.

These model the *shared* hardware resources in the simulated machine:

* :class:`Resource` — a FIFO server with a fixed service occupancy; used
  for directory-controller and memory-port occupancy modelling.
* :class:`Barrier` — a reusable cyclic barrier; the workloads in the paper
  are barrier-structured (code between barriers becomes transactions).
* :class:`Store` — an unbounded FIFO of items with blocking ``get``; used
  for message queues whose consumer is a process.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Generator, Optional

from repro.sim.engine import Engine
from repro.sim.events import Event, Timeout


class Resource:
    """A single server with FIFO queueing.

    ``acquire()`` returns an event that fires when the caller holds the
    resource; the holder must call ``release()``.  ``busy_cycles``
    accumulates total held time, which is exactly the "occupancy" statistic
    Table 3 of the paper reports for directories.
    """

    def __init__(self, engine: Engine, name: str = "resource") -> None:
        self.engine = engine
        self.name = name
        self._held = False
        self._waiters: deque[Event] = deque()
        self._acquired_at = 0
        self.busy_cycles = 0
        self.total_acquisitions = 0

    @property
    def held(self) -> bool:
        return self._held

    @property
    def queue_length(self) -> int:
        return len(self._waiters)

    def acquire(self) -> Event:
        event = Event(self.engine)
        if not self._held:
            self._grant(event)
        else:
            self._waiters.append(event)
        return event

    def release(self) -> None:
        if not self._held:
            raise RuntimeError(f"release of un-held resource {self.name!r}")
        self._held = False
        self.busy_cycles += self.engine.now - self._acquired_at
        if self._waiters:
            self._grant(self._waiters.popleft())

    def _grant(self, event: Event) -> None:
        self._held = True
        self._acquired_at = self.engine.now
        self.total_acquisitions += 1
        event.fire(self)

    def use(self, cycles: int) -> Generator[Event, Any, None]:
        """Convenience process fragment: hold the resource for ``cycles``."""
        yield self.acquire()
        if cycles:
            yield Timeout(self.engine, cycles)
        self.release()


class Barrier:
    """A cyclic barrier across ``parties`` processes.

    ``wait()`` returns an event that fires when all parties have arrived;
    the barrier then resets for the next phase.  Arrival/release times are
    recorded so callers can attribute idle (load-imbalance) cycles the way
    Figure 6/7 of the paper do.
    """

    def __init__(self, engine: Engine, parties: int, name: str = "barrier") -> None:
        if parties < 1:
            raise ValueError("barrier needs at least one party")
        self.engine = engine
        self.parties = parties
        self.name = name
        self._waiting: list[Event] = []
        self.generations = 0

    def wait(self) -> Event:
        event = Event(self.engine)
        self._waiting.append(event)
        if len(self._waiting) == self.parties:
            waiting, self._waiting = self._waiting, []
            self.generations += 1
            for waiter in waiting:
                waiter.fire(self.generations)
        return event


class Store:
    """Unbounded FIFO with blocking ``get`` — a message mailbox."""

    def __init__(self, engine: Engine, name: str = "store") -> None:
        self.engine = engine
        self.name = name
        self._items: deque[Any] = deque()
        self._getters: deque[Event] = deque()

    def __len__(self) -> int:
        return len(self._items)

    def put(self, item: Any) -> None:
        if self._getters:
            self._getters.popleft().fire(item)
        else:
            self._items.append(item)

    def get(self) -> Event:
        event = Event(self.engine)
        if self._items:
            event.fire(self._items.popleft())
        else:
            self._getters.append(event)
        return event

    def peek(self) -> Optional[Any]:
        return self._items[0] if self._items else None
