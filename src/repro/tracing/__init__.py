"""Protocol-level event tracing and timeline visualization.

Enable with ``SystemConfig(event_log=True)``: the system then records a
structured log of protocol events (transaction boundaries, violations,
commit phases, directory actions) that can be filtered programmatically
or rendered as a per-processor ASCII timeline — the tool you want when
a protocol change misbehaves.
"""

from repro.tracing.eventlog import EventLog, ProtocolEvent
from repro.tracing.timeline import render_timeline

__all__ = ["EventLog", "ProtocolEvent", "render_timeline"]
