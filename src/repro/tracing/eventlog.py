"""Structured protocol event log."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Optional

#: Event categories emitted by the instrumented system.
CATEGORIES = (
    "tx_start",      # processor begins a transaction attempt
    "tx_commit",     # attempt committed (fields: tid, tx)
    "tx_abort",      # attempt violated and rolled back (fields: tx)
    "violation",     # the invalidation that killed an attempt
    "load_miss",     # remote load issued (fields: line, home)
    "load_retry",    # load/invalidate race retry (fields: line)
    "commit_start",  # commit phase entered (fields: tx)
    "validated",     # commit validated (fields: tid)
    "dir_commit",    # directory finished applying a commit (fields: tid)
    "dir_abort",     # directory gang-cleared marks (fields: tid)
    "writeback",     # directory accepted or dropped a write-back
    "fault",         # injected packet fault (fields: kind, msg, dst)
    "retry",         # hardened protocol re-sent a request (fields: msg)
    "stale",         # duplicate/stale protocol message ignored
    "watchdog",      # progress watchdog diagnostic (fields: kind, ...)
)


@dataclass(slots=True)
class ProtocolEvent:
    """One logged protocol event."""

    time: int
    category: str
    node: int
    fields: Dict[str, Any] = field(default_factory=dict)

    def __str__(self) -> str:
        details = " ".join(f"{k}={v}" for k, v in self.fields.items())
        return f"{self.time:>8}  {self.category:<12} node={self.node} {details}"


class EventLog:
    """Append-only event store with filtering and rendering."""

    def __init__(self, capacity: int = 200_000) -> None:
        self.capacity = capacity
        self.events: List[ProtocolEvent] = []
        self.dropped = 0

    def log(self, time: int, category: str, node: int, **fields: Any) -> None:
        if category not in CATEGORIES:
            raise ValueError(f"unknown event category {category!r}")
        if len(self.events) >= self.capacity:
            self.dropped += 1
            return
        self.events.append(ProtocolEvent(time, category, node, fields))

    def __len__(self) -> int:
        return len(self.events)

    def select(
        self,
        category: Optional[str] = None,
        node: Optional[int] = None,
        **field_filters: Any,
    ) -> Iterator[ProtocolEvent]:
        """Events matching all the given criteria, in time order."""
        for event in self.events:
            if category is not None and event.category != category:
                continue
            if node is not None and event.node != node:
                continue
            if any(event.fields.get(k) != v for k, v in field_filters.items()):
                continue
            yield event

    def counts(self) -> Dict[str, int]:
        totals: Dict[str, int] = {}
        for event in self.events:
            totals[event.category] = totals.get(event.category, 0) + 1
        return totals

    def render(self, limit: int = 50, **filters: Any) -> str:
        """A plain-text dump of the (filtered) first ``limit`` events."""
        lines = [str(e) for i, e in enumerate(self.select(**filters)) if i < limit]
        suffix = [] if len(lines) < limit else ["  ..."]
        return "\n".join(lines + suffix)
