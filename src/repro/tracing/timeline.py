"""ASCII per-processor transaction timeline.

Renders an event log as one lane per processor with a character per
time bucket:

    P0 |=====C..====C=======V===C|
    P1 |====C====C...=====C======|

``=`` executing, ``C`` commit completed in the bucket, ``V`` violation,
``.`` idle.  Good enough to *see* serialization, violation storms, and
barrier convoys at a glance.
"""

from __future__ import annotations

from typing import Dict, List

from repro.tracing.eventlog import EventLog

EXEC = "="
COMMIT = "C"
VIOLATION = "V"
IDLE = "."


def render_timeline(
    log: EventLog,
    n_procs: int,
    width: int = 100,
    end_time: int = 0,
) -> str:
    """Render one lane per processor over ``width`` time buckets."""
    if not log.events and not end_time:
        return "(no events)"
    horizon = end_time or max(e.time for e in log.events) + 1
    bucket = max(1, (horizon + width - 1) // width)
    lanes: List[List[str]] = [[IDLE] * width for _ in range(n_procs)]

    # Mark execution spans from tx_start to the matching commit/abort.
    open_start: Dict[int, int] = {}
    for event in log.events:
        node = event.node
        if node >= n_procs:
            continue
        slot = min(width - 1, event.time // bucket)
        lane = lanes[node]
        if event.category == "tx_start":
            open_start[node] = slot
        elif event.category in ("tx_commit", "tx_abort"):
            start = open_start.pop(node, slot)
            for i in range(start, slot + 1):
                if lane[i] == IDLE:
                    lane[i] = EXEC
            marker = COMMIT if event.category == "tx_commit" else VIOLATION
            lane[slot] = marker
        elif event.category == "violation":
            lane[slot] = VIOLATION

    header = (
        f"timeline: {horizon:,} cycles, {bucket:,} cycles/char "
        f"({EXEC} exec, {COMMIT} commit, {VIOLATION} violation, {IDLE} idle)"
    )
    rows = [header]
    for node, lane in enumerate(lanes):
        rows.append(f"P{node:<3}|{''.join(lane)}|")
    return "\n".join(rows)
