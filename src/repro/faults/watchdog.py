"""Engine-level progress watchdog.

A hang is the one failure mode a discrete-event simulator cannot shrug
off: with retry timers in play the event queue never drains, so a
wedged protocol spins forever instead of hitting the old
``SimulationTimeout`` deadlock diagnosis.  The watchdog samples global
progress (machine-wide committed transactions) every
``watchdog_interval`` cycles; after ``watchdog_stall_checks``
consecutive flat samples while work remains it raises
:class:`WatchdogStall` carrying a structured snapshot of every
processor, directory, and the TID vendor — turning a hang into a
diagnosis.

It also watches per-transaction livelock: a processor whose
consecutive-violation count reaches ``livelock_abort_threshold`` gets a
structured ``watchdog`` event in the trace (once per episode) and a
``livelock_episodes`` tick in the fault stats.  Livelock is *reported*,
not raised — TID retention is the protocol's own cure, and the paper's
claim is precisely that retained transactions eventually win; the
global stall check still fires if they do not.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Set


class WatchdogStall(RuntimeError):
    """No global progress for the configured window; ``report`` has the
    full machine snapshot (also rendered into the message)."""

    def __init__(self, message: str, report: Dict[str, Any]) -> None:
        super().__init__(message)
        self.report = report


def _snapshot(system: Any) -> Dict[str, Any]:
    """A structured picture of where every protocol actor is stuck."""
    processors = []
    for proc in system.processors:
        processors.append({
            "node": proc.node,
            "finished": proc.finished,
            "in_transaction": proc.in_transaction,
            "current_tid": proc.current_tid,
            "validated": proc.validated,
            "retained": proc.retained,
            "consecutive_violations": proc._consecutive_violations,
            "committed": proc.stats.committed_transactions,
            "violations": proc.stats.violations,
        })
    directories = []
    for directory in system.directories:
        active = directory._active_commit
        directories.append({
            "node": directory.node,
            "nstid": directory.nstid,
            "active_commit_tid": active.tid if active else None,
            "pending_probes": len(directory._pending_probes),
            "stalled_loads": sum(
                len(v) for v in directory._stalled_loads.values()
            ),
            "pending_forwards": sum(
                len(v) for v in directory._pending_forwards.values()
            ),
            "awaiting_words": sum(
                len(v) for v in directory._awaiting.values()
            ),
        })
    report: Dict[str, Any] = {
        "cycle": system.engine.now,
        "processors": processors,
        "directories": directories,
        "vendor_outstanding": system.vendor.outstanding,
        "vendor_highest_issued": system.vendor.highest_issued,
    }
    stats = getattr(system, "fault_stats", None)
    if stats is not None:
        report["fault_stats"] = stats.as_dict()
    return report


def format_stall_report(report: Dict[str, Any]) -> str:
    """Render the snapshot as the multi-line diagnostic users see."""
    lines = [f"cycle {report['cycle']}: no commit progress"]
    for proc in report["processors"]:
        if proc["finished"]:
            continue
        lines.append(
            f"  cpu {proc['node']}: tid={proc['current_tid']} "
            f"in_tx={proc['in_transaction']} validated={proc['validated']} "
            f"retained={proc['retained']} "
            f"consec_violations={proc['consecutive_violations']} "
            f"committed={proc['committed']}"
        )
    for d in report["directories"]:
        if (
            d["active_commit_tid"] is None
            and not d["pending_probes"]
            and not d["stalled_loads"]
            and not d["pending_forwards"]
            and not d["awaiting_words"]
        ):
            continue
        lines.append(
            f"  dir {d['node']}: nstid={d['nstid']} "
            f"active={d['active_commit_tid']} probes={d['pending_probes']} "
            f"stalled={d['stalled_loads']} forwards={d['pending_forwards']} "
            f"awaiting={d['awaiting_words']}"
        )
    if report["vendor_outstanding"]:
        lines.append(f"  vendor outstanding: {report['vendor_outstanding']}")
    if "fault_stats" in report:
        interesting = {
            k: v for k, v in report["fault_stats"].items() if v
        }
        lines.append(f"  fault stats: {interesting}")
    return "\n".join(lines)


class ProgressWatchdog:
    """Periodic progress sampler attached to one system run."""

    def __init__(self, system: Any, stats: Any = None) -> None:
        config = system.config
        self.system = system
        self.stats = stats
        self.interval = config.watchdog_interval
        self.stall_checks = config.watchdog_stall_checks
        self.livelock_threshold = config.livelock_abort_threshold
        self._last_commits = -1
        self._flat_ticks = 0
        self._livelocked: Set[int] = set()
        self.event_log = system.events

    def start(self) -> None:
        self.system.engine.schedule_call(self.interval, self._tick)

    def _tick(self) -> None:
        system = self.system
        if all(proc.finished for proc in system.processors):
            return  # done; stop ticking so the queue can drain
        self._check_livelock()
        commits = sum(
            proc.stats.committed_transactions for proc in system.processors
        )
        if commits > self._last_commits:
            self._last_commits = commits
            self._flat_ticks = 0
        else:
            self._flat_ticks += 1
            if self._flat_ticks >= self.stall_checks:
                report = _snapshot(system)
                if self.event_log is not None:
                    self.event_log.log(
                        system.engine.now, "watchdog", -1,
                        kind="stall", commits=commits,
                        window=self.interval * self._flat_ticks,
                    )
                raise WatchdogStall(
                    f"watchdog: no commit for "
                    f"{self.interval * self._flat_ticks} cycles\n"
                    + format_stall_report(report),
                    report,
                )
        system.engine.schedule_call(self.interval, self._tick)

    def _check_livelock(self) -> None:
        for proc in self.system.processors:
            count = proc._consecutive_violations
            if count >= self.livelock_threshold:
                if proc.node not in self._livelocked:
                    self._livelocked.add(proc.node)
                    if self.stats is not None:
                        self.stats.livelock_episodes += 1
                    if self.event_log is not None:
                        self.event_log.log(
                            self.system.engine.now, "watchdog", proc.node,
                            kind="livelock", aborts=count,
                            tid=proc.current_tid, retained=proc.retained,
                        )
            else:
                self._livelocked.discard(proc.node)
