"""Chaos harness: fuzz workloads under randomized fault plans.

Each case draws a random :class:`~repro.faults.plan.FaultPlan` (drops,
duplicates, delays, reorders, directory stalls, CPU pauses) and a small
high-contention workload, runs the hardened protocol to completion, and
checks the full correctness stack:

* the run *terminates* (the watchdog turns any hang into a
  :class:`~repro.faults.watchdog.WatchdogStall` diagnosis);
* serial-replay serializability (``verify=True``);
* system invariants (checked inside ``run()``);
* workload-level postconditions — exact counter values and committed
  transaction counts.

Everything is seeded: case ``i`` of a campaign is ``Random(seed0 + i)``
all the way down, so any failure line can be replayed with
``run_case(make_case(seed))``.

This module is intentionally *not* imported from ``repro.faults`` —
it imports the top-level ``repro`` package, which would cycle through
``repro.core.config`` → ``repro.faults.plan``.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Optional

from repro.core.config import SystemConfig
from repro.core.system import ScalableTCCSystem, SimulationTimeout
from repro.faults.plan import FaultPlan, NodeFault, PacketFault
from repro.faults.watchdog import WatchdogStall
from repro.workloads.base import Transaction, Workload
from repro.workloads.tm_patterns import ListSetWorkload, QueueWorkload

#: Hard backstop so a watchdog bug cannot hang the harness itself.
MAX_CYCLES = 50_000_000


class HotCounterWorkload(Workload):
    """Every processor increments one shared counter: maximal conflict,
    and the postcondition (counter == total increments) catches any
    lost or double-applied commit."""

    name = "hot-counter"

    def __init__(self, per_proc: int = 6, compute: int = 3) -> None:
        self.per_proc = per_proc
        self.compute = compute

    def schedule(self, proc: int, n_procs: int) -> Iterator:
        return iter(
            Transaction(proc * 100 + i, [("c", self.compute), ("add", 0, 1)])
            for i in range(self.per_proc)
        )


def random_fault_plan(seed: int, n_nodes: int) -> FaultPlan:
    """A bounded-hostility random plan: enough faults to exercise every
    hardening path, probabilities capped so runs still terminate fast."""
    rng = random.Random(seed)
    packet_faults: List[PacketFault] = []
    for _ in range(rng.randint(1, 3)):
        kind = rng.choice(("drop", "dup", "delay", "reorder"))
        classes = ()
        if rng.random() < 0.4:
            classes = tuple(
                rng.sample(("commit", "miss", "writeback"), rng.randint(1, 2))
            )
        packet_faults.append(PacketFault(
            kind,
            probability=round(rng.uniform(0.01, 0.10), 4),
            traffic_classes=classes,
            delay=rng.randrange(50, 400),
        ))
    node_faults: List[NodeFault] = []
    if rng.random() < 0.5:
        node_faults.append(NodeFault(
            "dir_stall", rng.randrange(n_nodes),
            start_cycle=rng.randrange(0, 4000),
            duration=rng.randrange(500, 4000),
        ))
    if rng.random() < 0.5:
        node_faults.append(NodeFault(
            "cpu_pause", rng.randrange(n_nodes),
            start_cycle=rng.randrange(0, 4000),
            duration=rng.randrange(500, 4000),
        ))
    return FaultPlan(
        packet_faults=tuple(packet_faults),
        node_faults=tuple(node_faults),
        seed=seed,
    )


@dataclass
class ChaosCase:
    """One replayable chaos run: workload + machine + fault plan."""

    seed: int
    workload_name: str
    n_processors: int
    expected_commits: int
    expected_counter: Optional[int]  # hot-counter only
    plan: FaultPlan
    #: Run with SystemConfig(paranoid=True): check the machine-wide
    #: protocol invariants (I1-I5) between engine slices.  Passive — the
    #: simulated event stream is bit-identical either way.
    paranoid: bool = False

    def build_workload(self) -> Workload:
        if self.workload_name == "hot-counter":
            return HotCounterWorkload(per_proc=6)
        if self.workload_name == "list-set":
            return ListSetWorkload(list_length=10, ops_per_proc=4,
                                   insert_ratio=0.5, seed=self.seed)
        if self.workload_name == "queue":
            return QueueWorkload(ops_per_proc=4, compute=10, seed=self.seed)
        raise ValueError(f"unknown chaos workload {self.workload_name!r}")

    def build_config(self) -> SystemConfig:
        return SystemConfig(
            n_processors=self.n_processors,
            seed=self.seed,
            ordered_network=False,
            fault_plan=self.plan,
            paranoid=self.paranoid,
            # Small workloads: tighten the watchdog so a genuine wedge is
            # diagnosed in seconds, not simulated megacycles.
            watchdog_interval=25_000,
            watchdog_stall_checks=4,
        )


def make_case(seed: int, paranoid: bool = False) -> ChaosCase:
    """Deterministically derive case ``seed`` (workload, size, plan)."""
    rng = random.Random(seed * 0x9E3779B9 + 1)
    workload_name = rng.choice(("hot-counter", "list-set", "queue"))
    n_procs = rng.choice((4, 4, 6, 8))
    if workload_name == "hot-counter":
        expected = n_procs * 6
        counter = n_procs * 6
    else:
        expected = n_procs * 4
        counter = None
    return ChaosCase(
        seed=seed,
        workload_name=workload_name,
        n_processors=n_procs,
        expected_commits=expected,
        expected_counter=counter,
        plan=random_fault_plan(seed, n_procs),
        paranoid=paranoid,
    )


@dataclass
class CaseResult:
    """Outcome of one chaos run."""

    seed: int
    workload: str
    n_processors: int
    outcome: str  # "ok" | "stall" | "timeout" | "check-failed" | "error"
    detail: str = ""
    cycles: int = 0
    committed: int = 0
    violations: int = 0
    fault_stats: Dict[str, int] = field(default_factory=dict)
    wall_seconds: float = 0.0

    @property
    def ok(self) -> bool:
        return self.outcome == "ok"

    def as_dict(self) -> Dict[str, Any]:
        return {
            "seed": self.seed,
            "workload": self.workload,
            "n_processors": self.n_processors,
            "outcome": self.outcome,
            "detail": self.detail,
            "cycles": self.cycles,
            "committed": self.committed,
            "violations": self.violations,
            "fault_stats": dict(self.fault_stats),
            "wall_seconds": self.wall_seconds,
        }


def run_case(case: ChaosCase) -> CaseResult:
    """Run one case; every failure mode becomes a structured outcome."""
    start = time.perf_counter()
    result = CaseResult(case.seed, case.workload_name, case.n_processors,
                        outcome="ok")
    system = ScalableTCCSystem(case.build_config())
    try:
        run = system.run(case.build_workload(), max_cycles=MAX_CYCLES,
                         verify=True)
    except WatchdogStall as exc:
        result.outcome = "stall"
        result.detail = str(exc).splitlines()[0]
        result.cycles = exc.report.get("cycle", system.engine.now)
    except SimulationTimeout as exc:
        result.outcome = "timeout"
        result.detail = str(exc)
        result.cycles = system.engine.now
    except Exception as exc:  # serializability / invariant / protocol
        result.outcome = "error"
        result.detail = f"{type(exc).__name__}: {exc}".splitlines()[0]
        result.cycles = system.engine.now
    else:
        result.cycles = run.cycles
        result.committed = run.committed_transactions
        result.violations = run.total_violations
        if run.fault_stats is not None:
            result.fault_stats = run.fault_stats.as_dict()
        failures = []
        if run.committed_transactions != case.expected_commits:
            failures.append(
                f"committed {run.committed_transactions}, "
                f"expected {case.expected_commits}"
            )
        if case.expected_counter is not None:
            counter = run.memory_image.get(0, [0])[0]
            if counter != case.expected_counter:
                failures.append(
                    f"counter {counter}, expected {case.expected_counter}"
                )
        if failures:
            result.outcome = "check-failed"
            result.detail = "; ".join(failures)
    if system.fault_stats is not None and not result.fault_stats:
        result.fault_stats = system.fault_stats.as_dict()
    result.wall_seconds = time.perf_counter() - start
    return result


def run_chaos(
    cases: int = 200,
    seed0: int = 0,
    progress=None,
    jobs: Optional[int] = 1,
    cache=None,
    full: bool = False,
    paranoid: bool = False,
) -> Dict[str, Any]:
    """Run a campaign of ``cases`` seeded chaos runs; return a report.

    Cases are independent (case ``i`` is a pure function of
    ``seed0 + i``), so ``jobs`` > 1 (or None for all cores) fans them
    out over the :mod:`repro.runner` process pool and ``cache``
    memoizes case outcomes on disk — a warm re-run of an unchanged
    campaign replays from cache in milliseconds (cached cases report
    ``wall_seconds`` 0).  A crashed worker is retried on a fresh
    process and then quarantined as an ``error`` case rather than
    killing the campaign.

    The report carries the summary, the failures, and the runner/cache
    accounting; the full per-case ``results`` list (25k lines of JSON
    for a 1000-case campaign) is included only with ``full=True``.
    """
    from repro.runner import JobSpec, run_jobs

    # paranoid rides in workload_args so it reaches the worker-side
    # make_case() *and* keys the cache (a paranoid pass must not be
    # satisfied by a cached non-paranoid run).
    case_args = {"paranoid": True} if paranoid else None
    specs = [JobSpec(kind="chaos", seed=seed0 + i, workload_args=case_args,
                     label=f"chaos {seed0 + i}")
             for i in range(cases)]

    results: List[CaseResult] = [None] * cases  # type: ignore[list-item]

    def on_outcome(outcome) -> None:
        if outcome.ok:
            data = dict(outcome.payload["case"])
            if outcome.cached:
                data["wall_seconds"] = 0.0
        else:
            # Infrastructure failure (e.g. a quarantined worker crash):
            # surface it as a structured case failure, not an exception.
            data = CaseResult(
                specs[outcome.index].seed, "unknown", 0,
                outcome="error", detail=outcome.error,
            ).as_dict()
        case_result = CaseResult(**data)
        results[outcome.index] = case_result
        if progress is not None:
            progress(case_result)

    _, stats = run_jobs(specs, jobs=jobs, cache=cache, progress=on_outcome)

    failures = [r for r in results if not r.ok]
    totals: Dict[str, int] = {}
    outcome_counts: Dict[str, int] = {}
    for r in results:
        outcome_counts[r.outcome] = outcome_counts.get(r.outcome, 0) + 1
        for key, value in r.fault_stats.items():
            totals[key] = totals.get(key, 0) + value
    report = {
        "cases": cases,
        "seed0": seed0,
        "passed": len(results) - len(failures),
        "failed": len(failures),
        "outcome_counts": outcome_counts,
        "failures": [r.as_dict() for r in failures],
        "fault_totals": totals,
        "wall_seconds": sum(r.wall_seconds for r in results),
        "runner": stats.as_dict(),
    }
    if full:
        report["results"] = [r.as_dict() for r in results]
    return report


def format_report(report: Dict[str, Any]) -> str:
    """Render a campaign report for the terminal."""
    lines = [
        f"chaos: {report['passed']}/{report['cases']} passed "
        f"(seeds {report['seed0']}..{report['seed0'] + report['cases'] - 1}, "
        f"{report['wall_seconds']:.1f}s)"
    ]
    totals = {k: v for k, v in sorted(report["fault_totals"].items()) if v}
    if totals:
        lines.append("  faults injected: " + "  ".join(
            f"{k}={v}" for k, v in totals.items()
        ))
    runner = report.get("runner")
    if runner:
        line = (f"  runner: {runner['jobs']} worker(s), "
                f"{runner['executed']} executed, "
                f"{runner['from_cache']} from cache, "
                f"{runner['wall_s']:.2f}s elapsed")
        if runner.get("cache"):
            cache = runner["cache"]
            line += (f"; cache {cache['hits']} hit / {cache['misses']} miss"
                     f" / {cache['invalidations']} stale")
        lines.append(line)
    for failure in report["failures"]:
        lines.append(
            f"  FAIL seed={failure['seed']} {failure['workload']}"
            f"@{failure['n_processors']}: {failure['outcome']} "
            f"({failure['detail']}) — replay: "
            f"run_case(make_case({failure['seed']}))"
        )
    if not report["failures"]:
        lines.append(
            "  zero hangs, zero serializability violations, "
            "zero invariant failures"
        )
    return "\n".join(lines)
