"""The fault injector: applies a :class:`~repro.faults.plan.FaultPlan`
to the interconnect and the node models.

The interconnect hands every outbound packet (with its fault-free
delivery delay) to :meth:`FaultInjector.dispatch`, which draws from the
plan-seeded PRNG and either delivers the packet normally, drops it
(retryable messages only — otherwise the drop is downgraded to a
delay), delivers it twice, delays it, or holds it so a later packet on
the same rule overtakes it.  All decisions are deterministic functions
of (plan seed, packet order), so every faulty run replays exactly.

When the interconnect has no injector attached, no code here runs at
all — the fault-free event stream, RNG draws, and timings are
bit-identical to a build without this module.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from random import Random
from typing import Any, Dict, List, Optional, Tuple

from repro.faults.plan import FaultPlan

#: Mixed into the plan seed so the fault stream never aliases the
#: interconnect's jitter stream even when both use the same seed value.
_SEED_SALT = 0x9E3779B97F4A7C15


@dataclass
class FaultStats:
    """What the injector (and the hardened protocol) actually did."""

    packets_seen: int = 0
    drops: int = 0
    downgraded_drops: int = 0  # drop chosen for a non-retryable message
    duplicates: int = 0
    delays: int = 0
    reorders: int = 0
    reorder_backstops: int = 0  # held packets released by timeout, not overtake
    retries: int = 0            # end-to-end resends by the hardened protocol
    stale_drops: int = 0        # duplicate/stale protocol messages ignored
    dir_stall_cycles: int = 0
    cpu_pause_cycles: int = 0
    livelock_episodes: int = 0

    def as_dict(self) -> Dict[str, int]:
        return {
            "packets_seen": self.packets_seen,
            "drops": self.drops,
            "downgraded_drops": self.downgraded_drops,
            "duplicates": self.duplicates,
            "delays": self.delays,
            "reorders": self.reorders,
            "reorder_backstops": self.reorder_backstops,
            "retries": self.retries,
            "stale_drops": self.stale_drops,
            "dir_stall_cycles": self.dir_stall_cycles,
            "cpu_pause_cycles": self.cpu_pause_cycles,
            "livelock_episodes": self.livelock_episodes,
        }

    @property
    def injected_total(self) -> int:
        return (
            self.drops + self.downgraded_drops + self.duplicates
            + self.delays + self.reorders
        )


class FaultInjector:
    """Executes a fault plan against one simulated machine."""

    def __init__(
        self,
        plan: FaultPlan,
        n_nodes: int,
        stats: Optional[FaultStats] = None,
        event_log: Any = None,
    ) -> None:
        self.plan = plan
        self.n_nodes = n_nodes
        self.stats = stats if stats is not None else FaultStats()
        self.event_log = event_log
        self._rng = Random((plan.seed << 20) ^ _SEED_SALT)
        # Per-rule held packet for "reorder": (packet, engine, deliver).
        self._held: Dict[int, Tuple[Any, Any, Any]] = {}
        # Per-node stall/pause windows, precomputed and sorted by start.
        self._dir_windows = {
            node: sorted(plan.node_windows("dir_stall", node))
            for node in range(n_nodes)
            if plan.node_windows("dir_stall", node)
        }
        self._cpu_windows = {
            node: sorted(plan.node_windows("cpu_pause", node))
            for node in range(n_nodes)
            if plan.node_windows("cpu_pause", node)
        }

    # ------------------------------------------------------------------
    # packet faults
    # ------------------------------------------------------------------

    def dispatch(self, engine: Any, deliver: Any, packet: Any, delay: int) -> None:
        """Deliver ``packet`` subject to the plan's packet faults.

        ``deliver`` is the interconnect's delivery callback; the injector
        owns all scheduling so drops never enter the event queue at all.
        """
        stats = self.stats
        stats.packets_seen += 1
        now = engine.now
        action: Optional[str] = None
        rule_index = -1
        rule = None
        for index, candidate in enumerate(self.plan.packet_faults):
            if not candidate.matches(
                packet.src, packet.dst, packet.traffic_class, now
            ):
                continue
            if self._rng.random() < candidate.probability:
                action, rule, rule_index = candidate.kind, candidate, index
                break
        if action is None:
            engine.schedule_call(delay, deliver, packet)
            return

        if action == "drop" and not getattr(type(packet.payload), "retryable", False):
            # No end-to-end retry protects this message; model link-level
            # retransmission instead of loss.
            action = "delay"
            stats.downgraded_drops += 1

        if action == "drop":
            stats.drops += 1
            self._log(now, "fault", packet, kind="drop")
            return
        if action == "delay":
            extra = 1 + self._rng.randrange(rule.delay)
            stats.delays += 1
            self._log(now, "fault", packet, kind="delay", extra=extra)
            packet.deliver_time = now + delay + extra
            engine.schedule_call(delay + extra, deliver, packet)
            return
        if action == "dup":
            extra = 1 + self._rng.randrange(rule.delay)
            stats.duplicates += 1
            self._log(now, "fault", packet, kind="dup", extra=extra)
            engine.schedule_call(delay, deliver, packet)
            engine.schedule_call(delay + extra, deliver, packet)
            return
        # reorder: hold this packet; the next packet matching the same
        # rule overtakes it (the held one lands just after).  A backstop
        # timer bounds the hold so held packets are never lost.
        stats.reorders += 1
        self._log(now, "fault", packet, kind="reorder")
        previous = self._held.pop(rule_index, None)
        self._held[rule_index] = (packet, now + delay, now + rule.delay)
        engine.schedule_call(
            rule.delay, self._release_backstop, (rule_index, packet, deliver, engine)
        )
        if previous is not None:
            held_packet, held_deliver_at, _ = previous
            release_at = max(held_deliver_at, now + delay + 1)
            held_packet.deliver_time = release_at
            engine.schedule_call(release_at - now, deliver, held_packet)

    def _release_backstop(self, args: Tuple) -> None:
        rule_index, packet, deliver, engine = args
        held = self._held.get(rule_index)
        if held is None or held[0] is not packet:
            return  # already released by an overtaking packet
        del self._held[rule_index]
        self.stats.reorder_backstops += 1
        packet.deliver_time = engine.now
        deliver(packet)

    def flush_held(self, engine: Any, deliver: Any) -> None:
        """Deliver any still-held packets immediately (end-of-run safety)."""
        held, self._held = self._held, {}
        for _rule_index, (packet, _deliver_at, _backstop) in sorted(held.items()):
            packet.deliver_time = engine.now
            deliver(packet)

    # ------------------------------------------------------------------
    # node faults
    # ------------------------------------------------------------------

    @staticmethod
    def _pause_in(windows: List[Tuple[int, int]], now: int) -> int:
        pause = 0
        for start, end in windows:
            if start <= now < end:
                pause = max(pause, end - now)
        return pause

    def dir_stall_pause(self, node: int, now: int) -> int:
        """Remaining stall cycles if the node's directory is down at ``now``."""
        windows = self._dir_windows.get(node)
        if not windows:
            return 0
        pause = self._pause_in(windows, now)
        if pause:
            self.stats.dir_stall_cycles += pause
        return pause

    def cpu_pause(self, node: int, now: int) -> int:
        """Remaining pause cycles if the node's processor is down at ``now``."""
        windows = self._cpu_windows.get(node)
        if not windows:
            return 0
        pause = self._pause_in(windows, now)
        if pause:
            self.stats.cpu_pause_cycles += pause
        return pause

    @property
    def has_dir_stalls(self) -> bool:
        return bool(self._dir_windows)

    @property
    def has_cpu_pauses(self) -> bool:
        return bool(self._cpu_windows)

    # ------------------------------------------------------------------

    def _log(self, now: int, category: str, packet: Any, **fields: Any) -> None:
        if self.event_log is not None:
            self.event_log.log(
                now, category, packet.src, dst=packet.dst,
                msg=type(packet.payload).__name__, **fields,
            )
