"""Declarative fault plans: what the fabric and nodes get wrong, when.

A :class:`FaultPlan` is a frozen, fully-validated description of the
faults one run injects — packet faults (drop / duplicate / delay /
reorder, filtered by traffic class, endpoint, and cycle window) and
node faults (directory stall, processor pause).  The plan itself holds
no mutable state; the :class:`~repro.faults.injector.FaultInjector`
draws every probabilistic decision from a PRNG seeded by ``plan.seed``,
so a (plan, workload, config) triple always replays the exact same
faulty execution — failures found by the chaos harness reproduce from
their seed alone.

Drops only apply to messages the protocol can recover end-to-end
(``retryable = True`` on the message class: loads, TID traffic, skips,
probes, marks, commits, aborts and their acks).  A drop selected for
any other message (invalidations, write-backs, flush requests) is
downgraded to a delay: the model is a fabric with link-level
retransmission, where loss shows up as latency for protected hop-level
traffic and as true end-to-end loss only where an end-to-end retry
exists to absorb it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Tuple

PACKET_FAULT_KINDS = ("drop", "dup", "delay", "reorder")
NODE_FAULT_KINDS = ("dir_stall", "cpu_pause")


@dataclass(frozen=True)
class PacketFault:
    """One probabilistic packet-level fault rule.

    Empty filter tuples match everything.  ``delay`` is the extra
    latency for ``delay`` faults, the lag of the second copy for
    ``dup`` faults, and the release backstop for ``reorder`` faults
    (a held packet is delivered at most ``delay`` cycles late even if
    no later packet arrives to overtake it).
    """

    kind: str
    probability: float
    traffic_classes: Tuple[str, ...] = ()
    src_nodes: Tuple[int, ...] = ()
    dst_nodes: Tuple[int, ...] = ()
    start_cycle: int = 0
    end_cycle: Optional[int] = None
    delay: int = 200

    def __post_init__(self) -> None:
        if self.kind not in PACKET_FAULT_KINDS:
            raise ValueError(
                f"packet fault kind must be one of {PACKET_FAULT_KINDS}, "
                f"got {self.kind!r}"
            )
        if not 0.0 <= self.probability <= 1.0:
            raise ValueError(
                f"fault probability must be in [0, 1], got {self.probability}"
            )
        if self.delay < 1:
            raise ValueError(f"fault delay must be >= 1 cycle, got {self.delay}")
        if self.start_cycle < 0:
            raise ValueError(f"start_cycle must be >= 0, got {self.start_cycle}")
        if self.end_cycle is not None and self.end_cycle <= self.start_cycle:
            raise ValueError(
                f"end_cycle ({self.end_cycle}) must be after "
                f"start_cycle ({self.start_cycle})"
            )

    def matches(self, src: int, dst: int, traffic_class: str, now: int) -> bool:
        if now < self.start_cycle:
            return False
        if self.end_cycle is not None and now >= self.end_cycle:
            return False
        if self.traffic_classes and traffic_class not in self.traffic_classes:
            return False
        if self.src_nodes and src not in self.src_nodes:
            return False
        if self.dst_nodes and dst not in self.dst_nodes:
            return False
        return True


@dataclass(frozen=True)
class NodeFault:
    """A node-level outage window: the component goes quiet, then resumes.

    ``dir_stall`` pauses the node's directory serve loop for any message
    it would handle inside the window; ``cpu_pause`` freezes the node's
    processor at its next transaction-attempt boundary inside the window.
    """

    kind: str
    node: int
    start_cycle: int
    duration: int

    def __post_init__(self) -> None:
        if self.kind not in NODE_FAULT_KINDS:
            raise ValueError(
                f"node fault kind must be one of {NODE_FAULT_KINDS}, "
                f"got {self.kind!r}"
            )
        if self.node < 0:
            raise ValueError(f"node must be >= 0, got {self.node}")
        if self.start_cycle < 0:
            raise ValueError(f"start_cycle must be >= 0, got {self.start_cycle}")
        if self.duration < 1:
            raise ValueError(f"duration must be >= 1 cycle, got {self.duration}")

    @property
    def end_cycle(self) -> int:
        return self.start_cycle + self.duration


@dataclass(frozen=True)
class FaultPlan:
    """A reproducible set of faults for one simulation run."""

    packet_faults: Tuple[PacketFault, ...] = ()
    node_faults: Tuple[NodeFault, ...] = ()
    seed: int = 0

    def __post_init__(self) -> None:
        # Tolerate lists in hand-written plans; store canonical tuples so
        # the plan stays hashable and safe inside a frozen SystemConfig.
        if not isinstance(self.packet_faults, tuple):
            object.__setattr__(self, "packet_faults", tuple(self.packet_faults))
        if not isinstance(self.node_faults, tuple):
            object.__setattr__(self, "node_faults", tuple(self.node_faults))
        for rule in self.packet_faults:
            if not isinstance(rule, PacketFault):
                raise ValueError(f"packet_faults entries must be PacketFault, got {rule!r}")
        for rule in self.node_faults:
            if not isinstance(rule, NodeFault):
                raise ValueError(f"node_faults entries must be NodeFault, got {rule!r}")

    @property
    def empty(self) -> bool:
        return not self.packet_faults and not self.node_faults

    def node_windows(self, kind: str, node: int) -> Tuple[Tuple[int, int], ...]:
        """(start, end) windows of ``kind`` faults affecting ``node``."""
        return tuple(
            (f.start_cycle, f.end_cycle)
            for f in self.node_faults
            if f.kind == kind and f.node == node
        )

    def as_dict(self) -> dict:
        """JSON-able form (counterexample files pin plans explicitly)."""
        from dataclasses import asdict

        return {
            "packet_faults": [asdict(f) for f in self.packet_faults],
            "node_faults": [asdict(f) for f in self.node_faults],
            "seed": self.seed,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "FaultPlan":
        return cls(
            packet_faults=tuple(
                PacketFault(**{**f, "traffic_classes": tuple(f.get("traffic_classes", ())),
                               "src_nodes": tuple(f.get("src_nodes", ())),
                               "dst_nodes": tuple(f.get("dst_nodes", ()))})
                for f in data.get("packet_faults", ())
            ),
            node_faults=tuple(
                NodeFault(**f) for f in data.get("node_faults", ())
            ),
            seed=data.get("seed", 0),
        )

    def describe(self) -> str:
        """One line per rule, for chaos-harness reports."""
        lines = []
        for f in self.packet_faults:
            window = (
                f"[{f.start_cycle}, {'∞' if f.end_cycle is None else f.end_cycle})"
            )
            scope = ",".join(f.traffic_classes) or "any-class"
            lines.append(
                f"packet {f.kind:<7} p={f.probability:.2f} {scope} "
                f"src={list(f.src_nodes) or 'any'} dst={list(f.dst_nodes) or 'any'} "
                f"window={window} delay={f.delay}"
            )
        for f in self.node_faults:
            lines.append(
                f"node   {f.kind:<9} node={f.node} "
                f"cycles [{f.start_cycle}, {f.end_cycle})"
            )
        return "\n".join(lines) if lines else "(no faults)"
