"""Timeout-driven resend with capped exponential backoff.

The hardened protocol never blocks on a single delivery: every
commit-critical request (TID request, probe, mark, commit, load) gets a
:class:`Retrier` that re-sends it until a ``done`` predicate holds, and
every fire-and-forget broadcast that the protocol *depends* on for
global progress (skips, aborts) gets an :class:`AckTracker` that
re-sends to exactly the directories that have not acknowledged yet.

Both helpers live entirely in the event queue — the commit FSM keeps
its shape and simply observes acks arriving as usual.  Timers that
outlive their request degrade to no-ops (the ``done`` check runs before
any resend), so a quiesced system drains naturally.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Iterable, Optional, Set


class Retrier:
    """Re-send one request until ``done()`` returns True.

    The first check fires ``base_timeout`` cycles after creation; each
    retry doubles (``backoff``) the wait up to ``cap``.  There is no
    retry limit: the non-blocking guarantee wants eventual delivery, and
    the progress watchdog — not a give-up path — owns hang detection.
    """

    __slots__ = ("engine", "resend", "done", "timeout", "backoff", "cap",
                 "retries", "stats")

    def __init__(
        self,
        engine: Any,
        resend: Callable[[], None],
        done: Callable[[], bool],
        base_timeout: int,
        backoff: int,
        cap: int,
        stats: Any = None,
    ) -> None:
        self.engine = engine
        self.resend = resend
        self.done = done
        self.timeout = base_timeout
        self.backoff = backoff
        self.cap = cap
        self.retries = 0
        self.stats = stats
        engine.schedule_call(self.timeout, self._tick)

    def _tick(self) -> None:
        if self.done():
            return
        self.resend()
        self.retries += 1
        if self.stats is not None:
            self.stats.retries += 1
        self.timeout = min(self.cap, self.timeout * self.backoff)
        self.engine.schedule_call(self.timeout, self._tick)


class AckTracker:
    """Background re-send of a broadcast until every target acks.

    ``make_send(node)`` must (re)issue the message to one node.  The
    initial broadcast is the caller's job (it usually multicasts);
    the tracker only handles the retry tail.
    """

    __slots__ = ("pending", "_retrier")

    def __init__(
        self,
        engine: Any,
        targets: Iterable[int],
        make_send: Callable[[int], None],
        base_timeout: int,
        backoff: int,
        cap: int,
        stats: Any = None,
    ) -> None:
        self.pending: Set[int] = set(targets)

        def resend() -> None:
            for node in sorted(self.pending):
                make_send(node)

        self._retrier = Retrier(
            engine, resend, self.all_acked, base_timeout, backoff, cap, stats
        )

    def acked(self, node: int) -> None:
        self.pending.discard(node)

    def all_acked(self) -> bool:
        return not self.pending
