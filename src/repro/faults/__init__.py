"""Fault injection and resilience for the Scalable TCC simulator.

``repro.faults`` holds the machinery that lets the simulator prove the
paper's non-blocking claims on an *unreliable* fabric instead of a
perfect one: declarative fault plans (:mod:`repro.faults.plan`), the
deterministic injector the interconnect consults
(:mod:`repro.faults.injector`), the retry/ack helpers the hardened
protocol uses (:mod:`repro.faults.retry`), and the progress watchdog
that turns hangs into structured diagnostics
(:mod:`repro.faults.watchdog`).

The chaos harness lives in :mod:`repro.faults.chaos` but is *not*
imported here: it imports the top-level ``repro`` package, which would
close an import cycle through ``repro.core.config`` (config references
:class:`FaultPlan`).
"""

from repro.faults.injector import FaultInjector, FaultStats
from repro.faults.plan import (
    NODE_FAULT_KINDS,
    PACKET_FAULT_KINDS,
    FaultPlan,
    NodeFault,
    PacketFault,
)
from repro.faults.retry import AckTracker, Retrier
from repro.faults.watchdog import ProgressWatchdog, WatchdogStall, format_stall_report

__all__ = [
    "AckTracker",
    "FaultInjector",
    "FaultPlan",
    "FaultStats",
    "NODE_FAULT_KINDS",
    "NodeFault",
    "PACKET_FAULT_KINDS",
    "PacketFault",
    "ProgressWatchdog",
    "Retrier",
    "WatchdogStall",
    "format_stall_report",
]
