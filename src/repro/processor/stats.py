"""Per-processor statistics.

The cycle categories are exactly the five components of Figures 6 and 7:

* ``useful``    — cycles executing instructions that ultimately commit
  (compute plus cache-hit time);
* ``miss``      — stall cycles waiting for cache misses (of committed
  work);
* ``idle``      — barrier / synchronization wait;
* ``commit``    — the commit phase: TID acquisition, skips, probes,
  marks, commit messages and their acknowledgements;
* ``violation`` — everything spent on attempts that aborted, including
  their misses and any partial commit work.

Per-commit samples feed Table 3 (transaction sizes, read/write sets,
directories touched).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List


@dataclass
class ProcessorStats:
    """Counters and samples for one processor."""

    useful_cycles: int = 0
    miss_cycles: int = 0
    idle_cycles: int = 0
    commit_cycles: int = 0
    violation_cycles: int = 0

    committed_transactions: int = 0
    committed_instructions: int = 0
    violations: int = 0
    execution_violations: int = 0  # aborted before reaching the commit phase
    commit_violations: int = 0     # aborted during the commit phase
    load_retries: int = 0          # load/invalidate races resolved by retry
    tid_retentions: int = 0

    tx_instructions: List[int] = field(default_factory=list)
    write_set_bytes: List[int] = field(default_factory=list)
    read_set_bytes: List[int] = field(default_factory=list)
    dirs_touched: List[int] = field(default_factory=list)
    commit_wait: List[int] = field(default_factory=list)

    # Commit-phase sub-breakdown (scalable backend): the paper notes for
    # volrend that "the majority of the [commit] time is spent probing
    # directories"; these cycles let us show that directly.
    commit_tid_cycles: int = 0    # waiting for the TID vendor
    commit_probe_cycles: int = 0  # probing + marking until validated
    commit_ack_cycles: int = 0    # commit messages until all acks

    def commit_phase_breakdown(self) -> Dict[str, int]:
        return {
            "tid": self.commit_tid_cycles,
            "probe": self.commit_probe_cycles,
            "ack": self.commit_ack_cycles,
        }

    @property
    def busy_cycles(self) -> int:
        """All attributed (non-idle) cycles."""
        return (
            self.useful_cycles
            + self.miss_cycles
            + self.commit_cycles
            + self.violation_cycles
        )

    @property
    def total_cycles(self) -> int:
        return self.busy_cycles + self.idle_cycles

    def breakdown(self) -> Dict[str, int]:
        return {
            "useful": self.useful_cycles,
            "miss": self.miss_cycles,
            "idle": self.idle_cycles,
            "commit": self.commit_cycles,
            "violation": self.violation_cycles,
        }
