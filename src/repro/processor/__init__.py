"""TCC processors: transactional execution and the commit engines.

Each processor runs its workload schedule as one continuous sequence of
transactions (the TCC model: all code is inside some transaction),
buffering speculative state in its private cache hierarchy, rolling back
on violations, and committing through either the scalable directory
protocol or the small-scale token/bus baseline.
"""

from repro.processor.core import TCCProcessor
from repro.processor.stats import ProcessorStats

__all__ = ["ProcessorStats", "TCCProcessor"]
