"""The TCC processor model.

A processor executes its schedule of transactions over its private
speculative cache hierarchy.  Non-memory instructions and cache hits
accumulate in a local cycle counter that is flushed into simulated time
lazily (before any remote operation), so hits cost no simulator events.
Remote misses, the commit protocol, and barriers run through the
engine/network and can be interleaved with asynchronously delivered
coherence messages (invalidations, flush-data requests), which the
processor services immediately at delivery time — mirroring the hardware
communication assist.

Violation model (Section 3.3): an invalidation whose word flags overlap
the current transaction's speculatively-read or -modified words violates
the transaction iff the invalidation comes from a logically *earlier*
transaction — one whose TID is lower than ours, or any committer at all
if we have not yet acquired a TID.  Invalidations from logically later
transactions only invalidate the cached words.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

from repro.core.config import SystemConfig
from repro.core.messages import (
    AbortAck,
    CommitAck,
    FlushRequest,
    Invalidation,
    LoadReply,
    LoadRequest,
    MarkAck,
    ProbeReply,
    SkipAck,
    TidReply,
    WriteBackMsg,
)
from repro.faults.retry import Retrier
from repro.memory.address import AddressMap
from repro.memory.hierarchy import FLUSH_FIRST, PrivateHierarchy
from repro.network.interconnect import Interconnect
from repro.sim import Engine, Event, Process, Timeout
from repro.processor.stats import ProcessorStats
from repro.verify.serializability import CommitRecord
from repro.workloads.base import BARRIER, Transaction, TransactionSchedule


class ProcessorProtocolError(RuntimeError):
    """A processor-side protocol invariant was broken — always a bug."""


class TCCProcessor:
    """One node's CPU plus communication assist."""

    def __init__(
        self,
        node: int,
        engine: Engine,
        network: Interconnect,
        hierarchy: PrivateHierarchy,
        mapping: Any,
        amap: AddressMap,
        config: SystemConfig,
        system: Any,
    ) -> None:
        self.node = node
        self.engine = engine
        self.network = network
        self.hierarchy = hierarchy
        self.mapping = mapping
        self.amap = amap
        self.config = config
        self.system = system
        self.stats = ProcessorStats()

        # Transaction state
        self.in_transaction = False
        self.current_tid: Optional[int] = None
        self.latest_tid = 0
        self.violated = False
        self.validated = False
        self.retained = False
        self._consecutive_violations = 0
        #: Attempt counter, tagged onto marks/commits/aborts so the
        #: hardened directory can tell a live attempt's messages from a
        #: duplicated retry of an aborted one.  Maintained unconditionally
        #: (cheap); only *checked* when the protocol is hardened.
        self._attempt_id = 0

        # Hardened-protocol state (repro.faults): all inert when
        # ``config.protocol_hardened`` is False.
        self._hardened = config.protocol_hardened
        self._tid_seq = 0
        self._skip_trackers: Dict[int, Any] = {}
        self._abort_trackers: Dict[Tuple[int, int], Any] = {}
        self.fault_injector: Optional[Any] = None
        self.fault_stats: Optional[Any] = None

        # Execution-attempt accounting
        self._local_cycles = 0
        self._attempt_miss = 0
        self._attempt_useful = 0
        self._attempt_reads: List[Tuple[int, int, int]] = []

        # Flush-data requests deferred until the local commit completes
        self._deferred_flushes: List[FlushRequest] = []

        # Outstanding load state (single outstanding load: blocking core)
        self._load_seq = 0
        self._load_event: Optional[Event] = None
        self._load_line: Optional[int] = None
        self._load_home: Optional[int] = None
        self._load_poisoned = False

        # Commit-engine notification state
        self._wakeup: Optional[Event] = None
        self._tid_event: Optional[Event] = None
        self.probe_replies: Dict[Tuple[int, bool], int] = {}
        self.mark_acks: set[int] = set()
        self.commit_acks: set[int] = set()

        self.finished = False
        self.event_log = system.events if hasattr(system, "events") else None

        from repro.baseline.token import TokenCommitEngine
        from repro.processor.commit import ScalableCommitEngine

        if config.commit_backend == "token":
            self.commit_engine = TokenCommitEngine(self)
        else:
            self.commit_engine = ScalableCommitEngine(self)

    # ------------------------------------------------------------------
    # message ingress (synchronous, the communication assist)
    # ------------------------------------------------------------------

    def deliver(self, msg: Any) -> None:
        kind = type(msg)
        if kind is LoadReply:
            self._on_load_reply(msg)
        elif kind is Invalidation:
            self._on_invalidation(msg)
        elif kind is FlushRequest:
            self._on_flush_request(msg)
        elif kind is ProbeReply:
            self._on_probe_reply(msg)
        elif kind is MarkAck:
            if self._hardened and (
                msg.tid != self.current_tid or msg.attempt != self._attempt_id
            ):
                self._count_stale()
                return
            self.mark_acks.add(msg.directory)
            self._notify()
        elif kind is CommitAck:
            if self._hardened and msg.tid != self.current_tid:
                self._count_stale()
                return
            self.commit_acks.add(msg.directory)
            self._notify()
        elif kind is TidReply:
            self._on_tid_reply(msg)
        elif kind is SkipAck:
            tracker = self._skip_trackers.get(msg.tid)
            if tracker is not None:
                tracker.acked(msg.directory)
                if tracker.all_acked():
                    del self._skip_trackers[msg.tid]
        elif kind is AbortAck:
            tracker = self._abort_trackers.get((msg.tid, msg.attempt))
            if tracker is not None:
                tracker.acked(msg.directory)
                if tracker.all_acked():
                    del self._abort_trackers[(msg.tid, msg.attempt)]
        else:
            handled = self.commit_engine.deliver(msg)
            if not handled:
                raise ProcessorProtocolError(
                    f"cpu {self.node}: unexpected message {msg!r}"
                )

    def _on_tid_reply(self, msg: TidReply) -> None:
        event = self._tid_event
        if self._hardened and msg.seq != self._tid_seq:
            # A delayed reply to an *earlier*, retried request arriving
            # after its transaction already got (and resolved) that TID.
            # Consuming it here would hijack the current request's event
            # with a dead TID; the current reply carries the current seq.
            self._count_stale()
            return
        if event is None:
            if self._hardened:
                # Duplicate of an already-consumed reply (vendor dedup
                # guarantees a retried request carries the same TID).
                self._count_stale()
                return
            raise ProcessorProtocolError(f"cpu {self.node}: unsolicited TID {msg.tid}")
        self._tid_event = None
        event.fire(msg.tid)

    def _count_stale(self) -> None:
        if self.fault_stats is not None:
            self.fault_stats.stale_drops += 1

    def _on_probe_reply(self, msg: ProbeReply) -> None:
        if msg.tid != self.current_tid:
            return  # stale reply from an aborted attempt
        key = (msg.directory, msg.writing)
        self.probe_replies[key] = msg.nstid
        self._notify()

    def _on_load_reply(self, msg: LoadReply) -> None:
        if self._load_event is None or msg.seq != self._load_seq:
            return  # stale (e.g. a dropped/retried load)
        if self._load_poisoned:
            # An invalidation for this line raced past the reply: the data
            # may predate a commit we have been told about.  Drop and retry
            # (Section 3.3, last race).
            self._load_poisoned = False
            self._load_seq += 1
            self.stats.load_retries += 1
            if self.event_log is not None:
                self.event_log.log(self.engine.now, "load_retry", self.node,
                                   line=msg.line)
            self._send(
                self._load_home,
                # The resend is already covered end-to-end by the Retrier
                # armed at the original issue site: its closure reads the
                # live _load_seq, so it re-sends *this* request on timeout.
                # A second Retrier here would double-fire.
                LoadRequest(  # repro: allow[proto-retry-wrap] covered by issue-site Retrier
                    self.node, self._load_line, self._load_seq,
                ),
            )
            return
        event = self._load_event
        self._load_event = None
        self._load_line = None
        # Install the line *now*, atomically with reply processing: an
        # invalidation delivered after this instant sees the cached line
        # (and can violate us); one delivered before it poisoned the load.
        # Leaving the fill to the resumed process would open a window
        # where the invalidation sees neither.
        self._fill(msg.line, msg.data)
        event.fire(None)

    # -- invalidations --------------------------------------------------

    def _on_invalidation(self, inv: Invalidation) -> None:
        wb_words, wb_tid = self._apply_invalidation(
            inv.line, inv.word_mask, inv.tid, inv.committer
        )
        from repro.core.messages import InvAck

        self._send(
            inv.directory,
            InvAck(self.node, inv.line, inv.tid, wb_words, wb_tid),
        )

    def _apply_invalidation(
        self, line: int, word_mask: int, inv_tid: int, committer: int = -1
    ) -> Tuple[Optional[Dict[int, int]], int]:
        """Shared invalidation logic; returns write-back payload if the
        invalidated line held committed (owner) data."""
        entry = self.hierarchy.peek(line)
        wb_words: Optional[Dict[int, int]] = None
        wb_tid = self.latest_tid
        if self._hardened and entry is not None:
            # Words this cache wrote under a TID *later* than the
            # invalidation's commit are immune to it: that commit
            # serialized first, so our values subsume its writes.  A
            # duplicated or delayed invalidation from it must not clear
            # them (or flush ownership) — the words it would destroy can
            # be the only architectural copy of the line.  Words outside
            # the protected set are invalidated normally.
            protected = 0
            if (
                self.validated
                and self.current_tid is not None
                and self.current_tid > inv_tid
            ):
                protected |= entry.sm_mask
            if entry.dirty and entry.commit_tid > inv_tid:
                protected |= entry.commit_sm_mask
            stale_bits = word_mask & protected
            if stale_bits:
                self._count_stale()
                word_mask &= ~protected
                if not word_mask:
                    return wb_words, wb_tid
        if entry is not None:
            overlap = word_mask & (entry.sr_mask | entry.sm_mask)
            if overlap and self.in_transaction and not self.validated:
                if self.current_tid is None or inv_tid < self.current_tid:
                    self.system.tape.note_violation_cause(
                        self.node, line, word_mask, inv_tid, committer
                    )
                    if self.event_log is not None:
                        self.event_log.log(self.engine.now, "violation",
                                           self.node, line=line, tid=inv_tid)
                    self._violate()
                elif entry.sm_mask & word_mask:
                    # A logically-later commit overwrote our unvalidated
                    # speculative write: the directory serialization makes
                    # this impossible.
                    raise ProcessorProtocolError(
                        f"cpu {self.node}: inv tid {inv_tid} > our tid "
                        f"{self.current_tid} hit SM words pre-validation"
                    )
            if entry.dirty or (self.validated and entry.sm_mask):
                # We are the previous owner (or a validated committer whose
                # ownership is being superseded): surviving valid words
                # must ride the ack into home memory before ownership
                # transfers, or they would be lost.  The line itself stays
                # cached (clean, minus the invalidated words) — dropping it
                # would also drop the running transaction's SR/SM tracking
                # on the surviving words and open a missed-violation hole.
                wb_words = {
                    word: value
                    for word, value in entry.valid_words().items()
                    if not word_mask & (1 << word)
                } or None
                if self.validated and self.current_tid is not None:
                    wb_tid = max(wb_tid, self.current_tid)
                self.hierarchy.invalidate_words(line, word_mask)
                self.hierarchy.flushed(line)  # ownership moved; data is home
            else:
                self.hierarchy.invalidate_words(line, word_mask)
        if self._load_line == line:
            self._load_poisoned = True
        return wb_words, wb_tid

    def _violate(self) -> None:
        self.violated = True
        self._notify()

    # -- flush-data requests ---------------------------------------------

    def _on_flush_request(self, msg: FlushRequest) -> None:
        entry = self.hierarchy.peek(msg.line)
        if entry is not None and entry.sm_mask and self.validated:
            # The directory already made us owner (our commit finished
            # there), but our local commit is still waiting on other
            # directories' acks, so the data is not architectural yet.
            # Serve the request right after the local commit.
            self._deferred_flushes.append(msg)
            return
        if entry is None or not entry.dirty:
            # The line left our cache (its write-back is in flight) or was
            # already flushed; the directory will be satisfied by that.
            return
        words = entry.valid_words()
        self.hierarchy.flushed(msg.line)
        self._send(
            msg.directory,
            WriteBackMsg(self.node, msg.line, words, self.latest_tid, remove=False),
        )

    def local_commit(self) -> List[int]:
        """Make speculative state architectural and serve any flush-data
        requests that arrived while the global commit was completing."""
        if self._hardened:
            written = {
                e.line: e.sm_mask for e in self.hierarchy.written_lines()
            }
        committed = self.hierarchy.commit_speculative()
        if self._hardened:
            for line in committed:
                entry = self.hierarchy.peek(line)
                if entry is not None:
                    entry.commit_tid = self.latest_tid
                    entry.commit_sm_mask = written.get(line, 0)
        if self.config.write_through_commit:
            # Data travelled with the marks; nothing stays dirty-owned.
            for line in committed:
                self.hierarchy.flushed(line)
        deferred, self._deferred_flushes = self._deferred_flushes, []
        for msg in deferred:
            self._on_flush_request(msg)
        return committed

    # ------------------------------------------------------------------
    # wakeup plumbing for the commit engine
    # ------------------------------------------------------------------

    def wait(self) -> Event:
        """An event the commit engine can yield; fired by any relevant
        message arrival or violation."""
        self._wakeup = Event(self.engine)
        return self._wakeup

    def _notify(self) -> None:
        wakeup = self._wakeup
        if wakeup is not None and not wakeup.fired:
            self._wakeup = None
            wakeup.fire()

    # ------------------------------------------------------------------
    # outgoing
    # ------------------------------------------------------------------

    def _send(self, dst: int, msg: Any) -> None:
        self.network.send(self.node, dst, msg, msg.payload_bytes, msg.traffic_class)

    def multicast(self, dsts, msg: Any) -> None:
        self.network.multicast(self.node, dsts, msg, msg.payload_bytes, msg.traffic_class)

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------

    def process_for(self, schedule: TransactionSchedule) -> Process:
        return Process(self.engine, self._run(schedule), name=f"cpu{self.node}")

    def _run(self, schedule: TransactionSchedule):
        for item in schedule:
            if item is BARRIER:
                yield from self._flush_local()
                arrived = self.engine.now
                yield self.system.barrier.wait()
                self.stats.idle_cycles += self.engine.now - arrived
            else:
                yield from self._execute(item)
        yield from self._flush_local()
        self.finished = True
        return self.stats

    def _flush_local(self):
        """Turn accumulated compute/hit cycles into simulated time."""
        if self._local_cycles:
            cycles = self._local_cycles
            self._local_cycles = 0
            self._attempt_useful += cycles
            yield Timeout(self.engine, cycles)

    def _execute(self, tx: Transaction):
        while True:
            committed = yield from self._attempt(tx)
            if committed:
                return

    def _attempt(self, tx: Transaction):
        injector = self.fault_injector
        if injector is not None and injector.has_cpu_pauses:
            pause = injector.cpu_pause(self.node, self.engine.now)
            if pause:
                yield Timeout(self.engine, pause)
        self._attempt_id += 1
        self.violated = False
        self.validated = False
        self.in_transaction = True
        if self.event_log is not None:
            self.event_log.log(self.engine.now, "tx_start", self.node,
                               tx=tx.tx_id)
        self._attempt_useful = 0
        self._attempt_miss = 0
        self._attempt_reads = []

        if self.retained and self.current_tid is None:
            yield from self.commit_engine.acquire_tid()

        commit_start = None
        committed = False
        for op in tx.ops:
            kind = op[0]
            if kind == "c":
                self._local_cycles += op[1]
            elif kind == "ld":
                yield from self._do_load(op[1])
            elif kind == "st":
                yield from self._do_store(op[1], op[2])
            elif kind == "add":
                value = yield from self._do_load(op[1])
                if not self.violated:
                    yield from self._do_store(op[1], value + op[2])
            if self.violated:
                break
        yield from self._flush_local()

        if not self.violated:
            commit_start = self.engine.now
            if self.event_log is not None:
                self.event_log.log(commit_start, "commit_start", self.node,
                                   tx=tx.tx_id)
            committed = yield from self.commit_engine.commit(tx)

        if committed:
            self._record_commit(tx, commit_start)
            return True

        # Violated: roll back and account the attempt as wasted.
        self.stats.violations += 1
        if commit_start is None:
            self.stats.execution_violations += 1
        else:
            self.stats.commit_violations += 1
        wasted = self._attempt_useful + self._attempt_miss
        if commit_start is not None:
            wasted += self.engine.now - commit_start
        self.stats.violation_cycles += wasted
        self.system.tape.record_abort(
            self.engine.now, self.node, tx, wasted,
            in_commit_phase=commit_start is not None,
        )
        if self.event_log is not None:
            self.event_log.log(self.engine.now, "tx_abort", self.node,
                               tx=tx.tx_id)
        self.hierarchy.abort_speculative()
        self.in_transaction = False
        self._consecutive_violations += 1
        if (
            self.config.commit_backend == "scalable"
            and not self.retained
            and self._consecutive_violations >= self.config.retention_threshold
        ):
            self.retained = True
            self.stats.tid_retentions += 1
            self.system.tape.record_retention(self.engine.now, self.node, tx)
        return False

    def _record_commit(self, tx: Transaction, commit_start: int) -> None:
        now = self.engine.now
        commit_cycles = now - commit_start
        self.stats.useful_cycles += self._attempt_useful
        self.stats.miss_cycles += self._attempt_miss
        self.stats.commit_cycles += commit_cycles
        self.stats.commit_wait.append(commit_cycles)
        self.stats.committed_transactions += 1
        self.stats.committed_instructions += tx.instructions
        self.stats.tx_instructions.append(tx.instructions)
        self._consecutive_violations = 0
        self.retained = False
        self.in_transaction = False
        self.validated = False
        if self.event_log is not None:
            self.event_log.log(now, "tx_commit", self.node,
                               tx=tx.tx_id, tid=self.latest_tid)
        self.system.commit_log.append(
            CommitRecord(
                tid=self.latest_tid,
                tx=tx,
                proc=self.node,
                reads=self._attempt_reads,
                commit_time=now,
            )
        )

    # -- memory operations -------------------------------------------------

    def _do_load(self, addr: int):
        line = self.amap.line_of(addr)
        word = self.amap.word_of(addr)
        while True:
            result = self.hierarchy.load(line, word)
            if result.hit:
                self._local_cycles += result.cycles
                self._attempt_reads.append((line, word, result.value))
                return result.value
            if self.violated:
                return None
            yield from self._remote_fetch(line)
            if self.violated:
                return None

    def _do_store(self, addr: int, value: int):
        line = self.amap.line_of(addr)
        word = self.amap.word_of(addr)
        while True:
            result = self.hierarchy.store(line, word, value)
            if result.hit:
                self._local_cycles += result.cycles
                return
            if result.outcome == FLUSH_FIRST:
                # Committed data must reach home before we overwrite it
                # speculatively (write-back rule, Section 3.1).
                self.hierarchy.flushed(result.flush_line)
                self._send(
                    self.mapping.home(result.flush_line),
                    WriteBackMsg(
                        self.node,
                        result.flush_line,
                        result.flush_words,
                        self.latest_tid,
                        remove=False,
                    ),
                )
                continue
            if self.violated:
                return
            yield from self._remote_fetch(line)
            if self.violated:
                return

    def _remote_fetch(self, line: int):
        yield from self._flush_local()
        started = self.engine.now
        home = self.mapping.touch(line, self.node)
        self._load_seq += 1
        self._load_event = Event(self.engine)
        self._load_line = line
        self._load_home = home
        self._load_poisoned = False
        if self.event_log is not None:
            self.event_log.log(self.engine.now, "load_miss", self.node,
                               line=line, home=home)
        self._send(home, LoadRequest(self.node, line, self._load_seq))
        if self._hardened:
            # End-to-end load retry: re-send with the *current* seq so a
            # poison-retry (which bumps the seq itself) is not raced.
            event = self._load_event

            def resend() -> None:
                self._send(
                    self._load_home,
                    LoadRequest(self.node, self._load_line, self._load_seq),
                )

            Retrier(
                self.engine, resend, lambda: event.fired,
                self.config.retry_timeout, self.config.retry_backoff,
                self.config.retry_timeout_cap, self.fault_stats,
            )
        yield self._load_event  # the reply handler fills the cache
        self._attempt_miss += self.engine.now - started

    def _fill(self, line: int, data: List[int]) -> None:
        for notice in self.hierarchy.fill(line, data):
            self._send(
                self.mapping.home(notice.line),
                WriteBackMsg(
                    self.node,
                    notice.line,
                    notice.valid_words(),
                    self.latest_tid,
                    remove=True,
                ),
            )

    # ------------------------------------------------------------------
    # end-of-run drain
    # ------------------------------------------------------------------

    def drain_dirty_lines(self) -> int:
        """Write every committed-dirty line home (for final-state checks)."""
        dirty = [
            entry.line
            for bucket in self.hierarchy.l2._sets
            for entry in bucket.values()
            if entry.dirty
        ]
        for line in dirty:
            words = self.hierarchy.extract_for_writeback(line)
            if words:
                self._send(
                    self.mapping.home(line),
                    WriteBackMsg(self.node, line, words, self.latest_tid, remove=True),
                )
        return len(dirty)
