"""Commit engines: scalable two-phase parallel commit, and the
token-serialized baseline.

:class:`ScalableCommitEngine` implements the paper's contribution
(Sections 2.2 and 3.3).  For a transaction with TID *t*, writing vector
*W* (home directories of its write-set) and sharing vector *R* (homes of
its read-set):

1. acquire *t* from the global vendor (unless retained from a previous
   attempt);
2. multicast ``Skip(t)`` to every directory not in *W*;
3. probe every directory in *W ∪ R*; directories defer the reply until
   their NSTID reaches *t*;
4. as each writing directory answers ``NSTID = t``, send its ``Mark``
   message (line addresses + word flags — no data: write-back commit);
5. *validated* once every sharing probe returned ``NSTID >= t`` and every
   writing directory has acknowledged its marks — at this point no
   logically-earlier transaction can still invalidate us, because
   directories do not advance their NSTID past a commit until all its
   invalidations are acknowledged;
6. multicast ``Commit(t)``, wait for the directories to finish, then make
   the speculative state architectural.

On violation before validation the engine waits out in-flight mark acks,
gang-clears its marks with ``Abort``, resolves the TID (or retains it,
for starving transactions) and reports failure so the processor re-runs
the transaction.

:class:`TokenCommitEngine` is the small-scale TCC baseline (Section 2.2,
"operates under condition 2"): one global commit token, write-through
data broadcast, full serialization of commits — the bottleneck the
scalable design removes.
"""

from __future__ import annotations

from typing import Dict, Optional, Set

from repro.core.messages import (
    AbortMsg,
    CommitMsg,
    MarkMsg,
    ProbeRequest,
    SkipMsg,
    TidRequest,
)
from repro.faults.retry import AckTracker, Retrier
from repro.sim import Event


class CommitEngine:
    """Interface shared by both backends."""

    def __init__(self, proc) -> None:
        self.proc = proc

    def deliver(self, msg) -> bool:
        """Handle a backend-specific message; False if not recognized."""
        return False

    def _retry(self, resend, done) -> None:
        """Arm a timeout-retry for one request (hardened protocol only)."""
        proc = self.proc
        cfg = proc.config
        Retrier(proc.engine, resend, done, cfg.retry_timeout,
                cfg.retry_backoff, cfg.retry_timeout_cap, proc.fault_stats)

    def acquire_tid(self):
        """Fetch a TID from the global vendor (a network round trip)."""
        proc = self.proc
        event = Event(proc.engine)
        proc._tid_event = event
        if proc._hardened:
            # Sequenced request: the vendor dedups retries by (node, seq),
            # so resending after a drop never mints a second TID.
            proc._tid_seq += 1
            seq = proc._tid_seq
            proc._send(proc.config.tid_vendor_node, TidRequest(proc.node, seq))
            self._retry(
                lambda: proc._send(
                    proc.config.tid_vendor_node, TidRequest(proc.node, seq)
                ),
                lambda: event.fired,
            )
        else:
            proc._send(proc.config.tid_vendor_node, TidRequest(proc.node))
        tid = yield event
        proc.current_tid = tid
        proc.probe_replies = {}
        proc.mark_acks = set()
        proc.commit_acks = set()

    def commit(self, tx):
        raise NotImplementedError


class ScalableCommitEngine(CommitEngine):
    """The paper's directory-based parallel commit."""

    def commit(self, tx):
        proc = self.proc
        cfg = proc.config
        write_through = cfg.write_through_commit

        marks_by_dir: Dict[int, Dict[int, int]] = {}
        data_by_dir: Dict[int, Dict[int, Dict[int, int]]] = {}
        for entry in proc.hierarchy.written_lines():
            home = proc.mapping.home(entry.line)
            marks_by_dir.setdefault(home, {})[entry.line] = entry.sm_mask
            if write_through:
                written_words = {
                    word: entry.data[word]
                    for word in proc.amap.words_in_mask(entry.sm_mask & entry.valid_mask)
                }
                data_by_dir.setdefault(home, {})[entry.line] = written_words
        writing: Set[int] = set(marks_by_dir)
        sharing: Set[int] = {
            proc.mapping.home(entry.line) for entry in proc.hierarchy.read_lines()
        }

        write_set_bytes = proc.hierarchy.write_set_bytes()
        read_set_bytes = proc.hierarchy.read_set_bytes()

        phase_start = proc.engine.now
        if proc.current_tid is None:
            yield from self.acquire_tid()
            if proc.violated:
                yield from self._abort(writing, skips_sent=False, marks_sent=set())
                return False
        tid = proc.current_tid
        proc.stats.commit_tid_cycles += proc.engine.now - phase_start
        proc.mark_acks = set()
        proc.commit_acks = set()
        hardened = proc._hardened
        attempt = proc._attempt_id

        skip_targets = [d for d in range(cfg.n_processors) if d not in writing]
        skips_sent = False
        if not proc.retained:
            # A retained TID must keep every directory waiting at `tid`
            # until we actually commit, so its skips are deferred to the
            # validation point.
            self._send_skips(tid, skip_targets)
            skips_sent = True

        for directory in sorted(writing):
            self._send_probe(directory, tid, True, hardened)
        for directory in sorted(sharing - writing):
            self._send_probe(directory, tid, False, hardened)

        marks_sent: Set[int] = set()
        probe_start = proc.engine.now
        while True:
            if proc.violated:
                yield from self._abort(writing, skips_sent, marks_sent)
                return False
            for directory in sorted(writing):
                if directory in marks_sent:
                    continue
                reply = proc.probe_replies.get((directory, True))
                if reply is None:
                    continue
                if reply != tid:
                    raise RuntimeError(
                        f"cpu {proc.node}: writing probe for tid {tid} "
                        f"answered with NSTID {reply}"
                    )
                mark = MarkMsg(
                    proc.node,
                    tid,
                    marks_by_dir[directory],
                    data_by_dir.get(directory),
                    attempt,
                )
                proc._send(directory, mark)
                if hardened:
                    self._retry(
                        lambda d=directory, m=mark: proc._send(d, m),
                        lambda d=directory: (
                            proc.current_tid != tid
                            or proc._attempt_id != attempt
                            or d in proc.mark_acks
                        ),
                    )
                marks_sent.add(directory)
            writing_ready = marks_sent == writing and proc.mark_acks >= writing
            sharing_ready = all(
                proc.probe_replies.get((directory, False), -1) >= tid
                for directory in sharing - writing
            )
            if writing_ready and sharing_ready:
                break
            yield proc.wait()

        # Validated: no logically-earlier transaction can violate us now.
        proc.validated = True
        proc.stats.commit_probe_cycles += proc.engine.now - probe_start
        ack_start = proc.engine.now
        if not skips_sent:
            self._send_skips(tid, skip_targets)
        for directory in sorted(writing):
            commit_msg = CommitMsg(proc.node, tid, attempt)
            proc._send(directory, commit_msg)
            if hardened:
                self._retry(
                    lambda d=directory, m=commit_msg: proc._send(d, m),
                    lambda d=directory: (
                        proc.current_tid != tid or d in proc.commit_acks
                    ),
                )
        while not proc.commit_acks >= writing:
            yield proc.wait()
            if proc.violated:
                raise RuntimeError(
                    f"cpu {proc.node}: violated after validation (tid {tid})"
                )
        proc.stats.commit_ack_cycles += proc.engine.now - ack_start

        proc.latest_tid = tid
        proc.local_commit()
        proc.system.vendor.resolve(tid)
        proc.current_tid = None
        proc.probe_replies = {}
        proc.retained = False

        proc.stats.write_set_bytes.append(write_set_bytes)
        proc.stats.read_set_bytes.append(read_set_bytes)
        proc.stats.dirs_touched.append(len(writing | sharing))
        return True

    def _abort(self, writing: Set[int], skips_sent: bool, marks_sent: Set[int]):
        proc = self.proc
        tid = proc.current_tid
        if tid is None:
            return
        # Aborts must not overtake marks still in flight to the same
        # directory; mark acks give us that ordering on an unordered net.
        while not proc.mark_acks >= marks_sent:
            yield proc.wait()
        if proc.retained:
            # Keep the TID: clear any marks, leave every directory waiting.
            self._send_aborts(tid, marks_sent, retain=True)
            return
        self._send_aborts(tid, writing, retain=False)
        if not skips_sent:
            skip_targets = [
                d for d in range(proc.config.n_processors) if d not in writing
            ]
            self._send_skips(tid, skip_targets)
        proc.system.vendor.resolve(tid)
        proc.current_tid = None
        proc.probe_replies = {}

    # -- hardened-protocol send helpers ---------------------------------
    #
    # Each helper degenerates to the bare historical send when the
    # protocol is not hardened (``config.protocol_hardened`` False), so
    # fault-free runs stay bit-identical.

    def _send_skips(self, tid: int, targets) -> None:
        proc = self.proc
        if not targets:
            return
        if not proc._hardened:
            proc.multicast(targets, SkipMsg(tid))
            return
        cfg = proc.config
        proc.multicast(targets, SkipMsg(tid, proc.node))
        proc._skip_trackers[tid] = AckTracker(
            proc.engine, targets,
            lambda d: proc._send(d, SkipMsg(tid, proc.node)),
            cfg.retry_timeout, cfg.retry_backoff, cfg.retry_timeout_cap,
            proc.fault_stats,
        )

    def _send_probe(self, directory: int, tid: int, writing: bool,
                    hardened: bool) -> None:
        proc = self.proc
        probe = ProbeRequest(proc.node, tid, writing)
        proc._send(directory, probe)
        if hardened:
            self._retry(
                lambda: proc._send(directory, probe),
                lambda: (
                    proc.current_tid != tid
                    or (directory, writing) in proc.probe_replies
                ),
            )

    def _send_aborts(self, tid: int, targets: Set[int], retain: bool) -> None:
        proc = self.proc
        if not targets:
            return
        attempt = proc._attempt_id
        hardened = proc._hardened
        for directory in sorted(targets):
            proc._send(
                directory,
                AbortMsg(proc.node, tid, retain=retain, attempt=attempt,
                         want_ack=hardened),
            )
        if hardened:
            cfg = proc.config
            proc._abort_trackers[(tid, attempt)] = AckTracker(
                proc.engine, targets,
                lambda d: proc._send(
                    d,
                    AbortMsg(proc.node, tid, retain=retain, attempt=attempt,
                             want_ack=True),
                ),
                cfg.retry_timeout, cfg.retry_backoff, cfg.retry_timeout_cap,
                proc.fault_stats,
            )
