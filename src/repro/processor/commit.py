"""Commit engines: scalable two-phase parallel commit, and the
token-serialized baseline.

:class:`ScalableCommitEngine` implements the paper's contribution
(Sections 2.2 and 3.3).  For a transaction with TID *t*, writing vector
*W* (home directories of its write-set) and sharing vector *R* (homes of
its read-set):

1. acquire *t* from the global vendor (unless retained from a previous
   attempt);
2. multicast ``Skip(t)`` to every directory not in *W*;
3. probe every directory in *W ∪ R*; directories defer the reply until
   their NSTID reaches *t*;
4. as each writing directory answers ``NSTID = t``, send its ``Mark``
   message (line addresses + word flags — no data: write-back commit);
5. *validated* once every sharing probe returned ``NSTID >= t`` and every
   writing directory has acknowledged its marks — at this point no
   logically-earlier transaction can still invalidate us, because
   directories do not advance their NSTID past a commit until all its
   invalidations are acknowledged;
6. multicast ``Commit(t)``, wait for the directories to finish, then make
   the speculative state architectural.

On violation before validation the engine waits out in-flight mark acks,
gang-clears its marks with ``Abort``, resolves the TID (or retains it,
for starving transactions) and reports failure so the processor re-runs
the transaction.

:class:`TokenCommitEngine` is the small-scale TCC baseline (Section 2.2,
"operates under condition 2"): one global commit token, write-through
data broadcast, full serialization of commits — the bottleneck the
scalable design removes.
"""

from __future__ import annotations

from typing import Dict, Optional, Set

from repro.core.messages import (
    AbortMsg,
    CommitMsg,
    MarkMsg,
    ProbeRequest,
    SkipMsg,
    TidRequest,
)
from repro.sim import Event


class CommitEngine:
    """Interface shared by both backends."""

    def __init__(self, proc) -> None:
        self.proc = proc

    def deliver(self, msg) -> bool:
        """Handle a backend-specific message; False if not recognized."""
        return False

    def acquire_tid(self):
        """Fetch a TID from the global vendor (a network round trip)."""
        proc = self.proc
        event = Event(proc.engine)
        proc._tid_event = event
        proc._send(proc.config.tid_vendor_node, TidRequest(proc.node))
        tid = yield event
        proc.current_tid = tid
        proc.probe_replies = {}
        proc.mark_acks = set()
        proc.commit_acks = set()

    def commit(self, tx):
        raise NotImplementedError


class ScalableCommitEngine(CommitEngine):
    """The paper's directory-based parallel commit."""

    def commit(self, tx):
        proc = self.proc
        cfg = proc.config
        write_through = cfg.write_through_commit

        marks_by_dir: Dict[int, Dict[int, int]] = {}
        data_by_dir: Dict[int, Dict[int, Dict[int, int]]] = {}
        for entry in proc.hierarchy.written_lines():
            home = proc.mapping.home(entry.line)
            marks_by_dir.setdefault(home, {})[entry.line] = entry.sm_mask
            if write_through:
                written_words = {
                    word: entry.data[word]
                    for word in proc.amap.words_in_mask(entry.sm_mask & entry.valid_mask)
                }
                data_by_dir.setdefault(home, {})[entry.line] = written_words
        writing: Set[int] = set(marks_by_dir)
        sharing: Set[int] = {
            proc.mapping.home(entry.line) for entry in proc.hierarchy.read_lines()
        }

        write_set_bytes = proc.hierarchy.write_set_bytes()
        read_set_bytes = proc.hierarchy.read_set_bytes()

        phase_start = proc.engine.now
        if proc.current_tid is None:
            yield from self.acquire_tid()
            if proc.violated:
                yield from self._abort(writing, skips_sent=False, marks_sent=set())
                return False
        tid = proc.current_tid
        proc.stats.commit_tid_cycles += proc.engine.now - phase_start
        proc.mark_acks = set()
        proc.commit_acks = set()

        skip_targets = [d for d in range(cfg.n_processors) if d not in writing]
        skips_sent = False
        if not proc.retained:
            # A retained TID must keep every directory waiting at `tid`
            # until we actually commit, so its skips are deferred to the
            # validation point.
            if skip_targets:
                proc.multicast(skip_targets, SkipMsg(tid))
            skips_sent = True

        for directory in writing:
            proc._send(directory, ProbeRequest(proc.node, tid, True))
        for directory in sharing - writing:
            proc._send(directory, ProbeRequest(proc.node, tid, False))

        marks_sent: Set[int] = set()
        probe_start = proc.engine.now
        while True:
            if proc.violated:
                yield from self._abort(writing, skips_sent, marks_sent)
                return False
            for directory in writing:
                if directory in marks_sent:
                    continue
                reply = proc.probe_replies.get((directory, True))
                if reply is None:
                    continue
                if reply != tid:
                    raise RuntimeError(
                        f"cpu {proc.node}: writing probe for tid {tid} "
                        f"answered with NSTID {reply}"
                    )
                proc._send(
                    directory,
                    MarkMsg(
                        proc.node,
                        tid,
                        marks_by_dir[directory],
                        data_by_dir.get(directory),
                    ),
                )
                marks_sent.add(directory)
            writing_ready = marks_sent == writing and proc.mark_acks >= writing
            sharing_ready = all(
                proc.probe_replies.get((directory, False), -1) >= tid
                for directory in sharing - writing
            )
            if writing_ready and sharing_ready:
                break
            yield proc.wait()

        # Validated: no logically-earlier transaction can violate us now.
        proc.validated = True
        proc.stats.commit_probe_cycles += proc.engine.now - probe_start
        ack_start = proc.engine.now
        if not skips_sent and skip_targets:
            proc.multicast(skip_targets, SkipMsg(tid))
        for directory in writing:
            proc._send(directory, CommitMsg(proc.node, tid))
        while not proc.commit_acks >= writing:
            yield proc.wait()
            if proc.violated:
                raise RuntimeError(
                    f"cpu {proc.node}: violated after validation (tid {tid})"
                )
        proc.stats.commit_ack_cycles += proc.engine.now - ack_start

        proc.latest_tid = tid
        proc.local_commit()
        proc.system.vendor.resolve(tid)
        proc.current_tid = None
        proc.probe_replies = {}
        proc.retained = False

        proc.stats.write_set_bytes.append(write_set_bytes)
        proc.stats.read_set_bytes.append(read_set_bytes)
        proc.stats.dirs_touched.append(len(writing | sharing))
        return True

    def _abort(self, writing: Set[int], skips_sent: bool, marks_sent: Set[int]):
        proc = self.proc
        tid = proc.current_tid
        if tid is None:
            return
        # Aborts must not overtake marks still in flight to the same
        # directory; mark acks give us that ordering on an unordered net.
        while not proc.mark_acks >= marks_sent:
            yield proc.wait()
        if proc.retained:
            # Keep the TID: clear any marks, leave every directory waiting.
            for directory in marks_sent:
                proc._send(directory, AbortMsg(proc.node, tid, retain=True))
            return
        for directory in writing:
            proc._send(directory, AbortMsg(proc.node, tid, retain=False))
        if not skips_sent:
            skip_targets = [
                d for d in range(proc.config.n_processors) if d not in writing
            ]
            if skip_targets:
                proc.multicast(skip_targets, SkipMsg(tid))
        proc.system.vendor.resolve(tid)
        proc.current_tid = None
        proc.probe_replies = {}
