"""Per-line directory state (Figure 4 of the paper).

For every line of its memory slice a directory tracks:

* ``sharers`` — full bit vector of processors that may cache the line
  (having speculatively read it); the owner is also a member.  A
  processor is removed only when an invalidation is sent to it — there
  are no replacement hints, so the list is conservative.
* ``owner`` / ``owned`` — the last committer, holding the only up-to-date
  copy until it writes the line back (write-back protocol).
* ``marked`` / ``marked_words`` / ``marked_by`` — the line is part of an
  in-flight commit to this directory.
* ``tid_tag`` — TID of the last commit to the line; stale write-backs
  (smaller tag) are dropped, eliminating unordered-network races
  (Section 3.3, "Race Elimination").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Set


@dataclass
class DirectoryEntry:
    """Directory state for one cache line."""

    line: int
    sharers: Set[int] = field(default_factory=set)
    owner: Optional[int] = None
    marked: bool = False
    marked_words: int = 0
    marked_by: Optional[int] = None
    tid_tag: int = 0
    #: Creation rank within the owning :class:`DirectoryState`; entries are
    #: never deleted, so this reproduces the entry-table scan order.
    seq: int = 0

    @property
    def owned(self) -> bool:
        return self.owner is not None

    def mark(self, tid: int, word_mask: int) -> None:
        self.marked = True
        self.marked_words |= word_mask
        self.marked_by = tid

    def clear_mark(self) -> None:
        self.marked = False
        self.marked_words = 0
        self.marked_by = None

    def commit_to(self, committer: int, tid: int, keep_sharers: bool = True) -> None:
        """Gang-upgrade: Marked -> Owned by the committer.

        At word granularity (``keep_sharers=True``) invalidated processors
        may retain the line's *other* valid words, so they must stay in
        the sharers list to hear about future commits; at line granularity
        an invalidation drops the whole line, so the list resets to just
        the committer (the paper's policy).
        """
        self.owner = committer
        self.tid_tag = tid
        if keep_sharers:
            self.sharers.add(committer)
        else:
            self.sharers = {committer}
        self.clear_mark()

    def release_ownership(self) -> None:
        """Data reached home memory; memory is authoritative again."""
        self.owner = None


class DirectoryState:
    """All line entries for one directory, created on demand."""

    def __init__(self) -> None:
        self._entries: Dict[int, DirectoryEntry] = {}
        # tid -> {line: entry}: which entries a TID has marked.  The hot
        # commit/abort paths read it via marked_for() instead of scanning
        # every entry; marked_lines() keeps the authoritative full scan.
        self._mark_index: Dict[int, Dict[int, DirectoryEntry]] = {}

    def entry(self, line: int) -> DirectoryEntry:
        found = self._entries.get(line)
        if found is None:
            found = DirectoryEntry(line, seq=len(self._entries))
            self._entries[line] = found
        return found

    def peek(self, line: int) -> Optional[DirectoryEntry]:
        return self._entries.get(line)

    def __len__(self) -> int:
        return len(self._entries)

    def entries(self):
        return self._entries.values()

    def marked_lines(self, tid: int):
        """Lines currently marked by ``tid``."""
        return [e for e in self._entries.values() if e.marked and e.marked_by == tid]

    def mark_line(self, line: int, tid: int, word_mask: int) -> DirectoryEntry:
        """Mark through the index — equivalent to ``entry(line).mark(...)``
        but queryable via :meth:`marked_for` without a full scan."""
        entry = self.entry(line)
        entry.mark(tid, word_mask)
        bucket = self._mark_index.get(tid)
        if bucket is None:
            bucket = self._mark_index[tid] = {}
        bucket[line] = entry
        return entry

    def marked_for(self, tid: int):
        """Indexed :meth:`marked_lines`, in the same (creation) order.

        Only sees marks placed via :meth:`mark_line`; entries unmarked or
        re-marked by another TID since are filtered (and pruned) here.
        """
        bucket = self._mark_index.get(tid)
        if not bucket:
            return []
        live = [e for e in bucket.values() if e.marked and e.marked_by == tid]
        if not live:
            del self._mark_index[tid]
            return []
        if len(live) != len(bucket):
            self._mark_index[tid] = {e.line: e for e in live}
        live.sort(key=lambda e: e.seq)
        return live

    def drop_marks(self, tid: int) -> None:
        """Forget a finished TID's mark-index bucket."""
        self._mark_index.pop(tid, None)

    def working_set_entries(self, home: int) -> int:
        """Entries with at least one remote sharer or a remote owner —
        the directory-cache working set of Table 3."""
        count = 0
        for entry in self._entries.values():
            if entry.owner is not None and entry.owner != home:
                count += 1
            elif any(sharer != home for sharer in entry.sharers):
                count += 1
        return count
