"""Directory: per-node coherence controller for Scalable TCC.

Each node's directory controls a contiguous slice of physical memory
(Figure 4 of the paper).  It serializes commits to its slice through a
gap-free *Now Serving TID* register fed by a :class:`SkipVector`, tracks
per-line sharers/owner/marked state, generates commit invalidations, and
filters all coherence traffic so only processors that may cache a line
ever see messages about it.
"""

from repro.directory.controller import DirectoryController
from repro.directory.skipvector import SkipVector
from repro.directory.state import DirectoryEntry, DirectoryState

__all__ = [
    "DirectoryController",
    "DirectoryEntry",
    "DirectoryState",
    "SkipVector",
]
