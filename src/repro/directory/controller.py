"""The Scalable TCC directory controller.

One controller per node, serving the node's slice of physical memory.
All protocol messages for the slice funnel through a single FIFO serve
loop (modelling directory-cache occupancy, 10 cycles per message); memory
reads for load fills are overlapped — the controller snapshots state and
schedules the reply ``memory_latency`` cycles later without blocking.

Responsibilities (Sections 2.2 and 3 of the paper):

* serve one committing transaction at a time, in gap-free TID order
  (:class:`~repro.directory.skipvector.SkipVector`);
* defer probe replies until ``NSTID >= probe.tid`` (the paper's
  "directory does not respond until the required TID is serviced");
* buffer Mark messages, gang-upgrade them to Owned on Commit, gang-clear
  them on Abort;
* fan out invalidations to sharers (except the committer) and hold the
  NSTID until every invalidation is acknowledged — this is the race
  elimination rule that makes probe replies a reliable validation signal;
* stall loads that hit Marked lines until the commit resolves
  (optimizing for commit success);
* forward loads of Owned lines to the owner via Flush-Data requests, and
  merge returning write-backs into memory, dropping stale ones by TID tag.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.core.config import SystemConfig
from repro.core.messages import (
    AbortAck,
    AbortMsg,
    CommitAck,
    CommitMsg,
    FlushRequest,
    InvAck,
    Invalidation,
    LoadReply,
    LoadRequest,
    MarkAck,
    MarkMsg,
    ProbeReply,
    ProbeRequest,
    SkipAck,
    SkipMsg,
    TokenWrite,
    TokenWriteAck,
    WriteBackMsg,
)
from repro.directory.skipvector import SkipVector
from repro.directory.state import DirectoryState
from repro.memory.address import AddressMap
from repro.memory.mainmem import MainMemory
from repro.network.interconnect import Interconnect
from repro.sim import Engine, Process, Store, Timeout


class ProtocolError(RuntimeError):
    """An invariant of the commit protocol was broken — always a bug."""


@dataclass
class _CommitContext:
    """Book-keeping for the commit currently being applied.

    ``pending`` holds one ``(line, sharer)`` key per outstanding
    invalidation, so a duplicated InvAck (delayed copy on a faulty
    fabric) cannot double-count an acknowledgement.
    """

    tid: int
    committer: int
    pending: set
    started_at: int
    attempt: int = 0


@dataclass
class DirectoryStats:
    """Per-directory counters for Table 3 / Figure 9."""

    loads_served: int = 0
    loads_stalled: int = 0
    loads_forwarded: int = 0
    commits_served: int = 0
    aborts_served: int = 0
    invalidations_sent: int = 0
    writebacks_accepted: int = 0
    writebacks_dropped: int = 0
    writebacks_merged: int = 0  # late write-backs salvaged word-by-word
    skips_processed: int = 0
    occupancy_samples: List[int] = field(default_factory=list)
    busy_cycles: int = 0
    dir_cache_hits: int = 0
    dir_cache_misses: int = 0

    @property
    def dir_cache_hit_rate(self) -> float:
        total = self.dir_cache_hits + self.dir_cache_misses
        return self.dir_cache_hits / total if total else 1.0


class _DirectoryCache:
    """LRU tag store over directory entries — a timing model only.

    The authoritative per-line state always lives in
    :class:`~repro.directory.state.DirectoryState` (conceptually backed
    by memory); this cache decides whether a message pays the 10-cycle
    directory-cache latency alone or an extra memory access to fetch the
    entry (Table 2's "directory cache").
    """

    def __init__(self, capacity: int) -> None:
        if capacity < 1:
            raise ValueError("directory cache needs at least one entry")
        self.capacity = capacity
        self._entries: dict[int, int] = {}
        self._clock = 0

    def access(self, line: int) -> bool:
        """Touch the line's entry; True on hit, False on miss+fill."""
        self._clock += 1
        if line in self._entries:
            self._entries[line] = self._clock
            return True
        if len(self._entries) >= self.capacity:
            victim = min(self._entries, key=self._entries.get)
            del self._entries[victim]
        self._entries[line] = self._clock
        return False


class DirectoryController:
    """Coherence controller for one node's memory slice."""

    def __init__(
        self,
        node: int,
        engine: Engine,
        network: Interconnect,
        memory: MainMemory,
        amap: AddressMap,
        config: SystemConfig,
    ) -> None:
        self.node = node
        self.engine = engine
        self.network = network
        self.memory = memory
        self.amap = amap
        self.config = config
        self.skipvec = SkipVector()
        self.state = DirectoryState()
        self.stats = DirectoryStats()

        self._queue: Store = Store(engine, name=f"dir{node}.queue")
        self._pending_probes: List[ProbeRequest] = []
        self._stalled_loads: Dict[int, List[LoadRequest]] = defaultdict(list)
        self._pending_forwards: Dict[int, List[LoadRequest]] = defaultdict(list)
        self._flush_requested: set[int] = set()
        self._active_commit: Optional[_CommitContext] = None
        self._first_contact: Dict[int, int] = {}
        self._dir_cache = (
            _DirectoryCache(config.directory_cache_entries)
            if config.directory_cache_entries
            else None
        )
        # Write-through ablation: data travelling with marks, per tid.
        self._wt_data: Dict[int, Dict[int, Dict[int, int]]] = defaultdict(dict)
        # sharer -> expanded group-target tuple (coarse sharer vectors).
        self._group_ranges: Dict[int, tuple] = {}

        # Hardened-protocol state (repro.faults); inert when
        # ``config.protocol_hardened`` is False.
        self._hardened = config.protocol_hardened
        #: tid -> highest attempt whose marks were gang-cleared by a
        #: *retained* abort: a duplicated mark from that attempt must not
        #: pollute a newer attempt's mark set at the same TID.
        self._aborted_attempt: Dict[int, int] = {}
        #: tid -> highest attempt that has marked here: a retried abort
        #: from an older attempt must not clear the newer attempt's marks.
        self._mark_attempt: Dict[int, int] = {}
        #: line -> word -> (tid, committer) of the last write-back commit
        #: that marked the word: the architectural version of every word.
        self._word_committer: Dict[int, Dict[int, tuple]] = {}
        #: line -> words whose latest committed value has not yet reached
        #: home memory (it still rides a write-back or an InvAck).  While
        #: non-empty, serving the line from memory would hand out a stale
        #: word, so loads park in ``_pending_forwards`` instead.
        self._awaiting: Dict[int, set] = {}
        self.fault_injector: Optional[Any] = None
        self.fault_stats: Optional[Any] = None

        #: Optional structured event log (set by the system when
        #: ``config.event_log`` is enabled).
        self.event_log = None

        self.process = Process(engine, self._serve(), name=f"dir{node}")

    # ------------------------------------------------------------------
    # ingress
    # ------------------------------------------------------------------

    def deliver(self, msg: Any) -> None:
        """Entry point: the node router drops directory messages here."""
        self._queue.put(msg)

    @property
    def nstid(self) -> int:
        return self.skipvec.nstid

    # ------------------------------------------------------------------
    # serve loop
    # ------------------------------------------------------------------

    def _serve(self):
        dispatch = {
            LoadRequest: self._handle_load,
            SkipMsg: self._handle_skip,
            ProbeRequest: self._handle_probe,
            MarkMsg: self._handle_mark,
            CommitMsg: self._handle_commit,
            AbortMsg: self._handle_abort,
            InvAck: self._handle_inv_ack,
            WriteBackMsg: self._handle_writeback,
            TokenWrite: self._handle_token_write,
        }
        latency = self.config.directory_latency
        while True:
            msg = yield self._queue.get()
            injector = self.fault_injector
            if injector is not None and injector.has_dir_stalls:
                pause = injector.dir_stall_pause(self.node, self.engine.now)
                if pause:
                    # Node fault: the controller goes dark until the
                    # window ends; queued messages wait it out.
                    yield Timeout(self.engine, pause)
            service = latency + self._dir_cache_penalty(msg)
            if service:
                yield Timeout(self.engine, service)
                self.stats.busy_cycles += service
            handler = dispatch.get(type(msg))
            if handler is None:
                raise ProtocolError(f"directory {self.node} got unknown message {msg!r}")
            handler(msg)

    def _dir_cache_penalty(self, msg: Any) -> int:
        """Extra cycles to fetch uncached directory entries from memory.

        Concurrent entry fetches are overlapped: a message touching
        several uncached lines pays one memory access.
        """
        if self._dir_cache is None:
            return 0
        lines = getattr(msg, "lines", None)
        if lines is not None:
            touched = list(lines)
        else:
            line = getattr(msg, "line", None)
            touched = [line] if line is not None else []
        missed = False
        for line in touched:
            if not self._dir_cache.access(line):
                missed = True
        if not touched:
            return 0
        if missed:
            self.stats.dir_cache_misses += 1
            return self.config.memory_latency
        self.stats.dir_cache_hits += 1
        return 0

    # ------------------------------------------------------------------
    # outgoing helpers
    # ------------------------------------------------------------------

    def _send(self, dst: int, msg: Any, extra_delay: int = 0) -> None:
        if extra_delay:
            self.engine.schedule_call(extra_delay, self._send_later, (dst, msg))
        else:
            self.network.send(self.node, dst, msg, msg.payload_bytes, msg.traffic_class)

    def _send_later(self, dst_msg: tuple) -> None:
        dst, msg = dst_msg
        self.network.send(self.node, dst, msg, msg.payload_bytes, msg.traffic_class)

    # ------------------------------------------------------------------
    # loads and data movement
    # ------------------------------------------------------------------

    def _handle_load(self, msg: LoadRequest) -> None:
        entry = self.state.entry(msg.line)
        if entry.marked:
            # Optimize for commit success: stall rather than serve data
            # that is about to be overwritten (Section 3.3).
            self._stalled_loads[msg.line].append(msg)
            self.stats.loads_stalled += 1
            return
        if entry.owned:
            # Owner holds the only current copy: recall it.
            self._pending_forwards[msg.line].append(msg)
            self.stats.loads_forwarded += 1
            if msg.line not in self._flush_requested:
                self._flush_requested.add(msg.line)
                self._send(entry.owner, FlushRequest(self.node, msg.line))
            return
        if self._hardened and self._awaiting.get(msg.line):
            # Unowned, but a committed word's only copy is still in
            # flight (a delayed write-back or InvAck ride); serving now
            # would hand out a stale word.  Drops of data-carrying
            # messages are downgraded to delays, so the words are
            # guaranteed to land and release these waiters.
            self._pending_forwards[msg.line].append(msg)
            self.stats.loads_forwarded += 1
            return
        self._serve_load_from_memory(entry, msg)

    def _serve_load_from_memory(self, entry, msg: LoadRequest) -> None:
        entry.sharers.add(msg.requester)
        data = self.memory.read_line(msg.line)
        self.stats.loads_served += 1
        # Memory access proceeds off the critical serve loop.
        self._send(
            msg.requester,
            LoadReply(msg.line, data, msg.seq),
            extra_delay=self.config.memory_latency,
        )

    def _handle_writeback(self, msg: WriteBackMsg) -> None:
        entry = self.state.entry(msg.line)
        acceptable = (
            entry.owned
            and entry.owner == msg.writer
            and msg.tid >= entry.tid_tag
        )
        if not acceptable:
            if self._hardened:
                self._merge_late_writeback(entry, msg)
                return
            # Stale or unexpected write-back: the TID-tag race rule.
            self.stats.writebacks_dropped += 1
            if self.event_log is not None:
                self.event_log.log(self.engine.now, "writeback", self.node,
                                   line=msg.line, writer=msg.writer,
                                   accepted=False)
            return
        self.memory.write_words(msg.line, msg.words)
        self.stats.writebacks_accepted += 1
        if self.event_log is not None:
            self.event_log.log(self.engine.now, "writeback", self.node,
                               line=msg.line, writer=msg.writer,
                               accepted=True)
        entry.release_ownership()
        if msg.remove:
            entry.sharers.discard(msg.writer)
        self._flush_requested.discard(msg.line)
        if self._hardened:
            self._clear_awaiting(msg.line, msg.words, msg.writer, msg.tid)
            self._service_forwards(msg.line)
            return
        waiters = self._pending_forwards.pop(msg.line, [])
        for load in waiters:
            self._handle_load(load)

    def _merge_late_writeback(self, entry, msg: WriteBackMsg) -> None:
        """Salvage a write-back the TID-tag rule would drop.

        On an unreliable fabric a flush can arrive *after* a later
        commit already transferred the line's ownership; dropping it
        whole loses the only copy of every word that newer commit did
        not overwrite.  A word is still fresh exactly when its writer is
        the committer of its current architectural version and the
        write-back's tag covers that version — a stale flush from a
        processor that merely read the word (and was invalidated after
        sending) never passes, whatever its tag says.
        """
        versions = self._word_committer.get(msg.line, {})
        fresh = {}
        for word, value in msg.words.items():
            ver = versions.get(word)
            if ver is None or (ver[1] == msg.writer and msg.tid >= ver[0]):
                fresh[word] = value
        if not fresh:
            self.stats.writebacks_dropped += 1
            self._count_stale()
            if self.event_log is not None:
                self.event_log.log(self.engine.now, "writeback", self.node,
                                   line=msg.line, writer=msg.writer,
                                   accepted=False)
        else:
            self.memory.write_words(msg.line, fresh)
            self.stats.writebacks_merged += 1
            if self.event_log is not None:
                self.event_log.log(self.engine.now, "writeback", self.node,
                                   line=msg.line, writer=msg.writer,
                                   accepted=True, merged=len(fresh))
            # Ownership and sharers stay untouched: the writer is not
            # (or no longer) the registered owner, and a duplicated
            # eviction must not unregister a re-sharing processor.
            self._clear_awaiting(msg.line, fresh, msg.writer, msg.tid)
            self._service_forwards(msg.line)
        if entry.owned and self._pending_forwards.get(msg.line):
            # The write-back meant to satisfy these forwards was
            # overtaken by the owner's next commit of the same line;
            # recall the line again from the current owner or the
            # forwards wedge forever.
            self._send(entry.owner, FlushRequest(self.node, msg.line))

    def _clear_awaiting(self, line: int, words: Dict[int, int],
                        writer: int, tid: int) -> None:
        """Mark words whose committed value just reached memory."""
        waiting = self._awaiting.get(line)
        if not waiting:
            return
        versions = self._word_committer.get(line, {})
        for word in list(waiting):
            if word not in words:
                continue
            ver = versions.get(word)
            if ver is None or (ver[1] == writer and tid >= ver[0]):
                waiting.discard(word)
        if not waiting:
            del self._awaiting[line]

    def _service_forwards(self, line: int) -> None:
        """Re-dispatch parked loads once memory holds the whole line."""
        if not self._pending_forwards.get(line):
            return
        if self._awaiting.get(line):
            return
        entry = self.state.entry(line)
        if entry.owned:
            return  # a recall to the owner is in progress
        waiters = self._pending_forwards.pop(line, [])
        for load in waiters:
            self._handle_load(load)

    def _handle_token_write(self, msg: TokenWrite) -> None:
        """Small-scale TCC baseline: write-through commit data to memory."""
        for line, words in msg.lines.items():
            self.memory.write_words(line, words)
            entry = self.state.entry(line)
            entry.tid_tag = msg.tid
        self.stats.commits_served += 1
        self._send(msg.committer, TokenWriteAck(self.node, msg.tid))

    # ------------------------------------------------------------------
    # commit protocol
    # ------------------------------------------------------------------

    def _count_stale(self) -> None:
        if self.fault_stats is not None:
            self.fault_stats.stale_drops += 1
        if self.event_log is not None:
            self.event_log.log(self.engine.now, "stale", self.node)

    def _handle_skip(self, msg: SkipMsg) -> None:
        self.stats.skips_processed += 1
        if self._active_commit is not None and msg.tid == self._active_commit.tid:
            raise ProtocolError(
                f"dir {self.node}: skip from TID {msg.tid} while it is committing"
            )
        # The skip vector is naturally idempotent: duplicate and stale
        # skips are absorbed (the bit is already set / already shifted out).
        if self.skipvec.skip(msg.tid):
            self._after_advance()
        if msg.committer >= 0:
            # Hardened protocol: always ack — including for stale
            # duplicates, whose original ack may have been the loss.
            self._send(msg.committer, SkipAck(self.node, msg.tid))

    def _handle_probe(self, msg: ProbeRequest) -> None:
        if self.nstid >= msg.tid:
            self._reply_probe(msg)
        else:
            if self._hardened:
                for pending in self._pending_probes:
                    if (
                        pending.requester == msg.requester
                        and pending.tid == msg.tid
                        and pending.writing == msg.writing
                    ):
                        self._count_stale()
                        return  # duplicate of an already-deferred probe
            self._pending_probes.append(msg)

    def _reply_probe(self, msg: ProbeRequest) -> None:
        self._send(
            msg.requester,
            ProbeReply(self.node, msg.tid, self.nstid, msg.writing),
        )

    def _handle_mark(self, msg: MarkMsg) -> None:
        if msg.tid != self.nstid:
            if self._hardened and msg.tid < self.nstid:
                # This TID already finished here; a late duplicate of a
                # mark it once sent.  The committer cannot still be
                # waiting (it drove the NSTID past the TID itself).
                self._count_stale()
                return
            raise ProtocolError(
                f"dir {self.node}: mark from TID {msg.tid} while serving {self.nstid}"
            )
        if self._hardened:
            if msg.attempt <= self._aborted_attempt.get(msg.tid, -1):
                # Duplicated mark from an attempt a retained abort already
                # gang-cleared; applying it would corrupt the live
                # attempt's mark set at the same TID.
                self._count_stale()
                return
            if msg.attempt > self._mark_attempt.get(msg.tid, -1):
                self._mark_attempt[msg.tid] = msg.attempt
        self._first_contact.setdefault(msg.tid, self.engine.now)
        for line, word_mask in msg.lines.items():
            self.state.mark_line(line, msg.tid, word_mask)
        if msg.data:
            self._wt_data[msg.tid].update(msg.data)
        self._send(msg.committer, MarkAck(self.node, msg.tid, msg.attempt))

    def _handle_commit(self, msg: CommitMsg) -> None:
        if msg.tid != self.nstid:
            if self._hardened and msg.tid < self.nstid:
                # The commit already applied here (only this committer's
                # own commit can have advanced the NSTID past its TID);
                # its ack may have been the loss — re-send it.
                self._count_stale()
                self._send(
                    msg.committer, CommitAck(self.node, msg.tid, msg.attempt)
                )
                return
            raise ProtocolError(
                f"dir {self.node}: commit from TID {msg.tid} while serving {self.nstid}"
            )
        if self._active_commit is not None:
            if self._hardened and self._active_commit.tid == msg.tid:
                # Duplicate while invalidations are outstanding; the ack
                # follows from _finish_commit.
                self._count_stale()
                return
            raise ProtocolError(f"dir {self.node}: overlapping commits")
        marked = self.state.marked_for(msg.tid)
        if not marked:
            raise ProtocolError(
                f"dir {self.node}: commit from TID {msg.tid} with no marked lines"
            )
        word_granularity = self.config.granularity == "word"
        pending = set()
        for entry in marked:
            invalidatees = self._invalidation_targets(entry) - {msg.committer}
            for sharer in sorted(invalidatees):
                self._send(
                    sharer,
                    Invalidation(
                        self.node, entry.line, entry.marked_words,
                        msg.tid, msg.committer,
                    ),
                )
                pending.add((entry.line, sharer))
            self.stats.invalidations_sent += len(invalidatees)
            if not word_granularity:
                # Line granularity: the invalidation drops the whole line,
                # so invalidated processors stop being sharers (the paper's
                # policy).  At word granularity they may retain other valid
                # words and must keep receiving invalidations.
                entry.sharers -= invalidatees
        started = self._first_contact.pop(msg.tid, self.engine.now)
        self._active_commit = _CommitContext(
            msg.tid, msg.committer, pending, started, msg.attempt
        )
        if not pending:
            self._finish_commit()

    def _invalidation_targets(self, entry) -> set:
        """Who a commit to this line must invalidate.

        With the paper's full bit vector this is exactly the sharers; a
        coarse vector (``sharer_group_size`` > 1) only remembers groups,
        so the whole group of every sharer is invalidated — the extra
        targets just acknowledge (spurious invalidations are harmless,
        Section 3.3).
        """
        group = self.config.sharer_group_size
        if group <= 1 or not entry.sharers:
            return set(entry.sharers)
        n = self.config.n_processors
        targets = set()
        ranges = self._group_ranges
        for sharer in entry.sharers:
            expanded = ranges.get(sharer)
            if expanded is None:
                base = (sharer // group) * group
                expanded = tuple(range(base, min(base + group, n)))
                ranges[sharer] = expanded
            targets.update(expanded)
        return targets

    def _handle_inv_ack(self, msg: InvAck) -> None:
        ctx = self._active_commit
        if ctx is None or msg.tid != ctx.tid:
            if self._hardened:
                self._count_stale()  # duplicate after the commit finished
                self._salvage_ack_ride(msg)
                return
            raise ProtocolError(
                f"dir {self.node}: unexpected InvAck tid={msg.tid} "
                f"(active={ctx.tid if ctx else None})"
            )
        key = (msg.line, msg.sharer)
        if key not in ctx.pending:
            if self._hardened:
                self._count_stale()  # duplicated InvAck for this commit
                self._salvage_ack_ride(msg)
                return
            raise ProtocolError(
                f"dir {self.node}: InvAck for unexpected {key} (tid {msg.tid})"
            )
        if msg.wb_words:
            # The invalidated previous owner returned its surviving words;
            # they must land in memory before ownership transfers.
            self.memory.write_words(msg.line, msg.wb_words)
            entry = self.state.entry(msg.line)
            if entry.owner == msg.sharer:
                entry.release_ownership()
                if self._hardened:
                    self._flush_requested.discard(msg.line)
            if self._hardened:
                self._clear_awaiting(
                    msg.line, msg.wb_words, msg.sharer, msg.wb_tid
                )
        ctx.pending.discard(key)
        if not ctx.pending:
            self._finish_commit()

    def _salvage_ack_ride(self, msg: InvAck) -> None:
        """A stale/duplicated InvAck can still carry the current owner's
        only copy of a line (the flush rode the ack).  Dropping the ack is
        right; dropping the data is not — route it through the ordinary
        write-back acceptance rule instead."""
        if msg.wb_words:
            self._handle_writeback(
                WriteBackMsg(
                    msg.sharer, msg.line, msg.wb_words, msg.wb_tid,
                    remove=False,
                )
            )

    def _finish_commit(self) -> None:
        ctx = self._active_commit
        assert ctx is not None
        write_through = self._wt_data.pop(ctx.tid, None)
        for entry in self.state.marked_for(ctx.tid):
            if self.config.write_through_commit:
                words = (write_through or {}).get(entry.line, {})
                self.memory.write_words(entry.line, words)
                entry.tid_tag = ctx.tid
                if self.config.granularity == "word":
                    entry.sharers.add(ctx.committer)
                else:
                    entry.sharers = {ctx.committer}
                entry.owner = None
                entry.clear_mark()
            else:
                if self._hardened:
                    self._note_commit_words(
                        entry.line, entry.marked_words, ctx.tid, ctx.committer
                    )
                entry.commit_to(
                    ctx.committer,
                    ctx.tid,
                    keep_sharers=self.config.granularity == "word",
                )
                if self._hardened and self._pending_forwards.get(entry.line):
                    # Loads were parked on a recall to the *previous*
                    # owner, whose data rode home on the InvAcks instead
                    # of answering the flush; re-recall from the new
                    # owner or the forwards wedge forever.
                    self._flush_requested.add(entry.line)
                    self._send(
                        ctx.committer, FlushRequest(self.node, entry.line)
                    )
        self.stats.commits_served += 1
        self.stats.occupancy_samples.append(self.engine.now - ctx.started_at)
        if self.event_log is not None:
            self.event_log.log(self.engine.now, "dir_commit", self.node,
                               tid=ctx.tid, committer=ctx.committer)
        self._send(ctx.committer, CommitAck(self.node, ctx.tid, ctx.attempt))
        self.state.drop_marks(ctx.tid)
        self._active_commit = None
        self.skipvec.complete_current()
        self._after_advance()

    def _note_commit_words(self, line: int, word_mask: int,
                           tid: int, committer: int) -> None:
        """Record the new architectural version of every committed word.

        Write-back commit: the data stays in the committer's cache, so
        each word joins ``_awaiting`` until a write-back (or InvAck
        ride) from its committer lands it in home memory.
        """
        versions = self._word_committer.setdefault(line, {})
        waiting = self._awaiting.setdefault(line, set())
        word = 0
        while word_mask:
            if word_mask & 1:
                versions[word] = (tid, committer)
                waiting.add(word)
            word_mask >>= 1
            word += 1

    def _handle_abort(self, msg: AbortMsg) -> None:
        ctx = self._active_commit
        if ctx is not None and ctx.tid == msg.tid:
            raise ProtocolError(
                f"dir {self.node}: abort from TID {msg.tid} after its commit message"
            )
        if self._hardened:
            if msg.tid < self.nstid:
                # The TID already finished here; just re-ack (the first
                # ack may have been the loss the retry is covering).
                self._count_stale()
                if msg.want_ack:
                    self._send(
                        msg.committer, AbortAck(self.node, msg.tid, msg.attempt)
                    )
                return
            if msg.attempt < self._mark_attempt.get(msg.tid, -1):
                # A retried abort from an older attempt must not clear
                # the newer attempt's marks at the same (retained) TID.
                self._count_stale()
                if msg.want_ack:
                    self._send(
                        msg.committer, AbortAck(self.node, msg.tid, msg.attempt)
                    )
                return
            if msg.retain and msg.attempt > self._aborted_attempt.get(msg.tid, -1):
                self._aborted_attempt[msg.tid] = msg.attempt
        for entry in self.state.marked_for(msg.tid):
            entry.clear_mark()
        self.state.drop_marks(msg.tid)
        self._wt_data.pop(msg.tid, None)
        self._first_contact.pop(msg.tid, None)
        self.stats.aborts_served += 1
        if self.event_log is not None:
            self.event_log.log(self.engine.now, "dir_abort", self.node,
                               tid=msg.tid, retain=msg.retain)
        if msg.want_ack:
            self._send(msg.committer, AbortAck(self.node, msg.tid, msg.attempt))
        if not msg.retain and self.skipvec.skip(msg.tid):
            self._after_advance()
        else:
            self._release_stalled_loads()

    # ------------------------------------------------------------------
    # post-advance housekeeping
    # ------------------------------------------------------------------

    def _after_advance(self) -> None:
        nstid = self.nstid
        if self._hardened and (self._aborted_attempt or self._mark_attempt):
            # Attempt-staleness records for passed TIDs can never match a
            # live message again (tid < nstid is caught first); drop them.
            for table in (self._aborted_attempt, self._mark_attempt):
                for tid in [t for t in table if t < nstid]:
                    del table[tid]
        if self._pending_probes:
            ready = [p for p in self._pending_probes if nstid >= p.tid]
            if ready:
                self._pending_probes = [
                    p for p in self._pending_probes if nstid < p.tid
                ]
                for probe in ready:
                    self._reply_probe(probe)
        self._release_stalled_loads()

    def _release_stalled_loads(self) -> None:
        if not self._stalled_loads:
            return
        released_lines = [
            line
            for line, waiting in self._stalled_loads.items()
            if waiting and not self.state.entry(line).marked
        ]
        for line in released_lines:
            waiting = self._stalled_loads.pop(line)
            for load in waiting:
                # Re-enqueue through the serve loop so each released load
                # pays directory occupancy again.
                self._queue.put(load)

    # ------------------------------------------------------------------
    # end-of-run checks
    # ------------------------------------------------------------------

    def quiescent_check(self) -> None:
        """Raise if protocol state is still in flight (hang diagnosis)."""
        problems = []
        if self._active_commit is not None:
            problems.append(f"active commit {self._active_commit.tid}")
        if self._pending_probes:
            problems.append(f"{len(self._pending_probes)} pending probes")
        stalled = sum(len(v) for v in self._stalled_loads.values())
        if stalled:
            problems.append(f"{stalled} stalled loads")
        forwards = sum(len(v) for v in self._pending_forwards.values())
        if forwards:
            problems.append(f"{forwards} pending forwards")
        awaiting = sum(len(v) for v in self._awaiting.values())
        if awaiting:
            problems.append(f"{awaiting} committed words not yet home")
        if problems:
            raise ProtocolError(f"dir {self.node} not quiescent: {', '.join(problems)}")
