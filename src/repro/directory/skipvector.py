"""The Now-Serving TID register and its Skip Vector (Figure 5).

A directory serves exactly one transaction ID at a time, in gap-free
ascending order.  Transactions with nothing to commit at this directory
send *skip* messages, possibly early and out of order; the Skip Vector
buffers them as a bitmap anchored at the currently served TID.  When the
current TID completes (commit, abort, or skip), the vector shifts through
every consecutively skipped TID and the Now-Serving TID advances by the
number of bits shifted — exactly the hardware behaviour in Figure 5.
"""

from __future__ import annotations


class SkipVector:
    """NSTID register plus skip bitmap.

    Bit ``i`` of the bitmap corresponds to TID ``nstid + i``; bit 0 set
    means the currently served TID is complete.  The bitmap is a Python
    int, so unlike the fixed-width hardware vector it cannot saturate; the
    high-water mark is tracked so a hardware sizing argument can be made
    from simulation results.
    """

    def __init__(self, first_tid: int = 1) -> None:
        self._nstid = first_tid
        self._bits = 0
        self.skips_received = 0
        self.stale_skips = 0
        self.max_width = 0

    @property
    def nstid(self) -> int:
        """The TID this directory is currently serving."""
        return self._nstid

    def is_skipped(self, tid: int) -> bool:
        """Whether a pending skip is buffered for ``tid``."""
        offset = tid - self._nstid
        return offset >= 0 and bool(self._bits >> offset & 1)

    def skip(self, tid: int) -> int:
        """Record that ``tid`` has nothing to commit here.

        Returns the number of TIDs the NSTID advanced (0 if the skip was
        buffered for later or was stale).  Stale skips (``tid`` already
        passed) are ignored: they arise from aborted transactions
        re-sending skips and from unordered delivery.
        """
        self.skips_received += 1
        offset = tid - self._nstid
        if offset < 0:
            self.stale_skips += 1
            return 0
        self._bits |= 1 << offset
        self.max_width = max(self.max_width, self._bits.bit_length())
        return self._drain()

    def complete_current(self) -> int:
        """The served TID finished (commit or abort); advance.

        Returns the number of TIDs advanced (>= 1).
        """
        self._bits |= 1
        return self._drain()

    def _drain(self) -> int:
        advanced = 0
        while self._bits & 1:
            self._bits >>= 1
            self._nstid += 1
            advanced += 1
        return advanced

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SkipVector(nstid={self._nstid}, bits={bin(self._bits)})"
