"""Command-line interface: run and inspect simulations without code.

Usage (also ``python -m repro <command>``):

    python -m repro list-apps
    python -m repro describe [-n 64]
    python -m repro run barnes -n 16 --scale 0.5 [--tape]
    python -m repro scaling specjbb2000 -n 1,8,32
    python -m repro latency equake --hops 1,3,8 -n 32
    python -m repro traffic swim -n 64
    python -m repro sweep barnes --grid link_latency=1,3,8 --jobs 4
    python -m repro chaos --quick
    python -m repro chaos --cases 200 --jobs 4 --no-cache
    python -m repro conform --cases 500 --seed 0 [--faults] [--jobs 4]
    python -m repro lint [--format json] [--baseline FILE]

Multi-run commands (``sweep``, ``chaos``, ``perf``) fan their
independent runs out over worker processes (``--jobs``, default: all
cores) and memoize results in the content-addressed cache under
``.repro_cache/`` (``--no-cache`` to bypass); results are bit-identical
at any ``--jobs`` setting.

Every run performs the full serial-replay serializability check before
reporting results.  All commands exit nonzero with a one-line
diagnostic on bad arguments or failed runs; ``--debug`` re-raises the
underlying traceback.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional, Sequence

from repro import APP_PROFILES, ScalableTCCSystem, SystemConfig, app_workload
from repro.analysis import (
    format_breakdown_figure,
    format_table,
    format_traffic_figure,
    run_latency_sweep,
    run_scaling,
)
from repro.stats import characteristics, speedup


def _int_list(text: str) -> List[int]:
    try:
        return [int(part) for part in text.split(",") if part]
    except ValueError:
        raise argparse.ArgumentTypeError(f"expected comma-separated ints, got {text!r}")


def _grid_value(text: str):
    for cast in (int, float):
        try:
            return cast(text)
        except ValueError:
            pass
    if text in ("true", "True"):
        return True
    if text in ("false", "False"):
        return False
    if text in ("none", "None"):
        return None
    return text


def _grid_axis(text: str):
    """Parse one ``--grid field=v1,v2,...`` axis."""
    if "=" not in text:
        raise argparse.ArgumentTypeError(
            f"expected field=v1,v2,..., got {text!r}"
        )
    key, _, values = text.partition("=")
    parsed = [_grid_value(part) for part in values.split(",") if part]
    if not parsed:
        raise argparse.ArgumentTypeError(f"no values for grid axis {key!r}")
    return key, parsed


def _add_runner_args(parser: argparse.ArgumentParser,
                     with_cache: bool = True) -> None:
    parser.add_argument("--jobs", type=int, default=None,
                        help="worker processes (default: all cores; "
                             "1 = in-process, no pickling)")
    if with_cache:
        parser.add_argument("--no-cache", action="store_true",
                            help="bypass the on-disk result cache")


def _cache_from(args):
    """--no-cache -> None (bypass); otherwise the default on-disk cache."""
    return None if getattr(args, "no_cache", False) else True


def _add_machine_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("-n", "--processors", type=int, default=16,
                        help="processor count (default 16)")
    parser.add_argument("--scale", type=float, default=0.5,
                        help="workload volume multiplier (default 0.5)")
    parser.add_argument("--link-latency", type=int, default=3,
                        help="mesh cycles per hop (default 3)")
    parser.add_argument("--backend", choices=["scalable", "token"],
                        default="scalable", help="commit backend")
    parser.add_argument("--granularity", choices=["word", "line"],
                        default="word", help="speculative-state granularity")
    parser.add_argument("--write-through", action="store_true",
                        help="write-through commit (ablation)")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--no-verify", action="store_true",
                        help="skip the serial-replay check (faster)")


def _config_from(args) -> SystemConfig:
    return SystemConfig(
        n_processors=args.processors,
        link_latency=args.link_latency,
        commit_backend=args.backend,
        granularity=args.granularity,
        write_through_commit=args.write_through,
        seed=args.seed,
    )


def _check_app(name: str) -> str:
    if name not in APP_PROFILES:
        raise SystemExit(
            f"unknown application {name!r}; try: {', '.join(sorted(APP_PROFILES))}"
        )
    return name


def cmd_list_apps(args) -> int:
    rows = []
    for name, profile in sorted(APP_PROFILES.items()):
        rows.append([
            name,
            str(profile.total_transactions),
            str(profile.tx_instructions),
            f"{profile.shared_fraction:.2f}",
            f"{profile.write_shared_fraction:.2f}",
            str(profile.barrier_every or "-"),
        ])
    print(format_table(
        ["application", "transactions", "tx insts", "shared rd frac",
         "shared wr frac", "barrier every"],
        rows,
    ))
    return 0


def cmd_describe(args) -> int:
    print(SystemConfig(n_processors=args.processors).describe())
    return 0


def cmd_run(args) -> int:
    name = _check_app(args.app)
    config = _config_from(args)
    if args.timeline:
        import dataclasses

        config = dataclasses.replace(config, event_log=True)
    system = ScalableTCCSystem(config)
    result = system.run(
        app_workload(name, scale=args.scale),
        verify=not args.no_verify,
    )
    print(f"{name} @ {config.n_processors} CPUs "
          f"({config.commit_backend} commit, {config.granularity} tracking)")
    print(f"  cycles       : {result.cycles:,}")
    print(f"  transactions : {result.committed_transactions} committed, "
          f"{result.total_violations} violated")
    print(f"  instructions : {result.committed_instructions:,}")
    print("  breakdown    : " + "  ".join(
        f"{k}={v * 100:.1f}%" for k, v in result.breakdown_fractions().items()
    ))
    bpi = result.bytes_per_instruction()
    print(f"  traffic      : {sum(bpi.values()):.3f} B/instr "
          f"(commit {bpi['commit']:.3f}, miss {bpi['miss']:.3f}, "
          f"wb {bpi['writeback']:.3f}, overhead {bpi['overhead']:.3f})")
    row = characteristics(name, result)
    print(f"  tx size p90  : {row.tx_size_p90:,.0f} inst; "
          f"wr-set {row.write_set_p90_kb:.2f} KB, rd-set {row.read_set_p90_kb:.2f} KB; "
          f"{row.dirs_per_commit_p90:.0f} dirs/commit")
    if args.tape:
        print()
        print(system.tape.report())
    if args.timeline:
        from repro.tracing import render_timeline

        print()
        print(render_timeline(system.events, config.n_processors,
                              width=96, end_time=result.cycles))
    if args.report:
        from repro.analysis import render_report

        text = render_report(name, result, system.tape.report())
        with open(args.report, "w") as handle:
            handle.write(text + "\n")
        print(f"\nreport written to {args.report}")
    return 0


def cmd_scaling(args) -> int:
    name = _check_app(args.app)
    counts = args.counts
    base = _config_from(args).scaled_to(counts[0])
    results = run_scaling(name, counts, base_config=base, scale=args.scale,
                          verify=not args.no_verify)
    series = {}
    speedups = {}
    baseline = results[counts[0]]
    for n, result in results.items():
        label = f"{name}@{n}"
        series[label] = result.breakdown_fractions()
        speedups[label] = speedup(baseline, result)
    print(format_breakdown_figure(
        f"{name}: scaling (normalized to {counts[0]} CPU(s))", series, speedups
    ))
    return 0


def cmd_latency(args) -> int:
    name = _check_app(args.app)
    results = run_latency_sweep(
        name, args.hops, n_processors=args.processors,
        base_config=_config_from(args), scale=args.scale,
        verify=not args.no_verify,
    )
    base = results[args.hops[0]].cycles
    rows = [
        [f"{lat} cy/hop", f"{result.cycles:,}", f"{result.cycles / base:.2f}x"]
        for lat, result in results.items()
    ]
    print(format_table(["link latency", "cycles", "slowdown"], rows))
    return 0


def cmd_perf(args) -> int:
    from repro.analysis.perf import (
        QUICK_APPS,
        format_report,
        run_perf,
        save_report,
    )

    if args.apps:
        for app in args.apps:
            _check_app(app)

    def pick(value, default):
        return default if value is None else value

    if args.quick:
        report = run_perf(apps=args.apps or list(QUICK_APPS),
                          n_processors=pick(args.processors, 8),
                          scale=pick(args.perf_scale, 0.25),
                          repeats=pick(args.repeats, 1), warmup=0,
                          jobs=args.jobs)
    else:
        report = run_perf(apps=args.apps or None,
                          n_processors=pick(args.processors, 32),
                          scale=pick(args.perf_scale, 1.0),
                          repeats=pick(args.repeats, 3),
                          jobs=args.jobs)
    print(format_report(report))
    if args.out:
        save_report(report, args.out)
        print(f"\nreport written to {args.out}")
    return 0


def cmd_chaos(args) -> int:
    from repro.faults.chaos import format_report, run_chaos

    cases = 20 if args.quick else args.cases
    if cases < 1:
        raise SystemExit("chaos: --cases must be >= 1")

    def progress(outcome):
        if args.verbose or not outcome.ok:
            marker = "ok  " if outcome.ok else "FAIL"
            print(f"  {marker} seed={outcome.seed} {outcome.workload}"
                  f"@{outcome.n_processors} {outcome.outcome} "
                  f"cycles={outcome.cycles}")

    # --quick is the CI smoke: turn on paranoid invariant checking so
    # the 20 cases also sweep I1-I5 between engine slices.
    paranoid = args.paranoid or args.quick
    report = run_chaos(cases=cases, seed0=args.seed0, progress=progress,
                       jobs=args.jobs, cache=_cache_from(args),
                       full=args.full, paranoid=paranoid)
    print(format_report(report))
    if args.out:
        import json

        with open(args.out, "w") as handle:
            json.dump(report, handle, indent=2)
        print(f"report written to {args.out}")
    return 0 if report["failed"] == 0 else 1


def cmd_conform(args) -> int:
    from repro.conform.harness import format_report, run_conform

    cases = 25 if args.quick else args.cases
    if cases < 1:
        raise SystemExit("conform: --cases must be >= 1")

    def progress(outcome):
        if args.verbose or not outcome.ok:
            marker = "ok  " if outcome.ok else "FAIL"
            print(f"  {marker} seed={outcome.seed} "
                  f"{outcome.n_processors}p/{outcome.transactions}tx "
                  f"{outcome.outcome} cycles={outcome.cycles}")

    report = run_conform(
        cases=cases, seed0=args.seed0, faults=args.faults,
        progress=progress, jobs=args.jobs, cache=_cache_from(args),
        shrink=not args.no_shrink, save_dir=args.save_failures,
    )
    print(format_report(report))
    if args.out:
        import json

        with open(args.out, "w") as handle:
            json.dump(report, handle, indent=2)
        print(f"report written to {args.out}")
    return 0 if report["failed"] == 0 else 1


def cmd_lint(args) -> int:
    from repro.lint import Baseline, run_lint
    from repro.lint.report import format_json, format_text

    result = run_lint(root=args.root, baseline_path=args.baseline)
    if args.write_baseline:
        Baseline.from_findings(result.findings).save(args.write_baseline)
        print(f"baseline with {len(result.findings)} finding(s) "
              f"written to {args.write_baseline}")
        return 0
    text = (format_json(result).rstrip("\n") if args.format == "json"
            else format_text(result, verbose=args.verbose))
    print(text)
    if args.out:
        with open(args.out, "w") as handle:
            handle.write(format_json(result))
        print(f"json report written to {args.out}", file=sys.stderr)
    return 0 if result.ok else 1


def cmd_sweep(args) -> int:
    from repro.analysis.sweep import Sweep

    name = _check_app(args.app)
    grid = {}
    for key, values in args.grid or []:
        grid[key] = values
    if not grid:
        raise SystemExit(
            "sweep: need at least one --grid field=v1,v2,... axis "
            "(e.g. --grid link_latency=1,3,8)"
        )
    sweep = Sweep(
        _config_from(args),
        grid,
        ("app", {"name": name, "scale": args.scale}),
        verify=not args.no_verify,
    )
    sweep.run(jobs=args.jobs, cache=_cache_from(args))
    print(sweep.as_table())
    if sweep.last_run_stats is not None:
        print(sweep.last_run_stats.describe())
    if args.best:
        best = sweep.best(args.best)
        print(f"best {args.best}: {best.overrides} "
              f"({args.best}={best.row()[args.best]})")
    if args.csv:
        with open(args.csv, "w") as handle:
            handle.write(sweep.as_csv())
        print(f"csv written to {args.csv}")
    return 0


def cmd_traffic(args) -> int:
    name = _check_app(args.app)
    config = _config_from(args)
    system = ScalableTCCSystem(config)
    result = system.run(app_workload(name, scale=args.scale),
                        verify=not args.no_verify)
    print(format_traffic_figure(
        f"{name} @ {config.n_processors} CPUs",
        {name: result.bytes_per_instruction()},
    ))
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Scalable TCC simulator (HPCA 2007 reproduction)",
    )
    parser.add_argument("--debug", action="store_true",
                        help="re-raise errors with a full traceback")
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list-apps", help="list the application profiles") \
        .set_defaults(func=cmd_list_apps)

    p = sub.add_parser("describe", help="print the Table 2 machine description")
    p.add_argument("-n", "--processors", type=int, default=64)
    p.set_defaults(func=cmd_describe)

    p = sub.add_parser("run", help="run one application once")
    p.add_argument("app")
    _add_machine_args(p)
    p.add_argument("--tape", action="store_true",
                   help="print the TAPE violation profile")
    p.add_argument("--report", metavar="FILE",
                   help="write a full markdown report to FILE")
    p.add_argument("--timeline", action="store_true",
                   help="render a per-processor ASCII timeline")
    p.set_defaults(func=cmd_run)

    p = sub.add_parser("scaling", help="run a processor-count sweep")
    p.add_argument("app")
    _add_machine_args(p)
    p.add_argument("--counts", dest="counts", type=_int_list,
                   default=[1, 8, 16], help="comma-separated CPU counts")
    p.set_defaults(func=cmd_scaling)

    p = sub.add_parser("latency", help="run a link-latency sweep (Figure 8)")
    p.add_argument("app")
    _add_machine_args(p)
    p.add_argument("--hops", type=_int_list, default=[1, 3, 8],
                   help="comma-separated cycles-per-hop values")
    p.set_defaults(func=cmd_latency)

    p = sub.add_parser("traffic", help="report bytes/instruction (Figure 9)")
    p.add_argument("app")
    _add_machine_args(p)
    p.set_defaults(func=cmd_traffic)

    p = sub.add_parser(
        "sweep",
        help="Cartesian config sweep over one application "
             "(parallel + cached)",
    )
    p.add_argument("app")
    _add_machine_args(p)
    p.add_argument("--grid", action="append", type=_grid_axis,
                   metavar="FIELD=V1,V2,...",
                   help="one sweep axis (repeatable), e.g. "
                        "--grid link_latency=1,3,8")
    p.add_argument("--best", metavar="METRIC", default=None,
                   help="also print the point minimizing METRIC "
                        "(e.g. cycles)")
    p.add_argument("--csv", metavar="FILE", default=None,
                   help="write the sweep table to FILE as CSV")
    _add_runner_args(p)
    p.set_defaults(func=cmd_sweep)

    p = sub.add_parser(
        "chaos",
        help="fault-injection campaign: randomized fault plans over "
             "high-contention workloads, full correctness checks",
    )
    p.add_argument("--cases", type=int, default=200,
                   help="number of seeded cases to run (default 200)")
    p.add_argument("--seed0", type=int, default=0,
                   help="first case seed (case i uses seed0+i)")
    p.add_argument("--quick", action="store_true",
                   help="CI smoke: 20 cases, paranoid invariant checks")
    p.add_argument("--paranoid", action="store_true",
                   help="check machine-wide invariants (I1-I5) between "
                        "engine slices (implied by --quick)")
    p.add_argument("--verbose", action="store_true",
                   help="print every case, not just failures")
    p.add_argument("--out", metavar="FILE", default=None,
                   help="write the JSON campaign report to FILE")
    p.add_argument("--full", action="store_true",
                   help="include per-case results in the JSON report "
                        "(default: summary + failures only)")
    _add_runner_args(p)
    p.set_defaults(func=cmd_chaos)

    p = sub.add_parser(
        "conform",
        help="differential conformance campaign: seeded random programs "
             "run on the full machine and diffed against the reference "
             "oracle (commit order, read witnesses, final memory)",
    )
    p.add_argument("--cases", type=int, default=200,
                   help="number of seeded cases to run (default 200)")
    p.add_argument("--seed", dest="seed0", type=int, default=0,
                   help="first case seed (case i uses seed+i)")
    p.add_argument("--faults", action="store_true",
                   help="compose each case with a seeded fault plan "
                        "(drops/dups/delays/reorders + node outages)")
    p.add_argument("--quick", action="store_true",
                   help="CI smoke: 25 cases")
    p.add_argument("--verbose", action="store_true",
                   help="print every case, not just failures")
    p.add_argument("--no-shrink", action="store_true",
                   help="skip counterexample shrinking on failure")
    p.add_argument("--save-failures", metavar="DIR",
                   default="conform_failures",
                   help="write shrunk counterexample files here "
                        "(default conform_failures/)")
    p.add_argument("--out", metavar="FILE", default=None,
                   help="write the JSON campaign report to FILE "
                        "(e.g. CONFORM_report.json)")
    _add_runner_args(p)
    p.set_defaults(func=cmd_conform)

    p = sub.add_parser(
        "lint",
        help="static determinism & protocol-contract analysis "
             "(see docs/LINTING.md)",
    )
    p.add_argument("--format", choices=["text", "json"], default="text",
                   help="report format (default text)")
    p.add_argument("--baseline", metavar="FILE", default=None,
                   help="JSON baseline of grandfathered findings")
    p.add_argument("--write-baseline", metavar="FILE", default=None,
                   help="write the current findings as a baseline and exit 0")
    p.add_argument("--root", metavar="DIR", default=None,
                   help="package directory to lint "
                        "(default: the installed repro package)")
    p.add_argument("--out", metavar="FILE", default=None,
                   help="also write the JSON report to FILE")
    p.add_argument("--verbose", action="store_true",
                   help="also list suppressed and baselined findings")
    p.set_defaults(func=cmd_lint)

    p = sub.add_parser(
        "perf",
        help="wall-clock kernel benchmark (events/sec; Fig. 7 @ 32 CPUs)",
    )
    p.add_argument("--quick", action="store_true",
                   help="seconds-long smoke: 3 apps @ 8 CPUs, scale 0.25")
    p.add_argument("--apps", type=lambda t: [a for a in t.split(",") if a],
                   default=None, help="comma-separated app subset")
    p.add_argument("-n", "--processors", type=int, default=None,
                   help="processor count (default 32, quick: 8)")
    p.add_argument("--scale", dest="perf_scale", type=float, default=None,
                   help="workload volume (default 1.0, quick: 0.25)")
    p.add_argument("--repeats", type=int, default=None,
                   help="timed repeats per app (default 3, quick: 1)")
    p.add_argument("--out", metavar="FILE", default=None,
                   help="write the JSON report to FILE (e.g. BENCH_kernel.json)")
    _add_runner_args(p, with_cache=False)
    p.set_defaults(func=cmd_perf)

    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except BrokenPipeError:
        # Output piped into a pager/head that closed early: not an error.
        import os

        try:
            sys.stdout.close()
        except BrokenPipeError:
            os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        return 0
    except KeyboardInterrupt:
        print("interrupted", file=sys.stderr)
        return 130
    except Exception as exc:
        # Every operational failure — bad config values, a workload that
        # cannot complete, a watchdog-diagnosed stall — becomes a nonzero
        # exit with a one-line actionable message instead of a traceback.
        if args.debug:
            raise
        from repro.faults.watchdog import WatchdogStall

        if isinstance(exc, WatchdogStall):
            print(f"error: {exc}", file=sys.stderr)
            print("hint: the run stalled; the report above shows where "
                  "each processor and directory is stuck", file=sys.stderr)
        else:
            first_line = str(exc).splitlines()[0] if str(exc) else repr(exc)
            print(f"error: {type(exc).__name__}: {first_line}",
                  file=sys.stderr)
            print("hint: re-run with --debug for the full traceback",
                  file=sys.stderr)
        return 1


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
