"""Unit tests for the per-node physical memory."""

import pytest

from repro.memory import AddressMap, MainMemory


@pytest.fixture
def mem():
    return MainMemory(AddressMap())


def test_untouched_memory_reads_zero(mem):
    assert mem.read_line(42) == [0] * 8
    assert mem.read_word(42, 3) == 0


def test_write_then_read_line(mem):
    data = list(range(8))
    mem.write_line(5, data)
    assert mem.read_line(5) == data


def test_read_line_returns_copy(mem):
    mem.write_line(1, list(range(8)))
    copy = mem.read_line(1)
    copy[0] = 999
    assert mem.read_line(1)[0] == 0


def test_write_line_stores_copy(mem):
    data = list(range(8))
    mem.write_line(1, data)
    data[0] = 999
    assert mem.read_line(1)[0] == 0


def test_write_words_merges(mem):
    mem.write_line(7, [1] * 8)
    mem.write_words(7, {2: 20, 5: 50})
    assert mem.read_line(7) == [1, 1, 20, 1, 1, 50, 1, 1]


def test_write_words_on_fresh_line(mem):
    mem.write_words(9, {0: 5})
    assert mem.read_line(9) == [5, 0, 0, 0, 0, 0, 0, 0]


def test_wrong_length_rejected(mem):
    with pytest.raises(ValueError):
        mem.write_line(0, [1, 2, 3])


def test_snapshot_is_deep(mem):
    mem.write_line(3, [7] * 8)
    snap = mem.snapshot()
    snap[3][0] = 0
    assert mem.read_word(3, 0) == 7


def test_access_counters(mem):
    mem.write_line(0, [0] * 8)
    mem.read_line(0)
    mem.read_line(1)
    assert mem.writes == 1
    assert mem.reads == 2


def test_resident_lines(mem):
    assert mem.resident_lines == 0
    mem.write_line(0, [0] * 8)
    mem.write_words(1, {0: 1})
    assert mem.resident_lines == 2
