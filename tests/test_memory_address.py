"""Unit tests for address arithmetic and home mapping."""

import pytest

from repro.memory import AddressMap, FirstTouchMapping, InterleavedMapping


class TestAddressMap:
    def test_default_geometry(self):
        amap = AddressMap()
        assert amap.line_size == 32
        assert amap.word_size == 4
        assert amap.words_per_line == 8

    def test_line_of_splits_at_line_boundaries(self):
        amap = AddressMap(line_size=32)
        assert amap.line_of(0) == 0
        assert amap.line_of(31) == 0
        assert amap.line_of(32) == 1
        assert amap.line_of(95) == 2

    def test_word_of_cycles_within_line(self):
        amap = AddressMap(line_size=32, word_size=4)
        assert amap.word_of(0) == 0
        assert amap.word_of(4) == 1
        assert amap.word_of(28) == 7
        assert amap.word_of(32) == 0

    def test_addr_of_is_inverse(self):
        amap = AddressMap()
        for line in (0, 1, 17, 1000):
            for word in range(amap.words_per_line):
                addr = amap.addr_of(line, word)
                assert amap.line_of(addr) == line
                assert amap.word_of(addr) == word

    def test_word_bit_masks(self):
        amap = AddressMap()
        assert amap.word_bit(0) == 1
        assert amap.word_bit(4) == 2
        assert amap.word_bit(28) == 128

    def test_full_line_mask(self):
        assert AddressMap(line_size=32, word_size=4).full_line_mask == 0xFF
        assert AddressMap(line_size=64, word_size=8).full_line_mask == 0xFF

    def test_words_in_mask(self):
        amap = AddressMap()
        assert list(amap.words_in_mask(0b1010_0001)) == [0, 5, 7]
        assert list(amap.words_in_mask(0)) == []

    def test_rejects_non_power_of_two(self):
        with pytest.raises(ValueError):
            AddressMap(line_size=24)
        with pytest.raises(ValueError):
            AddressMap(word_size=3)
        with pytest.raises(ValueError):
            AddressMap(line_size=4, word_size=8)


class TestInterleavedMapping:
    def test_round_robin_homes(self):
        mapping = InterleavedMapping(4)
        assert [mapping.home(line) for line in range(8)] == [0, 1, 2, 3, 0, 1, 2, 3]

    def test_touch_is_a_no_op(self):
        mapping = InterleavedMapping(4)
        assert mapping.touch(5, node=3) == mapping.home(5) == 1

    def test_single_node(self):
        mapping = InterleavedMapping(1)
        assert all(mapping.home(line) == 0 for line in range(10))

    def test_rejects_zero_nodes(self):
        with pytest.raises(ValueError):
            InterleavedMapping(0)


class TestFirstTouchMapping:
    def test_first_toucher_becomes_home(self):
        mapping = FirstTouchMapping(n_nodes=4, page_size=4096, line_size=32)
        assert mapping.touch(0, node=2) == 2
        assert mapping.home(0) == 2

    def test_whole_page_shares_home(self):
        mapping = FirstTouchMapping(n_nodes=4, page_size=4096, line_size=32)
        mapping.touch(0, node=3)
        # 4096 / 32 = 128 lines per page, all homed at node 3.
        assert mapping.home(127) == 3
        assert mapping.home(128) != 3 or mapping.home(128) == 128 // 128 % 4

    def test_second_touch_does_not_move_page(self):
        mapping = FirstTouchMapping(n_nodes=4)
        mapping.touch(0, node=1)
        assert mapping.touch(5, node=2) == 1

    def test_untouched_page_falls_back_to_interleave(self):
        mapping = FirstTouchMapping(n_nodes=4, page_size=4096, line_size=32)
        # Page p of untouched line homes at p % nodes.
        assert mapping.home(128 * 7) == 7 % 4

    def test_placed_pages_counter(self):
        mapping = FirstTouchMapping(n_nodes=2)
        mapping.touch(0, node=0)
        mapping.touch(4096 // 32, node=1)
        assert mapping.placed_pages == 2

    def test_page_size_must_cover_lines(self):
        with pytest.raises(ValueError):
            FirstTouchMapping(n_nodes=2, page_size=100, line_size=32)
