"""Integration smoke tests: every application profile runs end-to-end.

Each run is serializability-verified by the system; these tests pin the
per-application behaviour the profiles were designed to produce.
"""

import pytest

from repro import APP_PROFILES, ScalableTCCSystem, SystemConfig, app_workload


@pytest.mark.parametrize("app", sorted(APP_PROFILES))
def test_every_app_runs_and_verifies(app):
    system = ScalableTCCSystem(SystemConfig(n_processors=4))
    workload = app_workload(app, scale=0.1)
    result = system.run(workload, max_cycles=500_000_000)
    assert result.committed_transactions == workload.profile.total_transactions
    assert result.cycles > 0
    assert result.committed_instructions > 0


@pytest.mark.parametrize("app", ["barnes", "equake", "specjbb2000"])
def test_apps_scale_down_work_with_more_processors(app):
    results = {}
    for n in (1, 4):
        system = ScalableTCCSystem(SystemConfig(n_processors=n))
        results[n] = system.run(
            app_workload(app, scale=0.1), max_cycles=500_000_000
        )
    assert results[4].cycles < results[1].cycles


def test_specjbb_has_no_violations_at_small_scale():
    system = ScalableTCCSystem(SystemConfig(n_processors=8))
    result = system.run(app_workload("specjbb2000", scale=0.2),
                        max_cycles=500_000_000)
    assert result.total_violations == 0


def test_cluster_ga_produces_violations():
    system = ScalableTCCSystem(SystemConfig(n_processors=8))
    result = system.run(app_workload("cluster_ga", scale=0.5),
                        max_cycles=500_000_000)
    assert result.total_violations > 0


def test_radix_touches_many_directories():
    system = ScalableTCCSystem(SystemConfig(n_processors=8))
    result = system.run(app_workload("radix", scale=0.2),
                        max_cycles=500_000_000)
    samples = [d for s in result.proc_stats for d in s.dirs_touched]
    assert max(samples) >= 6  # most of the 8 directories


def test_swim_transactions_are_huge():
    system = ScalableTCCSystem(SystemConfig(n_processors=2))
    result = system.run(app_workload("swim", scale=0.05),
                        max_cycles=500_000_000)
    sizes = [t for s in result.proc_stats for t in s.tx_instructions]
    assert max(sizes) > 30_000


def test_app_under_token_backend():
    system = ScalableTCCSystem(
        SystemConfig(n_processors=4, commit_backend="token")
    )
    workload = app_workload("water_spatial", scale=0.1)
    result = system.run(workload, max_cycles=500_000_000)
    assert result.committed_transactions == workload.profile.total_transactions


def test_app_at_line_granularity():
    system = ScalableTCCSystem(
        SystemConfig(n_processors=4, granularity="line")
    )
    workload = app_workload("barnes", scale=0.1)
    result = system.run(workload, max_cycles=500_000_000)
    assert result.committed_transactions == workload.profile.total_transactions
