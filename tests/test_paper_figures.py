"""The paper's worked examples (Figures 2 and 3) as executable tests.

Figure 2: P1 commits a line homed at Directory 0 while P2, which
speculatively read that line, violates and restarts; later P2 reloads
the line and the directory recalls it from its new owner.

Figure 3: two transactions committing in parallel to different
directories — successful when their sets are disjoint (top scenario),
serialized with the higher-TID transaction violated when they overlap
(bottom scenario).

These tests drive full systems with scripted schedules and assert the
protocol-visible behaviour the figures illustrate.
"""

import pytest

from repro import ScalableTCCSystem, SystemConfig, Transaction
from repro.workloads.base import BARRIER, Workload

PAGE = 4096
LINE = 32


class Scripted(Workload):
    def __init__(self, schedules):
        self.schedules = schedules

    def schedule(self, proc, n_procs):
        return iter(self.schedules[proc])


def build(schedules, **kwargs):
    kwargs.setdefault("n_processors", len(schedules))
    kwargs.setdefault("ordered_network", True)
    system = ScalableTCCSystem(SystemConfig(**kwargs))
    return system


class TestFigure2:
    """P1 and P2 both read line X (homed at dir 1); P1 writes and commits
    it; P2 — still executing on the stale read — must violate, re-execute
    against the committed value, and the directory must forward P2's
    reload from the new owner P1."""

    def make_schedules(self):
        # Page 0 is first-touched by P1 -> homed at node... first touch
        # assigns by toucher; both touch it, ordering decides. The homes
        # don't change the behaviour under test.
        x = 0  # line X, word 0
        p1 = [Transaction(1, [("c", 10), ("ld", x), ("st", x, 99)])]
        # P2 computes long enough that P1's commit lands mid-transaction.
        p2 = [Transaction(2, [("ld", x), ("c", 2000), ("add", x, 1)])]
        return [p1, p2]

    def test_p2_violates_and_reexecutes(self):
        system = build(self.make_schedules())
        result = system.run(Scripted(self.make_schedules()),
                            max_cycles=50_000_000)
        p2 = result.proc_stats[1]
        assert p2.violations >= 1          # the Figure 2e violation
        assert p2.committed_transactions == 1
        # Serial outcome: P2's increment applies over P1's 99.
        assert result.memory_image[0][0] == 100

    def test_reload_forwarded_from_owner(self):
        system = build(self.make_schedules())
        result = system.run(Scripted(self.make_schedules()),
                            max_cycles=50_000_000)
        home = system.mapping.home(0)
        # Figure 2f: the directory recalled the line from its owner at
        # least once (P2's post-violation reload or the commit dance).
        assert system.directories[home].stats.loads_forwarded >= 1

    def test_invalidation_sent_only_to_sharer(self):
        system = build(self.make_schedules())
        result = system.run(Scripted(self.make_schedules()),
                            max_cycles=50_000_000)
        total_invs = sum(d.stats.invalidations_sent for d in system.directories)
        assert total_invs >= 1  # P2 (sharer) was invalidated


class TestFigure3Success:
    """Top scenario: P1 writes data homed at directory A, P2 writes data
    homed at directory B; no overlap — both commit in parallel and
    nobody violates."""

    def make_schedules(self):
        line_a = 0               # page 0 -> first touched by P1
        line_b = PAGE * 64       # a different page -> touched by P2
        p1 = [Transaction(1, [("c", 50), ("st", line_a, 1)])]
        p2 = [Transaction(2, [("c", 50), ("st", line_b, 2)])]
        return [p1, p2]

    def test_no_violations_and_parallel_commits(self):
        system = build(self.make_schedules())
        result = system.run(Scripted(self.make_schedules()),
                            max_cycles=50_000_000)
        assert result.total_violations == 0
        served = sorted(d.stats.commits_served for d in system.directories)
        assert served == [1, 1]  # one commit at each directory

    def test_skip_messages_cover_the_other_directory(self):
        system = build(self.make_schedules())
        system.run(Scripted(self.make_schedules()), max_cycles=50_000_000)
        # Every directory saw both TIDs: one as a commit, one as a skip.
        for directory in system.directories:
            assert directory.nstid == 3
            assert directory.stats.skips_processed >= 1


class TestFigure3Failure:
    """Bottom scenario: P2 read a word that P1 commits.  The two commits
    serialize on P1's directory and P2 — holding the higher TID — is
    violated, aborts its commit attempt, and succeeds on retry."""

    def make_schedules(self):
        shared = 0          # both write/read data on page 0
        other = PAGE * 64   # P2 also writes its own page
        p1 = [Transaction(1, [("c", 400), ("st", shared, 7)])]
        # P2 reads the shared word early, then does enough work for P1's
        # commit to land while P2 is still pre-commit.
        p2 = [Transaction(2, [("ld", shared), ("c", 1200), ("st", other, 5)])]
        return [p1, p2]

    def test_higher_tid_loses_and_retries(self):
        system = build(self.make_schedules())
        result = system.run(Scripted(self.make_schedules()),
                            max_cycles=50_000_000)
        p2 = result.proc_stats[1]
        assert p2.violations >= 1
        assert p2.committed_transactions == 1
        # P2's final (committed) read observed P1's value.
        record = next(r for r in result.commit_log if r.tx.tx_id == 2)
        assert record.reads[0] == (0, 0, 7)

    def test_aborted_attempt_cleared_marks(self):
        system = build(self.make_schedules())
        system.run(Scripted(self.make_schedules()), max_cycles=50_000_000)
        # After the run no line anywhere is still marked.
        for directory in system.directories:
            for entry in directory.state.entries():
                assert not entry.marked

    def test_lower_tid_would_not_violate(self):
        """Figure 3's closing note: if the reader held the *lower* TID,
        the commits would serialize without any violation.  Give the
        reader a head start so it acquires its TID first."""
        shared = 0
        p1 = [Transaction(1, [("c", 3000), ("st", shared, 7)])]
        p2 = [Transaction(2, [("ld", shared), ("c", 10), ("st", PAGE * 64, 5)])]
        system = build([p1, p2])
        result = system.run(Scripted([p1, p2]), max_cycles=50_000_000)
        assert result.total_violations == 0
        # The reader serialized *before* the writer: it read 0, and the
        # final memory holds the writer's 7.
        record = next(r for r in result.commit_log if r.tx.tx_id == 2)
        assert record.reads[0] == (0, 0, 0)
        assert result.memory_image[0][0] == 7
