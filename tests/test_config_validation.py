"""Construction-time validation of SystemConfig (robustness satellite).

A bad knob must fail loudly at construction with a clear message, not
surface later as a nonsense simulation (negative latencies silently
reordering events, probabilities above 1 always firing, ...).
"""

import pytest

from repro.core.config import SystemConfig
from repro.faults import FaultPlan, PacketFault


@pytest.mark.parametrize("kwargs", [
    dict(n_processors=0),
    dict(n_processors=-4),
    dict(l1_latency=-1),
    dict(l2_latency=-1),
    dict(link_latency=-1),
    dict(router_latency=-1),
    dict(local_latency=-1),
    dict(directory_latency=-1),
    dict(memory_latency=-1),
    dict(network_jitter=-1),
    dict(line_size=0),
    dict(word_size=0),
    dict(l1_size=0),
    dict(l1_ways=0),
    dict(l2_size=0),
    dict(l2_ways=0),
    dict(page_size=0),
    dict(link_bytes_per_cycle=0),
    dict(tid_vendor_node=-1),
    dict(n_processors=4, tid_vendor_node=4),
    dict(network_jitter_source="quantum"),
    dict(retry_timeout=0),
    dict(retry_backoff=0),
    dict(retry_timeout_cap=10),  # below the default retry_timeout
    dict(watchdog_interval=0),
    dict(watchdog_stall_checks=0),
    dict(livelock_abort_threshold=0),
    dict(fault_plan="lots of drops please"),
    dict(fault_plan=FaultPlan(), commit_backend="token"),
])
def test_invalid_configs_rejected_at_construction(kwargs):
    with pytest.raises(ValueError):
        SystemConfig(**kwargs)


def test_fault_probability_validated_in_the_plan():
    with pytest.raises(ValueError, match=r"\[0, 1\]"):
        FaultPlan(packet_faults=(PacketFault("drop", 1.7),))


def test_zero_latencies_are_legal():
    # zero is a meaningful ablation value; only negatives are nonsense
    config = SystemConfig(link_latency=0, router_latency=0, network_jitter=0)
    assert config.link_latency == 0


def test_hardening_flags_resolve():
    assert not SystemConfig().protocol_hardened
    assert SystemConfig(fault_plan=FaultPlan()).protocol_hardened
    assert not SystemConfig(fault_plan=FaultPlan(),
                            harden_protocol=False).protocol_hardened
    assert SystemConfig(harden_protocol=True).protocol_hardened
    assert not SystemConfig(harden_protocol=True).watchdog_active
