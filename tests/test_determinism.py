"""Determinism guard: identical seeds must give bit-identical runs.

Every performance optimisation of the simulator kernel (same-cycle FIFO,
calendar buckets, memoized routing, cached scan orders) is required to
preserve exact event ordering.  This test pins that contract: running
the same seeded workload twice — in fresh systems — must reproduce the
cycle count, commit/violation totals, and traffic byte counts exactly.
"""

import pytest

from repro import ScalableTCCSystem, SystemConfig, app_workload

APP = "barnes"


def _fingerprint(n_processors, seed, **overrides):
    config = SystemConfig(n_processors=n_processors, seed=seed, **overrides)
    system = ScalableTCCSystem(config)
    result = system.run(app_workload(APP, scale=0.25), verify=False)
    stats = system.network.stats
    return {
        "cycles": result.cycles,
        "committed": result.committed_transactions,
        "violations": result.total_violations,
        "instructions": result.committed_instructions,
        "traffic_bytes": stats.total_bytes,
        "bytes_by_class": dict(stats.bytes_by_class),
        "packets": stats.packets,
    }


@pytest.mark.parametrize("n", [8, 32])
def test_repeat_runs_are_bit_identical(n):
    assert _fingerprint(n, seed=0) == _fingerprint(n, seed=0)


def test_different_seeds_differ():
    # Sanity check that the fingerprint is sensitive at all: an unordered
    # network draws jitter from the seed, so cycle counts should move.
    a = _fingerprint(8, seed=0)
    b = _fingerprint(8, seed=12345)
    assert a != b


def test_xorshift_jitter_mode_is_deterministic():
    kwargs = {"network_jitter_source": "xorshift"}
    assert _fingerprint(8, seed=3, **kwargs) == _fingerprint(8, seed=3, **kwargs)
