"""Determinism guard: identical seeds must give bit-identical runs.

Every performance optimisation of the simulator kernel (same-cycle FIFO,
calendar buckets, memoized routing, cached scan orders) is required to
preserve exact event ordering.  This test pins that contract: running
the same seeded workload twice — in fresh systems — must reproduce the
cycle count, commit/violation totals, and traffic byte counts exactly.
"""

import pytest

from repro import ScalableTCCSystem, SystemConfig, app_workload

APP = "barnes"


def _fingerprint(n_processors, seed, **overrides):
    config = SystemConfig(n_processors=n_processors, seed=seed, **overrides)
    system = ScalableTCCSystem(config)
    result = system.run(app_workload(APP, scale=0.25), verify=False)
    stats = system.network.stats
    return {
        "cycles": result.cycles,
        "committed": result.committed_transactions,
        "violations": result.total_violations,
        "instructions": result.committed_instructions,
        "traffic_bytes": stats.total_bytes,
        "bytes_by_class": dict(stats.bytes_by_class),
        "packets": stats.packets,
    }


@pytest.mark.parametrize("n", [8, 32])
def test_repeat_runs_are_bit_identical(n):
    assert _fingerprint(n, seed=0) == _fingerprint(n, seed=0)


def test_different_seeds_differ():
    # Sanity check that the fingerprint is sensitive at all: an unordered
    # network draws jitter from the seed, so cycle counts should move.
    a = _fingerprint(8, seed=0)
    b = _fingerprint(8, seed=12345)
    assert a != b


def test_xorshift_jitter_mode_is_deterministic():
    kwargs = {"network_jitter_source": "xorshift"}
    assert _fingerprint(8, seed=3, **kwargs) == _fingerprint(8, seed=3, **kwargs)


# Historical fingerprints, pinned.  The fault-injection subsystem and
# the hardened protocol paths must be *bit-inert* when no fault plan is
# configured: if any of these numbers move, a supposedly-gated change
# leaked into the fault-free event stream.
#
# Re-pinned when `repro lint` (det-unordered-iter) replaced raw set
# iteration in the commit engine and directory with sorted() — a
# deliberate, reviewed event-order change that removes the last
# dependence on hash-table layout.
_PINNED = {
    8: dict(cycles=29_208, committed=64, violations=0,
            instructions=121_032, traffic_bytes=68_681, packets=3_120),
    32: dict(cycles=11_307, committed=64, violations=1,
             instructions=126_353, traffic_bytes=75_583, packets=4_864),
}


@pytest.mark.parametrize("n", [8, 32])
def test_fault_free_runs_match_pinned_fingerprints(n):
    fingerprint = _fingerprint(n, seed=0)
    observed = {key: fingerprint[key] for key in _PINNED[n]}
    assert observed == _PINNED[n]


def _drop_dup_plan(seed):
    from repro.faults import FaultPlan, PacketFault

    return FaultPlan(
        packet_faults=(
            PacketFault("drop", 0.05),
            PacketFault("dup", 0.05, delay=120),
            PacketFault("delay", 0.03, delay=150),
            PacketFault("reorder", 0.03, delay=200),
        ),
        seed=seed,
    )


def test_faulty_runs_are_bit_identical():
    kwargs = {"fault_plan": _drop_dup_plan(11)}
    assert _fingerprint(8, seed=0, **kwargs) == _fingerprint(8, seed=0, **kwargs)


def test_fault_plan_seed_changes_the_run():
    a = _fingerprint(8, seed=0, fault_plan=_drop_dup_plan(11))
    b = _fingerprint(8, seed=0, fault_plan=_drop_dup_plan(12))
    assert a != b
