"""Property-based tests (hypothesis) on protocol invariants.

The heavyweight property: *any* random transactional workload, on *any*
machine shape, must be serializable in TID order, livelock-free, and
leave every directory quiescent with a gap-free TID history.  The
simulator's built-in replay checker enforces serializability; this file
generates adversarial inputs for it.
"""

import random

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import ScalableTCCSystem, SystemConfig, Transaction
from repro.directory import SkipVector
from repro.stats import percentile
from repro.workloads.base import Workload

LINE = 32
HOT_POOL = [i * LINE for i in range(6)]  # six hot lines on one page


class RandomWorkload(Workload):
    """Conflict-heavy random transactions derived from one RNG seed."""

    def __init__(self, seed, n_procs, tx_per_proc):
        self.seed = seed
        self.n_procs = n_procs
        self.tx_per_proc = tx_per_proc

    def schedule(self, proc, n_procs):
        rng = random.Random(self.seed * 65537 + proc)
        for i in range(self.tx_per_proc):
            ops = [("c", rng.randint(1, 30))]
            for _ in range(rng.randint(1, 4)):
                addr = rng.choice(HOT_POOL) + 4 * rng.randrange(8)
                kind = rng.random()
                if kind < 0.45:
                    ops.append(("ld", addr))
                elif kind < 0.75:
                    ops.append(("add", addr, rng.randint(1, 9)))
                else:
                    ops.append(("st", addr, rng.randint(1, 1 << 12)))
            yield Transaction(proc * 10_000 + i, ops)


@settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(
    seed=st.integers(0, 10_000),
    n_procs=st.sampled_from([2, 3, 4, 8]),
    backend=st.sampled_from(["scalable", "token"]),
    granularity=st.sampled_from(["word", "line"]),
    jitter=st.integers(0, 4),
)
def test_random_conflicting_workloads_serializable(
    seed, n_procs, backend, granularity, jitter
):
    config = SystemConfig(
        n_processors=n_procs,
        commit_backend=backend,
        granularity=granularity,
        ordered_network=jitter == 0,
        network_jitter=jitter,
        seed=seed,
    )
    system = ScalableTCCSystem(config)
    workload = RandomWorkload(seed, n_procs, tx_per_proc=5)
    # run() verifies serializability (read values + final memory) and
    # raises SimulationTimeout on livelock/deadlock.
    result = system.run(workload, max_cycles=80_000_000)
    assert result.committed_transactions == n_procs * 5
    if backend == "scalable":
        # gap-free TID history at every directory
        highest = system.vendor.highest_issued
        for directory in system.directories:
            assert directory.nstid == highest + 1
    system.vendor.check_all_resolved()


@settings(max_examples=25, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(
    seed=st.integers(0, 10_000),
    retention=st.integers(1, 3),
)
def test_retention_policy_preserves_correctness(seed, retention):
    config = SystemConfig(
        n_processors=4,
        retention_threshold=retention,
        seed=seed,
    )
    system = ScalableTCCSystem(config)
    workload = RandomWorkload(seed, 4, tx_per_proc=4)
    result = system.run(workload, max_cycles=80_000_000)
    assert result.committed_transactions == 16


@settings(max_examples=100, deadline=None)
@given(st.lists(st.integers(1, 60), min_size=0, max_size=60))
def test_skipvector_model_equivalence(tids):
    """The Skip Vector must behave exactly like the obvious model: NSTID
    is the smallest TID not yet skipped."""
    sv = SkipVector()
    skipped = set()
    for tid in tids:
        sv.skip(tid)
        skipped.add(tid)
        expected = 1
        while expected in skipped:
            expected += 1
        assert sv.nstid == expected


@settings(max_examples=100, deadline=None)
@given(
    st.lists(st.floats(0, 1e6, allow_nan=False), min_size=1, max_size=200),
    st.floats(0, 100),
)
def test_percentile_matches_numpy(samples, pct):
    import numpy as np

    ours = percentile(samples, pct)
    theirs = float(np.percentile(samples, pct))
    assert abs(ours - theirs) <= 1e-6 * max(1.0, abs(theirs))


@settings(max_examples=50, deadline=None)
@given(st.lists(st.integers(0, 1000), min_size=1, max_size=50))
def test_percentile_bounds(samples):
    assert percentile(samples, 0) == min(samples)
    assert percentile(samples, 100) == max(samples)
    p90 = percentile(samples, 90)
    assert min(samples) <= p90 <= max(samples)
