"""Tests for trace save/load workloads."""

import json

import pytest

from repro import ScalableTCCSystem, SystemConfig, app_workload
from repro.workloads import CounterWorkload, Transaction
from repro.workloads.base import BARRIER, Workload
from repro.workloads.trace import TraceFormatError, TraceWorkload, save_trace


def test_round_trip_preserves_schedules(tmp_path):
    path = tmp_path / "trace.json"
    original = CounterWorkload(n_counters=2, increments_per_proc=4)
    save_trace(str(path), original, n_procs=3, name="counters")

    replay = TraceWorkload.load(str(path))
    assert replay.name == "counters"
    assert replay.n_procs == 3
    for proc in range(3):
        a = list(original.schedule(proc, 3))
        b = list(replay.schedule(proc, 3))
        assert len(a) == len(b)
        for x, y in zip(a, b):
            assert x is BARRIER if y is BARRIER else True
            if isinstance(x, Transaction):
                assert x.tx_id == y.tx_id
                assert list(map(tuple, x.ops)) == list(map(tuple, y.ops))
                assert x.label == y.label


def test_barriers_survive_round_trip(tmp_path):
    from repro.workloads import ProducerConsumerWorkload

    path = tmp_path / "pc.json"
    save_trace(str(path), ProducerConsumerWorkload(phases=2), n_procs=2)
    replay = TraceWorkload.load(str(path))
    barriers = sum(1 for item in replay.schedule(0, 2) if item is BARRIER)
    assert barriers == 4


def test_replayed_trace_runs_identically(tmp_path):
    path = tmp_path / "app.json"
    original = app_workload("barnes", scale=0.05)
    save_trace(str(path), original, n_procs=4)

    res_orig = ScalableTCCSystem(
        SystemConfig(n_processors=4, ordered_network=True)
    ).run(original, max_cycles=500_000_000)
    res_replay = ScalableTCCSystem(
        SystemConfig(n_processors=4, ordered_network=True)
    ).run(TraceWorkload.load(str(path)), max_cycles=500_000_000)

    assert res_replay.cycles == res_orig.cycles
    assert res_replay.committed_transactions == res_orig.committed_transactions
    assert res_replay.memory_image == res_orig.memory_image


def test_wrong_processor_count_rejected(tmp_path):
    path = tmp_path / "t.json"
    save_trace(str(path), CounterWorkload(), n_procs=2)
    replay = TraceWorkload.load(str(path))
    with pytest.raises(ValueError, match="recorded for 2"):
        list(replay.schedule(0, 4))


def test_unknown_version_rejected():
    with pytest.raises(TraceFormatError, match="version"):
        TraceWorkload({"version": 99, "n_procs": 1, "schedules": [[]]})


def test_malformed_item_rejected():
    with pytest.raises(TraceFormatError, match="bad schedule item"):
        TraceWorkload({
            "version": 1, "n_procs": 1,
            "schedules": [[{"nope": True}]],
        })


def test_random_transactions_round_trip_property(tmp_path):
    from hypothesis import given, settings
    from hypothesis import strategies as st

    op_strategy = st.one_of(
        st.tuples(st.just("c"), st.integers(1, 1000)),
        st.tuples(st.just("ld"), st.integers(0, 1 << 20)),
        st.tuples(st.just("st"), st.integers(0, 1 << 20), st.integers(0, 999)),
        st.tuples(st.just("add"), st.integers(0, 1 << 20), st.integers(-9, 9)),
    )

    @settings(max_examples=40, deadline=None)
    @given(st.lists(st.lists(op_strategy, min_size=1, max_size=8),
                    min_size=1, max_size=6))
    def check(tx_op_lists):
        class OneProc(Workload):
            def schedule(self, proc, n_procs):
                return iter(
                    Transaction(i, ops, label=f"t{i}")
                    for i, ops in enumerate(tx_op_lists)
                )

        path = tmp_path / "prop.json"
        save_trace(str(path), OneProc(), n_procs=1)
        replay = list(TraceWorkload.load(str(path)).schedule(0, 1))
        assert [list(map(tuple, t.ops)) for t in replay] == [
            [tuple(op) for op in ops] for ops in tx_op_lists
        ]

    check()


def test_trace_file_is_plain_json(tmp_path):
    path = tmp_path / "t.json"
    save_trace(str(path), CounterWorkload(increments_per_proc=1), n_procs=1)
    document = json.loads(path.read_text())
    assert document["version"] == 1
    assert isinstance(document["schedules"][0][0]["ops"], list)
