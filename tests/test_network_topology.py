"""Unit tests for the mesh topology."""

import pytest

from repro.network import MeshTopology


def test_square_grid_for_64():
    mesh = MeshTopology(64)
    assert mesh.rows * mesh.cols >= 64
    assert mesh.rows == 8 and mesh.cols == 8


def test_rectangular_grid_for_32():
    mesh = MeshTopology(32)
    assert mesh.rows * mesh.cols >= 32
    assert {mesh.rows, mesh.cols} == {8, 4}


def test_single_node():
    mesh = MeshTopology(1)
    assert mesh.hops(0, 0) == 0
    assert mesh.average_hops() == 0.0


def test_two_nodes_one_hop():
    mesh = MeshTopology(2)
    assert mesh.hops(0, 1) == 1


def test_hops_is_manhattan_distance():
    mesh = MeshTopology(16)  # 4x4
    assert mesh.cols == 4
    assert mesh.hops(0, 3) == 3       # same row
    assert mesh.hops(0, 12) == 3      # same column
    assert mesh.hops(0, 15) == 6      # opposite corner
    assert mesh.hops(5, 5) == 0


def test_hops_symmetric():
    mesh = MeshTopology(16)
    for a in range(16):
        for b in range(16):
            assert mesh.hops(a, b) == mesh.hops(b, a)


def test_coordinates_roundtrip():
    mesh = MeshTopology(16)
    for node in range(16):
        row, col = mesh.coordinates(node)
        assert row * mesh.cols + col == node


def test_neighbors_interior_and_corner():
    mesh = MeshTopology(16)  # 4x4
    assert sorted(mesh.neighbors(5)) == [1, 4, 6, 9]
    assert sorted(mesh.neighbors(0)) == [1, 4]
    assert sorted(mesh.neighbors(15)) == [11, 14]


def test_average_hops_reasonable():
    mesh = MeshTopology(64)
    # For an 8x8 mesh the mean pairwise distance is 16/3 * (1 - 1/64)-ish;
    # just check it lands in a sane band.
    assert 4.0 < mesh.average_hops() < 6.5


def test_out_of_range_node_rejected():
    mesh = MeshTopology(4)
    with pytest.raises(ValueError):
        mesh.hops(0, 4)
    with pytest.raises(ValueError):
        mesh.neighbors(-1)


def test_zero_nodes_rejected():
    with pytest.raises(ValueError):
        MeshTopology(0)


@pytest.mark.parametrize("n", [1, 2, 3, 4, 5, 7, 8, 12, 16, 24, 32, 48, 64, 100])
def test_all_nodes_fit_in_grid(n):
    mesh = MeshTopology(n)
    assert mesh.rows * mesh.cols >= n
    for node in range(n):
        row, col = mesh.coordinates(node)
        assert 0 <= row < mesh.rows
        assert 0 <= col < mesh.cols
