"""Unit tests for per-line directory state."""

from repro.directory import DirectoryEntry, DirectoryState


def test_fresh_entry_is_unowned_unmarked():
    entry = DirectoryEntry(7)
    assert not entry.owned
    assert not entry.marked
    assert entry.sharers == set()
    assert entry.tid_tag == 0


def test_mark_accumulates_words():
    entry = DirectoryEntry(7)
    entry.mark(5, 0b0001)
    entry.mark(5, 0b0100)
    assert entry.marked
    assert entry.marked_words == 0b0101
    assert entry.marked_by == 5


def test_clear_mark():
    entry = DirectoryEntry(7)
    entry.mark(5, 0xFF)
    entry.clear_mark()
    assert not entry.marked
    assert entry.marked_words == 0
    assert entry.marked_by is None


def test_commit_to_transfers_ownership_keeping_sharers():
    entry = DirectoryEntry(7)
    entry.sharers = {0, 2}
    entry.mark(5, 0xFF)
    entry.commit_to(committer=1, tid=5)
    assert entry.owner == 1
    assert entry.owned
    assert entry.tid_tag == 5
    # Word granularity: invalidated processors may retain other words, so
    # they stay sharers; the committer joins.
    assert entry.sharers == {0, 1, 2}
    assert not entry.marked


def test_commit_to_line_granularity_resets_sharers():
    entry = DirectoryEntry(7)
    entry.sharers = {0, 2}
    entry.mark(5, 0xFF)
    entry.commit_to(committer=1, tid=5, keep_sharers=False)
    assert entry.sharers == {1}


def test_release_ownership_keeps_tag():
    entry = DirectoryEntry(7)
    entry.commit_to(2, 9)
    entry.release_ownership()
    assert not entry.owned
    assert entry.tid_tag == 9


def test_state_creates_entries_on_demand():
    state = DirectoryState()
    assert state.peek(3) is None
    entry = state.entry(3)
    assert state.peek(3) is entry
    assert len(state) == 1


def test_marked_lines_filters_by_tid():
    state = DirectoryState()
    state.entry(1).mark(5, 1)
    state.entry(2).mark(5, 1)
    state.entry(3).mark(6, 1)
    assert sorted(e.line for e in state.marked_lines(5)) == [1, 2]
    assert [e.line for e in state.marked_lines(6)] == [3]


def test_working_set_counts_remote_entries_only():
    state = DirectoryState()
    home = 2
    state.entry(1).sharers = {2}          # local only: not counted
    state.entry(2).sharers = {2, 5}       # remote sharer: counted
    state.entry(3).owner = 7              # remote owner: counted
    state.entry(3).sharers = {7}
    state.entry(4).owner = 2              # local owner: not counted
    state.entry(4).sharers = {2}
    assert state.working_set_entries(home) == 2
