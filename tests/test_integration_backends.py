"""Integration tests across commit backends and tracking granularities."""

import pytest

from repro import ScalableTCCSystem, SystemConfig
from repro.sim import Resource
from repro.workloads import (
    CounterWorkload,
    FalseSharingWorkload,
    PrivateWorkload,
    ProducerConsumerWorkload,
    StarvationWorkload,
)


def run(workload, **kwargs):
    n = kwargs.pop("n", 8)
    config = SystemConfig(n_processors=n, **kwargs)
    system = ScalableTCCSystem(config)
    result = system.run(workload, max_cycles=100_000_000)
    return system, result


# -- counters: the canonical atomicity check ---------------------------------


def counter_total(result, workload, n):
    image = result.memory_image
    return sum(
        image.get(workload.counter_addr(i) // 32, [0] * 8)[0]
        for i in range(workload.n_counters)
    )


@pytest.mark.parametrize("backend", ["scalable", "token"])
@pytest.mark.parametrize("granularity", ["word", "line"])
def test_counters_exact_under_all_backends(backend, granularity):
    wl = CounterWorkload(n_counters=3, increments_per_proc=8)
    system, result = run(wl, commit_backend=backend, granularity=granularity)
    assert counter_total(result, wl, 8) == wl.expected_total(8)


def test_counters_exact_write_through():
    wl = CounterWorkload(n_counters=3, increments_per_proc=8)
    system, result = run(wl, write_through_commit=True)
    assert counter_total(result, wl, 8) == wl.expected_total(8)


# -- false sharing: the granularity ablation behaviour ------------------------


def test_word_granularity_eliminates_false_sharing_violations():
    wl = FalseSharingWorkload(n_lines=2, tx_per_proc=6)
    system, result = run(wl, granularity="word", ordered_network=True)
    assert result.total_violations == 0


def test_line_granularity_suffers_false_sharing_violations():
    wl = FalseSharingWorkload(n_lines=2, tx_per_proc=6)
    system, result = run(wl, granularity="line", ordered_network=True)
    assert result.total_violations > 0


# -- baseline serialization --------------------------------------------------


def test_token_backend_serializes_commits():
    """The token is acquired once per (attempted) commit and held
    exclusively — total acquisitions must be at least the commit count."""
    wl = PrivateWorkload(tx_per_proc=4)
    system, result = run(wl, commit_backend="token")
    assert isinstance(system.token, Resource)
    assert system.token.total_acquisitions >= result.committed_transactions
    assert not system.token.held


def test_token_backend_never_uses_directory_commit_machinery():
    wl = CounterWorkload(increments_per_proc=6)
    system, result = run(wl, commit_backend="token")
    for d in system.directories:
        assert d.stats.invalidations_sent == 0  # invs broadcast by committer
        assert d.stats.occupancy_samples == []  # no mark/commit occupancy


def test_scalable_faster_than_token_on_disjoint_commits():
    """With disjoint write sets, parallel commit must beat the serialized
    token at a matched processor count."""
    wl_s = PrivateWorkload(tx_per_proc=6, lines_per_tx=8, compute=20)
    wl_t = PrivateWorkload(tx_per_proc=6, lines_per_tx=8, compute=20)
    _, res_scalable = run(wl_s, n=16, commit_backend="scalable")
    _, res_token = run(wl_t, n=16, commit_backend="token")
    assert res_scalable.cycles < res_token.cycles


# -- write-through traffic ----------------------------------------------------


def test_write_back_moves_less_commit_data_than_write_through():
    wl_wb = PrivateWorkload(tx_per_proc=6, lines_per_tx=8)
    wl_wt = PrivateWorkload(tx_per_proc=6, lines_per_tx=8)
    _, res_wb = run(wl_wb, write_through_commit=False)
    _, res_wt = run(wl_wt, write_through_commit=True)
    assert (
        res_wt.traffic.bytes_by_class["commit"]
        > res_wb.traffic.bytes_by_class["commit"]
    )


# -- communication workloads ---------------------------------------------------


@pytest.mark.parametrize("backend", ["scalable", "token"])
def test_producer_consumer_values_flow(backend):
    wl = ProducerConsumerWorkload(phases=3)
    system, result = run(wl, commit_backend=backend)
    # every consumer read must have seen the just-produced value
    for record in result.commit_log:
        if record.tx.label.startswith("consume"):
            phase = int(record.tx.label[len("consume"):])
            (_, _, value) = record.reads[0]
            left = (record.proc - 1) % 8
            assert value == phase * 1000 + left + 1


# -- starvation and retention ---------------------------------------------------


def test_starvation_workload_completes_with_retention():
    wl = StarvationWorkload(writer_txs=20)
    system, result = run(wl, retention_threshold=3)
    assert result.committed_transactions == 1 + 7 * 20
    # the long reader eventually commits; if it struggled, retention engaged
    long_reader = result.proc_stats[0]
    assert long_reader.committed_transactions == 1


def test_retention_grants_forward_progress_under_heavy_conflict():
    wl = CounterWorkload(n_counters=1, increments_per_proc=12)
    system, result = run(wl, retention_threshold=2)
    assert counter_total(result, wl, 8) == wl.expected_total(8)
    # with threshold 2 and a single hot counter, retention must trigger
    assert sum(s.tid_retentions for s in result.proc_stats) > 0


def test_interleaved_mapping_mode():
    wl = CounterWorkload(n_counters=4, increments_per_proc=6)
    system, result = run(wl, first_touch=False)
    assert counter_total(result, wl, 8) == wl.expected_total(8)


def test_single_processor_every_backend():
    for backend in ("scalable", "token"):
        wl = CounterWorkload(n_counters=2, increments_per_proc=5)
        system, result = run(wl, n=1, commit_backend=backend)
        assert result.committed_transactions == 5
        assert result.total_violations == 0
