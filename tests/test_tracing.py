"""Tests for the protocol event log and timeline renderer."""

import pytest

from repro import ScalableTCCSystem, SystemConfig
from repro.tracing import EventLog, render_timeline
from repro.workloads import CounterWorkload, PrivateWorkload


class TestEventLogUnit:
    def test_log_and_select(self):
        log = EventLog()
        log.log(10, "tx_start", 0, tx=1)
        log.log(20, "tx_commit", 0, tx=1, tid=5)
        log.log(15, "tx_start", 1, tx=2)
        assert len(log) == 3
        assert [e.time for e in log.select(node=0)] == [10, 20]
        assert [e.fields["tx"] for e in log.select(category="tx_start")] == [1, 2]
        assert list(log.select(category="tx_commit", tid=5))

    def test_unknown_category_rejected(self):
        with pytest.raises(ValueError):
            EventLog().log(0, "warp_core_breach", 0)

    def test_capacity_cap(self):
        log = EventLog(capacity=3)
        for i in range(10):
            log.log(i, "tx_start", 0)
        assert len(log) == 3
        assert log.dropped == 7

    def test_counts(self):
        log = EventLog()
        log.log(0, "tx_start", 0)
        log.log(1, "tx_start", 1)
        log.log(2, "tx_commit", 0)
        assert log.counts() == {"tx_start": 2, "tx_commit": 1}

    def test_render(self):
        log = EventLog()
        log.log(3, "violation", 2, line=7, tid=1)
        text = log.render()
        assert "violation" in text
        assert "line=7" in text


class TestSystemIntegration:
    def test_disabled_by_default(self):
        system = ScalableTCCSystem(SystemConfig(n_processors=2))
        assert system.events is None

    def test_events_recorded_when_enabled(self):
        system = ScalableTCCSystem(
            SystemConfig(n_processors=4, event_log=True)
        )
        result = system.run(
            CounterWorkload(n_counters=1, increments_per_proc=5),
            max_cycles=50_000_000,
        )
        log = system.events
        counts = log.counts()
        assert counts["tx_commit"] == result.committed_transactions
        assert counts["tx_start"] == (
            result.committed_transactions + result.total_violations
        )
        assert counts.get("tx_abort", 0) == result.total_violations
        assert counts["dir_commit"] >= 1
        assert counts["load_miss"] >= 1

    def test_violation_events_carry_cause(self):
        system = ScalableTCCSystem(
            SystemConfig(n_processors=4, event_log=True)
        )
        result = system.run(
            CounterWorkload(n_counters=1, increments_per_proc=6),
            max_cycles=50_000_000,
        )
        if result.total_violations:
            violations = list(system.events.select(category="violation"))
            assert violations
            assert all("line" in e.fields and "tid" in e.fields
                       for e in violations)

    def test_commit_events_in_tid_order_per_directory(self):
        system = ScalableTCCSystem(
            SystemConfig(n_processors=4, event_log=True)
        )
        system.run(CounterWorkload(increments_per_proc=5),
                   max_cycles=50_000_000)
        by_dir = {}
        for event in system.events.select(category="dir_commit"):
            by_dir.setdefault(event.node, []).append(event.fields["tid"])
        for tids in by_dir.values():
            assert tids == sorted(tids)  # NSTID order at each directory


class TestTimeline:
    def test_empty_log(self):
        assert render_timeline(EventLog(), 2) == "(no events)"

    def test_timeline_shape(self):
        system = ScalableTCCSystem(
            SystemConfig(n_processors=4, event_log=True)
        )
        result = system.run(PrivateWorkload(tx_per_proc=4),
                            max_cycles=50_000_000)
        text = render_timeline(system.events, 4, width=60,
                               end_time=result.cycles)
        lines = text.splitlines()
        assert len(lines) == 5  # header + 4 lanes
        assert lines[1].startswith("P0")
        assert "C" in text  # commits visible
        # lanes all equal width
        assert len({len(line) for line in lines[1:]}) == 1

    def test_timeline_shows_violations(self):
        system = ScalableTCCSystem(
            SystemConfig(n_processors=4, event_log=True)
        )
        result = system.run(
            CounterWorkload(n_counters=1, increments_per_proc=8),
            max_cycles=50_000_000,
        )
        if result.total_violations:
            text = render_timeline(system.events, 4, width=80,
                                   end_time=result.cycles)
            assert "V" in text
