"""Property-based tests of the cache/hierarchy against reference models."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.memory import AddressMap, PrivateHierarchy, SpeculativeCache

AMAP = AddressMap(line_size=32, word_size=4)

# Operation alphabet for the cache model check
ops_strategy = st.lists(
    st.one_of(
        st.tuples(st.just("fill"), st.integers(0, 15), st.integers(0, 1000)),
        st.tuples(st.just("read"), st.integers(0, 15), st.integers(0, 7)),
        st.tuples(st.just("write"), st.integers(0, 15), st.integers(0, 7),
                  st.integers(1, 1000)),
        st.tuples(st.just("inv_words"), st.integers(0, 15),
                  st.integers(1, 255)),
        st.tuples(st.just("commit")),
        st.tuples(st.just("abort")),
    ),
    max_size=60,
)


@settings(max_examples=120, deadline=None)
@given(ops_strategy)
def test_cache_matches_reference_model(ops):
    """A large (conflict-free) cache must behave like a flat dict of
    word values with speculative overlay semantics."""
    cache = SpeculativeCache(AMAP, 64 * 32, 4)  # big enough: no evictions

    # reference: line -> list of (value, valid) per word; None = absent
    model = {}

    def model_line(line):
        return model.get(line)

    for op in ops:
        kind = op[0]
        if kind == "fill":
            _, line, base = op
            data = [base + w for w in range(8)]
            cache.fill(line, data)
            entry = model.setdefault(
                line, {"data": [0] * 8, "valid": 0, "sm": 0, "sr": 0}
            )
            for w in range(8):
                if not entry["valid"] >> w & 1:
                    entry["data"][w] = data[w]
            entry["valid"] = 0xFF
        elif kind == "read":
            _, line, word = op
            got = cache.read(line, word)
            entry = model_line(line)
            if entry is None or not entry["valid"] >> word & 1:
                assert got is None
            else:
                assert got == entry["data"][word]
                entry["sr"] |= 1 << word
        elif kind == "write":
            _, line, word, value = op
            ok = cache.write(line, word, value)
            entry = model_line(line)
            if entry is None:
                assert not ok
            else:
                assert ok
                entry["data"][word] = value
                entry["valid"] |= 1 << word
                entry["sm"] |= 1 << word
        elif kind == "inv_words":
            _, line, mask = op
            cache.invalidate_words(line, mask)
            entry = model_line(line)
            if entry is not None:
                entry["valid"] &= ~mask
                entry["sm"] &= ~mask
                entry["sr"] &= ~mask
                if not entry["valid"]:
                    del model[line]
        elif kind == "commit":
            cache.commit_speculative()
            for entry in model.values():
                entry["sm"] = 0
                entry["sr"] = 0
        elif kind == "abort":
            cache.abort_speculative()
            doomed = [l for l, e in model.items() if e["sm"]]
            for line in doomed:
                del model[line]
            for entry in model.values():
                entry["sr"] = 0

    # Final state equivalence
    for line, entry in model.items():
        cached = cache.lookup(line, touch=False)
        assert cached is not None, line
        assert cached.valid_mask == entry["valid"]
        assert cached.sm_mask == entry["sm"]
        assert cached.sr_mask == entry["sr"]
        for w in range(8):
            if entry["valid"] >> w & 1:
                assert cached.data[w] == entry["data"][w]


@settings(max_examples=60, deadline=None)
@given(
    st.lists(st.integers(0, 63), min_size=1, max_size=200),
    st.integers(1, 4),
)
def test_cache_capacity_never_exceeded_without_speculation(lines, ways):
    cache = SpeculativeCache(AMAP, ways * 4 * 32, ways)  # 4 sets
    for line in lines:
        cache.fill(line, [0] * 8)
    for bucket in cache._sets:
        assert len(bucket) <= ways


@settings(max_examples=60, deadline=None)
@given(st.lists(st.integers(0, 31), min_size=1, max_size=64))
def test_speculative_lines_survive_capacity_pressure(lines):
    cache = SpeculativeCache(AMAP, 2 * 2 * 32, 2)  # 2 sets x 2 ways
    # Speculatively write the first four distinct lines…
    protected = []
    for line in dict.fromkeys(lines):
        if len(protected) == 4:
            break
        cache.fill(line, [0] * 8)
        cache.write(line, 0, 1)
        protected.append(line)
    # …then pressure the cache with clean fills.
    for line in range(100, 140):
        cache.fill(line, [0] * 8)
    for line in protected:
        entry = cache.lookup(line, touch=False)
        assert entry is not None
        assert entry.sm_mask


@settings(max_examples=60, deadline=None)
@given(st.lists(
    st.tuples(st.integers(0, 7), st.integers(0, 7), st.integers(0, 1 << 16)),
    min_size=1, max_size=80,
))
def test_hierarchy_read_your_writes(writes):
    hier = PrivateHierarchy(AMAP, l1_size=4 * 32, l1_ways=2,
                            l2_size=64 * 32, l2_ways=4)
    latest = {}
    for line, word, value in writes:
        if hier.peek(line) is None:
            hier.fill(line, [0] * 8)
        result = hier.store(line, word, value)
        assert result.hit
        latest[(line, word)] = value
    for (line, word), value in latest.items():
        got = hier.load(line, word)
        assert got.hit
        assert got.value == value
