"""Unit tests for the private L1/L2 hierarchy."""

import pytest

from repro.memory import AddressMap, PrivateHierarchy
from repro.memory.hierarchy import FLUSH_FIRST, HIT_L1, HIT_L2, MISS


@pytest.fixture
def amap():
    return AddressMap()


@pytest.fixture
def hier(amap):
    return PrivateHierarchy(amap, l1_size=4 * 32, l1_ways=2, l2_size=64 * 32, l2_ways=4)


def test_cold_load_misses(hier):
    result = hier.load(0, 0)
    assert result.outcome == MISS
    assert not result.hit


def test_fill_then_load_costs_l2_then_l1(hier):
    hier.fill(0, [5] * 8)
    # fill installs the L1 tag, so the first load is an L1 hit
    first = hier.load(0, 0)
    assert first.outcome == HIT_L1
    assert first.cycles == 1
    assert first.value == 5


def test_l1_capacity_miss_falls_to_l2(hier):
    # L1 filter: 4 lines, 2 ways, 2 sets. Lines 0,2,4 map to set 0.
    for line in (0, 2, 4):
        hier.fill(line, [line] * 8)
    result = hier.load(0, 0)  # line 0 evicted from the L1 filter by 4
    assert result.outcome == HIT_L2
    assert result.cycles == 6
    assert result.value == 0


def test_store_miss_requires_allocate(hier):
    assert hier.store(0, 0, 1).outcome == MISS


def test_store_hit_sets_sm(hier):
    hier.fill(0, [0] * 8)
    result = hier.store(0, 2, 42)
    assert result.hit
    assert hier.peek(0).sm_mask == 1 << 2
    assert hier.peek(0).data[2] == 42


def test_first_speculative_write_to_dirty_line_needs_flush(hier):
    hier.fill(0, [9] * 8, dirty=True)
    result = hier.store(0, 0, 1)
    assert result.outcome == FLUSH_FIRST
    assert result.flush_line == 0
    assert result.flush_words == {w: 9 for w in range(8)}
    # After the flush is acknowledged the store can proceed.
    hier.flushed(0)
    assert hier.store(0, 0, 1).hit
    assert not hier.peek(0).dirty
    assert hier.peek(0).sm_mask == 1


def test_second_speculative_write_needs_no_flush(hier):
    hier.fill(0, [9] * 8, dirty=True)
    hier.flushed(0)
    hier.store(0, 0, 1)
    assert hier.store(0, 1, 2).hit  # sm already set; no flush loop


def test_nonspeculative_store_never_asks_for_flush(hier):
    hier.fill(0, [9] * 8, dirty=True)
    assert hier.store(0, 0, 1, speculative=False).hit
    assert hier.peek(0).dirty


def test_fill_reports_dirty_evictions_only(amap):
    hier = PrivateHierarchy(amap, l1_size=32, l1_ways=1, l2_size=32, l2_ways=1)
    hier.fill(0, [1] * 8, dirty=True)
    notices = hier.fill(1, [2] * 8)  # same set, evicts dirty line 0
    assert len(notices) == 1
    assert notices[0].line == 0
    assert notices[0].data == [1] * 8
    notices = hier.fill(2, [3] * 8)  # evicts clean line 1: no notice
    assert notices == []


def test_invalidate_returns_state_and_clears_both_levels(hier):
    hier.fill(0, [1] * 8)
    hier.load(0, 3)
    old = hier.invalidate(0)
    assert old.sr_mask == 1 << 3
    assert hier.load(0, 3).outcome == MISS


def test_extract_for_writeback(hier):
    hier.fill(0, [4] * 8, dirty=True)
    data = hier.extract_for_writeback(0)
    assert data == {w: 4 for w in range(8)}
    assert hier.peek(0) is None
    assert hier.extract_for_writeback(0) is None


def test_commit_and_abort_delegate(hier):
    hier.fill(0, [0] * 8)
    hier.store(0, 0, 1)
    assert hier.written_lines()[0].line == 0
    assert hier.commit_speculative() == [0]
    hier.store(0, 1, 2)  # dirty now, needs flush
    assert hier.store(0, 1, 2).outcome == FLUSH_FIRST
    hier.flushed(0)
    hier.store(0, 1, 2)
    assert hier.abort_speculative() == [0]


def test_read_write_set_bytes(hier):
    hier.fill(0, [0] * 8)
    hier.fill(1, [0] * 8)
    hier.load(0, 0)
    hier.load(0, 1)
    hier.store(1, 0, 5)
    assert hier.read_set_bytes() == 8
    assert hier.write_set_bytes() == 4
