"""End-to-end protocol scenarios through the full system.

Every ``system.run`` call already verifies serializability by serial
replay; these tests additionally pin down the *protocol-level* behaviour
each scenario must exhibit (violations or their absence, forwarding,
ownership, filtering).
"""

import pytest

from repro import ScalableTCCSystem, SystemConfig, Transaction
from repro.workloads.base import BARRIER, Workload

LINE = 32
PAGE = 4096


class ScriptedWorkload(Workload):
    """Fixed per-processor schedules for precise scenarios."""

    def __init__(self, schedules):
        self._schedules = schedules

    def schedule(self, proc, n_procs):
        return iter(self._schedules[proc])


def run_scripted(schedules, **config_kwargs):
    config_kwargs.setdefault("n_processors", len(schedules))
    config_kwargs.setdefault("ordered_network", True)
    system = ScalableTCCSystem(SystemConfig(**config_kwargs))
    result = system.run(ScriptedWorkload(schedules), max_cycles=50_000_000)
    return system, result


def test_single_processor_single_transaction():
    tx = Transaction(1, [("c", 100), ("st", 0, 42), ("ld", 0)])
    system, result = run_scripted([[tx]])
    assert result.committed_transactions == 1
    assert result.total_violations == 0
    assert result.memory_image[0][0] == 42
    assert result.proc_stats[0].useful_cycles >= 100


def test_read_only_transaction_commits_without_marks():
    schedules = [
        [Transaction(1, [("c", 10), ("ld", 0)])],
        [Transaction(2, [("c", 10), ("ld", PAGE)])],
    ]
    system, result = run_scripted(schedules)
    assert result.committed_transactions == 2
    for d in system.directories:
        assert d.stats.commits_served == 0  # nothing written anywhere
    # every TID either skipped or committed at each directory
    assert all(d.nstid == 3 for d in system.directories)


def test_pure_compute_transaction():
    system, result = run_scripted([[Transaction(1, [("c", 500)])]])
    assert result.committed_transactions == 1
    assert result.proc_stats[0].useful_cycles >= 500


def test_write_write_conflict_exactly_one_loser():
    """Two transactions add to the same word: the later TID must violate
    and retry, and the final value must reflect both."""
    addr = 0
    schedules = [
        [Transaction(1, [("c", 10), ("add", addr, 1)])],
        [Transaction(2, [("c", 10), ("add", addr, 1)])],
    ]
    system, result = run_scripted(schedules)
    assert result.committed_transactions == 2
    assert result.memory_image[0][0] == 2


def test_disjoint_directories_commit_in_parallel():
    """Transactions writing to different homes must not serialize on one
    directory: both directories serve commits."""
    schedules = [
        [Transaction(1, [("c", 10), ("st", 0, 1)])],            # first touch: home 0
        [Transaction(2, [("c", 10), ("st", PAGE * 64, 2)])],    # first touch: home 1
    ]
    system, result = run_scripted(schedules)
    served = [d.stats.commits_served for d in system.directories]
    assert served == [1, 1]


def test_true_sharing_forwards_from_owner():
    """P0 commits a value; P1 reads it afterwards: the directory must
    recall the data from the owner (write-back protocol: memory was never
    updated by the commit)."""
    addr = 0
    schedules = [
        [Transaction(1, [("c", 10), ("st", addr, 7)]), BARRIER],
        [BARRIER, Transaction(2, [("c", 10), ("ld", addr)])],
    ]
    system, result = run_scripted(schedules)
    record = next(r for r in result.commit_log if r.tx.tx_id == 2)
    assert record.reads == [(0, 0, 7)]
    home = system.mapping.home(0)
    assert system.directories[home].stats.loads_forwarded >= 1


def test_commit_does_not_push_data_to_memory():
    """Write-back commit: after the commit (before drain) memory must not
    have the value; the owner holds it."""
    tx = Transaction(1, [("c", 10), ("st", 0, 9)])

    class Probe(Workload):
        def schedule(self, proc, n_procs):
            return iter([tx])

    system = ScalableTCCSystem(SystemConfig(n_processors=1, ordered_network=True))
    # run without drain interference: run the workload, check memory pre-drain
    system.barrier = None
    result = system.run(Probe(), max_cycles=10_000_000)
    # after drain the data is home:
    assert result.memory_image[0][0] == 9
    entry = system.directories[0].state.entry(0)
    assert not entry.owned  # drain released ownership


def test_write_through_commit_pushes_data_immediately():
    tx = Transaction(1, [("c", 10), ("st", 0, 9)])
    schedules = [[tx]]
    system, result = run_scripted(schedules, write_through_commit=True)
    # memory got the data at commit; the processor drained nothing
    assert result.memory_image[0][0] == 9
    assert system.memories[0].writes >= 1


def test_dirty_line_flushed_before_respeculation():
    """The same processor writes the same line in two transactions: the
    second speculative write must first flush the first commit's data."""
    addr = 0
    schedules = [[
        Transaction(1, [("c", 10), ("st", addr, 1)]),
        Transaction(2, [("c", 10), ("st", addr + 4, 2)]),
    ]]
    system, result = run_scripted(schedules)
    home = system.mapping.home(0)
    assert system.directories[home].stats.writebacks_accepted >= 1
    assert result.memory_image[0][0] == 1
    assert result.memory_image[0][1] == 2


def test_read_only_tx_sees_consistent_snapshot_under_contention():
    """A reader that raced with writers must still observe a TID-ordered
    snapshot (validated by the replay checker inside run())."""
    addr = 0
    writers = [
        [Transaction(100 + i, [("c", 5), ("add", addr, 1)]) for i in range(4)]
        for _ in range(3)
    ]
    # fix tx ids unique per proc
    schedules = []
    for p, txs in enumerate(writers):
        schedules.append(
            [Transaction(p * 1000 + i, tx.ops) for i, tx in enumerate(txs)]
        )
    schedules.append(
        [Transaction(9000 + i, [("c", 1), ("ld", addr), ("ld", addr + 4)])
         for i in range(6)]
    )
    system, result = run_scripted(schedules)
    assert result.memory_image[0][0] == 12


def test_violation_counted_and_attributed():
    addr = 0
    schedules = [
        [Transaction(1, [("c", 200), ("add", addr, 1)])],
        [Transaction(2, [("c", 200), ("add", addr, 1)])],
    ]
    system, result = run_scripted(schedules)
    if result.total_violations:
        violated = [s for s in result.proc_stats if s.violations]
        assert all(s.violation_cycles > 0 for s in violated)


def test_commit_filtering_no_invalidation_to_non_sharers():
    """A processor that never touched a line must receive no invalidation
    for it (directory filtering)."""
    schedules = [
        [Transaction(1, [("c", 10), ("st", 0, 1)])],
        [Transaction(2, [("c", 10), ("st", PAGE * 64, 1)])],
        [Transaction(3, [("c", 10), ("st", PAGE * 128, 1)])],
    ]
    system, result = run_scripted(schedules)
    for d in system.directories:
        assert d.stats.invalidations_sent == 0


def test_tids_all_resolved_after_run():
    schedules = [
        [Transaction(p * 10 + i, [("c", 10), ("add", 0, 1)]) for i in range(3)]
        for p in range(4)
    ]
    system, result = run_scripted(schedules)
    system.vendor.check_all_resolved()  # idempotent; must not raise
    assert result.memory_image[0][0] == 12


def test_barrier_idle_time_attributed():
    schedules = [
        [Transaction(1, [("c", 10)]), BARRIER],
        [Transaction(2, [("c", 5000)]), BARRIER],
    ]
    system, result = run_scripted(schedules)
    fast, slow = result.proc_stats
    assert fast.idle_cycles > 3000
    assert slow.idle_cycles < 1000


def test_store_then_load_same_word_in_tx_sees_own_write():
    tx = Transaction(1, [("st", 0, 5), ("ld", 0), ("add", 0, 2), ("ld", 0)])
    system, result = run_scripted([[tx]])
    record = result.commit_log[0]
    assert [v for (_, _, v) in record.reads] == [5, 5, 7]
    assert result.memory_image[0][0] == 7


def test_eviction_of_dirty_line_writes_back():
    """Force dirty evictions with a tiny cache and confirm the data is
    still correct at the end."""
    txs = []
    for i in range(16):
        txs.append(Transaction(i, [("c", 5), ("st", i * LINE, i + 1)]))
    system, result = run_scripted(
        [txs], l1_size=2 * LINE, l1_ways=1, l2_size=8 * LINE, l2_ways=1
    )
    for i in range(16):
        assert result.memory_image[i][0] == i + 1


def test_speculative_overflow_handled_not_crashed():
    """A transaction larger than the cache overflows speculative state;
    the model must keep it correct (victim-buffer semantics) and count
    the overflow."""
    ops = [("c", 1)]
    for i in range(32):
        ops.append(("st", i * LINE, i))
    tx = Transaction(1, ops)
    system, result = run_scripted(
        [[tx]], l1_size=2 * LINE, l1_ways=1, l2_size=4 * LINE, l2_ways=2
    )
    assert result.committed_transactions == 1
    assert system.processors[0].hierarchy.stats.speculative_overflows > 0
    for i in range(32):
        assert result.memory_image[i][0] == i


def test_unordered_network_load_inv_race_resolved_by_retry():
    """Heavy conflict with jitter exercises the load/invalidate race; the
    run must stay serializable and some retries may occur."""
    addr = 0
    schedules = [
        [Transaction(p * 100 + i, [("c", 3), ("add", addr, 1)]) for i in range(5)]
        for p in range(4)
    ]
    system, result = run_scripted(
        schedules, ordered_network=False, network_jitter=5
    )
    assert result.memory_image[0][0] == 20
