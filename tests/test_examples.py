"""Smoke tests: the example scripts must keep running.

Only the fast examples run here (the scaling/latency studies take
minutes by design; their logic is covered by the analysis drivers'
tests and the benchmark harness).
"""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES = pathlib.Path(__file__).parent.parent / "examples"

FAST_EXAMPLES = [
    "quickstart.py",
    "bank.py",
    "hashtable.py",
    "contention_explorer.py",
]


@pytest.mark.parametrize("script", FAST_EXAMPLES)
def test_example_runs_clean(script):
    completed = subprocess.run(
        [sys.executable, str(EXAMPLES / script)],
        capture_output=True,
        text=True,
        timeout=600,
    )
    assert completed.returncode == 0, completed.stderr[-2000:]
    assert completed.stdout.strip()


def test_quickstart_reports_speedup():
    completed = subprocess.run(
        [sys.executable, str(EXAMPLES / "quickstart.py")],
        capture_output=True, text=True, timeout=600,
    )
    assert "speedup" in completed.stdout


def test_bank_conserves_money():
    completed = subprocess.run(
        [sys.executable, str(EXAMPLES / "bank.py")],
        capture_output=True, text=True, timeout=600,
    )
    assert "Conservation holds" in completed.stdout


def test_all_examples_exist_and_have_docstrings():
    scripts = sorted(EXAMPLES.glob("*.py"))
    assert len(scripts) >= 5
    for script in scripts:
        text = script.read_text()
        assert text.lstrip().startswith(('#!/usr/bin/env python3', '"""')), script
        assert '"""' in text, script
