"""Unit tests for Resource, Barrier, and Store primitives."""

import pytest

from repro.sim import Barrier, Engine, Process, Resource, Store, Timeout


def test_resource_grants_immediately_when_free():
    engine = Engine()
    res = Resource(engine)
    granted = []

    def worker():
        yield res.acquire()
        granted.append(engine.now)
        res.release()

    Process(engine, worker())
    engine.run()
    assert granted == [0]


def test_resource_serializes_holders_fifo():
    engine = Engine()
    res = Resource(engine)
    log = []

    def worker(tag, hold):
        yield res.acquire()
        log.append((tag, engine.now))
        yield Timeout(engine, hold)
        res.release()

    Process(engine, worker("a", 10))
    Process(engine, worker("b", 5))
    Process(engine, worker("c", 1))
    engine.run()
    assert log == [("a", 0), ("b", 10), ("c", 15)]


def test_resource_busy_cycles_accumulate():
    engine = Engine()
    res = Resource(engine)

    def worker():
        yield from res.use(12)
        yield Timeout(engine, 100)
        yield from res.use(3)

    Process(engine, worker())
    engine.run()
    assert res.busy_cycles == 15
    assert res.total_acquisitions == 2


def test_release_without_hold_raises():
    res = Resource(Engine())
    with pytest.raises(RuntimeError):
        res.release()


def test_resource_queue_length_visible():
    engine = Engine()
    res = Resource(engine)

    def holder():
        yield from res.use(10)

    def waiter():
        yield res.acquire()
        res.release()

    Process(engine, holder())
    Process(engine, waiter())
    engine.run(until=5)
    assert res.queue_length == 1
    engine.run()
    assert res.queue_length == 0


def test_barrier_releases_all_parties_together():
    engine = Engine()
    barrier = Barrier(engine, parties=3)
    released = []

    def worker(tag, arrive_at):
        yield Timeout(engine, arrive_at)
        yield barrier.wait()
        released.append((tag, engine.now))

    Process(engine, worker("a", 1))
    Process(engine, worker("b", 5))
    Process(engine, worker("c", 9))
    engine.run()
    assert sorted(released) == [("a", 9), ("b", 9), ("c", 9)]
    assert barrier.generations == 1


def test_barrier_is_cyclic():
    engine = Engine()
    barrier = Barrier(engine, parties=2)
    phases = []

    def worker(tag, delays):
        for delay in delays:
            yield Timeout(engine, delay)
            generation = yield barrier.wait()
            phases.append((tag, generation, engine.now))

    Process(engine, worker("a", [1, 1]))
    Process(engine, worker("b", [4, 10]))
    engine.run()
    assert ("a", 1, 4) in phases and ("b", 1, 4) in phases
    assert ("a", 2, 14) in phases and ("b", 2, 14) in phases


def test_barrier_single_party_never_blocks():
    engine = Engine()
    barrier = Barrier(engine, parties=1)
    done = []

    def worker():
        yield barrier.wait()
        done.append(engine.now)

    Process(engine, worker())
    engine.run()
    assert done == [0]


def test_barrier_rejects_zero_parties():
    with pytest.raises(ValueError):
        Barrier(Engine(), parties=0)


def test_store_put_then_get():
    engine = Engine()
    store = Store(engine)
    store.put("m1")
    got = []

    def consumer():
        item = yield store.get()
        got.append(item)

    Process(engine, consumer())
    engine.run()
    assert got == ["m1"]


def test_store_get_blocks_until_put():
    engine = Engine()
    store = Store(engine)
    got = []

    def consumer():
        item = yield store.get()
        got.append((item, engine.now))

    Process(engine, consumer())
    engine.schedule(20, lambda: store.put("late"))
    engine.run()
    assert got == [("late", 20)]


def test_store_preserves_fifo_order():
    engine = Engine()
    store = Store(engine)
    for i in range(5):
        store.put(i)
    got = []

    def consumer():
        for _ in range(5):
            got.append((yield store.get()))

    Process(engine, consumer())
    engine.run()
    assert got == [0, 1, 2, 3, 4]
    assert len(store) == 0
    assert store.peek() is None
