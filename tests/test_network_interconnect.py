"""Unit tests for the interconnect transport."""

import pytest

from repro.network import CLASS_COMMIT, CLASS_MISS, Interconnect, Packet
from repro.network.message import HEADER_BYTES
from repro.sim import Engine


def make_net(n=4, **kwargs):
    engine = Engine()
    kwargs.setdefault("ordered", True)
    kwargs.setdefault("link_bytes_per_cycle", None)
    net = Interconnect(engine, n, **kwargs)
    return engine, net


def test_packet_rejects_bad_class():
    with pytest.raises(ValueError):
        Packet(0, 1, None, 4, "bogus")
    with pytest.raises(ValueError):
        Packet(0, 1, None, -1, CLASS_MISS)


def test_delivery_invokes_registered_handler():
    engine, net = make_net()
    received = []
    net.register(1, lambda pkt: received.append((engine.now, pkt.payload)))
    net.send(0, 1, "hello", 0, CLASS_COMMIT)
    engine.run()
    assert len(received) == 1
    assert received[0][1] == "hello"


def test_latency_scales_with_hops():
    engine, net = make_net(16, link_latency=5, router_latency=0)
    # 4x4 mesh: 0 -> 15 is 6 hops
    t_far = net.transit_cycles(0, 15, 8)
    t_near = net.transit_cycles(0, 1, 8)
    assert t_far == 30
    assert t_near == 5


def test_local_delivery_uses_local_latency():
    engine, net = make_net(4, local_latency=2)
    assert net.transit_cycles(2, 2, 100) == 2


def test_serialization_adds_size_cycles():
    engine, net = make_net(4, link_bytes_per_cycle=16, link_latency=3, router_latency=1)
    small = net.transit_cycles(0, 1, 16)
    large = net.transit_cycles(0, 1, 64)
    assert large == small + 3  # 4 flits vs 1 flit


def test_unregistered_destination_raises():
    engine, net = make_net()
    net.send(0, 3, None, 0, CLASS_COMMIT)
    with pytest.raises(RuntimeError):
        engine.run()


def test_duplicate_registration_rejected():
    _, net = make_net()
    net.register(0, lambda pkt: None)
    with pytest.raises(ValueError):
        net.register(0, lambda pkt: None)


def test_traffic_accounting_by_class():
    engine, net = make_net()
    net.register(1, lambda pkt: None)
    net.send(0, 1, None, 32, CLASS_MISS)
    net.send(0, 1, None, 8, CLASS_COMMIT)
    engine.run()
    assert net.stats.bytes_by_class["miss"] == 32
    assert net.stats.bytes_by_class["commit"] == 8
    assert net.stats.bytes_by_class["overhead"] == 2 * HEADER_BYTES
    assert net.stats.total_bytes == 40 + 2 * HEADER_BYTES
    assert net.stats.packets == 2


def test_per_node_byte_counters():
    engine, net = make_net()
    net.register(2, lambda pkt: None)
    net.send(0, 2, None, 8, CLASS_MISS)
    engine.run()
    assert net.stats.bytes_into_node[2] == 8 + HEADER_BYTES
    assert net.stats.bytes_out_of_node[0] == 8 + HEADER_BYTES


def test_multicast_charged_once_plus_route_bytes():
    engine, net = make_net()
    for node in (1, 2, 3):
        net.register(node, lambda pkt: None)
    net.multicast(0, [1, 2, 3], "skip", 4, CLASS_COMMIT)
    engine.run()
    # one full packet (4B payload + header) + 2 replica route bytes
    assert net.stats.bytes_by_class["commit"] == 4
    assert net.stats.bytes_by_class["overhead"] == HEADER_BYTES + 2
    assert net.stats.packets == 3


def test_multicast_sends_one_packet_per_destination():
    engine, net = make_net()
    hits = []
    for node in (1, 2, 3):
        net.register(node, lambda pkt, n=node: hits.append(n))
    count = net.multicast(0, [1, 2, 3], "skip", 4, CLASS_COMMIT)
    engine.run()
    assert count == 3
    assert sorted(hits) == [1, 2, 3]


def test_ordered_network_preserves_fifo_between_pair():
    engine, net = make_net(4)
    order = []
    net.register(1, lambda pkt: order.append(pkt.payload))
    for i in range(10):
        net.send(0, 1, i, 4, CLASS_COMMIT)
    engine.run()
    assert order == list(range(10))


def test_unordered_network_can_reorder():
    engine = Engine()
    net = Interconnect(engine, 4, ordered=False, jitter=5, seed=7,
                       link_bytes_per_cycle=None)
    order = []
    net.register(1, lambda pkt: order.append(pkt.payload))
    for i in range(50):
        net.send(0, 1, i, 4, CLASS_COMMIT)
    engine.run()
    assert sorted(order) == list(range(50))
    assert order != list(range(50))  # jitter must produce some reordering


def test_jitter_disabled_when_ordered():
    engine = Engine()
    net = Interconnect(engine, 4, ordered=True, jitter=10)
    assert net.jitter == 0


def test_egress_bandwidth_serializes_departures():
    engine = Engine()
    net = Interconnect(engine, 4, ordered=True, link_bytes_per_cycle=8,
                       link_latency=1, router_latency=0)
    times = []
    net.register(1, lambda pkt: times.append(engine.now))
    # Three 56-byte payloads (64B total = 8 inject cycles each) back to back.
    for _ in range(3):
        net.send(0, 1, None, 56, CLASS_MISS)
    engine.run()
    assert times[1] - times[0] == 8
    assert times[2] - times[1] == 8


def _delivery_order(jitter_source, seed=7, sends=50):
    engine = Engine()
    net = Interconnect(engine, 4, ordered=False, jitter=5, seed=seed,
                       link_bytes_per_cycle=None, jitter_source=jitter_source)
    order = []
    net.register(1, lambda pkt: order.append(pkt.payload))
    for i in range(sends):
        net.send(0, 1, i, 4, CLASS_COMMIT)
    engine.run()
    return order


def test_rng_is_instance_owned_not_global():
    import random as global_random

    global_random.seed(999)
    expected = [global_random.random() for _ in range(5)]
    global_random.seed(999)
    # Constructing and exercising an interconnect must not consume from
    # (or reseed) the module-level random stream.
    order_a = _delivery_order("mt")
    assert [global_random.random() for _ in range(5)] == expected
    # Same seed, fresh instance: identical draw sequence.
    assert _delivery_order("mt") == order_a


def test_jitter_sources_both_deterministic():
    for source in ("mt", "xorshift"):
        first = _delivery_order(source)
        assert first == _delivery_order(source)
        assert sorted(first) == list(range(50))


def test_xorshift_jitter_reorders_and_differs_from_mt():
    mt = _delivery_order("mt")
    xs = _delivery_order("xorshift")
    assert xs != list(range(50))  # jitter active
    assert mt != xs  # genuinely different generators


def test_invalid_jitter_source_rejected():
    engine = Engine()
    with pytest.raises(ValueError):
        Interconnect(engine, 4, jitter_source="lcg")


def test_ordered_mode_bypasses_jitter_draws():
    engine = Engine()
    net = Interconnect(engine, 4, ordered=True, jitter=10, seed=3,
                       link_bytes_per_cycle=None)
    assert net.jitter == 0
    order = []
    net.register(1, lambda pkt: order.append(pkt.payload))
    for i in range(20):
        net.send(0, 1, i, 4, CLASS_COMMIT)
    engine.run()
    assert order == list(range(20))
    # No randomness was consumed from the instance RNG.
    assert net._rng.random() == type(net._rng)(3).random()


def test_packet_latency_property():
    engine, net = make_net()
    seen = []
    net.register(1, lambda pkt: seen.append(pkt))
    net.send(0, 1, None, 0, CLASS_MISS)
    engine.run()
    assert seen[0].latency == seen[0].deliver_time - seen[0].send_time
    assert seen[0].latency > 0
