"""Unit tests for the gap-free TID vendor."""

import pytest

from repro.core import TidVendor


def test_tids_start_at_one_and_increase():
    vendor = TidVendor()
    assert vendor.next_tid(0) == 1
    assert vendor.next_tid(3) == 2
    assert vendor.next_tid(0) == 3


def test_issued_counter_and_outstanding():
    vendor = TidVendor()
    vendor.next_tid(5)
    vendor.next_tid(6)
    assert vendor.issued == 2
    assert vendor.outstanding == {1: 5, 2: 6}


def test_resolve_clears_outstanding():
    vendor = TidVendor()
    tid = vendor.next_tid(0)
    vendor.resolve(tid)
    assert vendor.outstanding == {}


def test_double_resolve_rejected():
    vendor = TidVendor()
    tid = vendor.next_tid(0)
    vendor.resolve(tid)
    with pytest.raises(ValueError):
        vendor.resolve(tid)


def test_resolve_of_unissued_rejected():
    with pytest.raises(ValueError):
        TidVendor().resolve(7)


def test_check_all_resolved_passes_when_clean():
    vendor = TidVendor()
    for _ in range(5):
        vendor.resolve(vendor.next_tid(0))
    vendor.check_all_resolved()


def test_check_all_resolved_detects_leak():
    vendor = TidVendor()
    vendor.next_tid(0)
    with pytest.raises(AssertionError, match="unresolved"):
        vendor.check_all_resolved()


def test_out_of_order_resolution_is_fine():
    vendor = TidVendor()
    t1 = vendor.next_tid(0)
    t2 = vendor.next_tid(1)
    vendor.resolve(t2)
    vendor.resolve(t1)
    vendor.check_all_resolved()


def test_highest_issued():
    vendor = TidVendor()
    assert vendor.highest_issued == 0
    vendor.next_tid(0)
    vendor.next_tid(0)
    assert vendor.highest_issued == 2
