"""Tests for the engine-level progress watchdog."""

from types import SimpleNamespace

import pytest

from repro import ScalableTCCSystem, SystemConfig, Transaction, WatchdogStall
from repro.faults import FaultPlan, NodeFault, PacketFault, FaultStats
from repro.faults.watchdog import ProgressWatchdog, format_stall_report
from repro.workloads.base import Workload


class HotCounter(Workload):
    def __init__(self, per_proc=4):
        self.per_proc = per_proc

    def schedule(self, proc, n_procs):
        return iter(
            Transaction(proc * 100 + i, [("c", 3), ("add", 0, 1)])
            for i in range(self.per_proc)
        )


def test_unhardened_drops_become_a_diagnosed_stall():
    # Drop every commit-class packet with the hardening explicitly off:
    # without retries the protocol wedges, and the watchdog must turn
    # that hang into a structured WatchdogStall instead of spinning.
    config = SystemConfig(
        n_processors=4,
        fault_plan=FaultPlan(
            packet_faults=(PacketFault("drop", 1.0, traffic_classes=("commit",)),),
            seed=1,
        ),
        harden_protocol=False,
        watchdog_interval=2_000,
        watchdog_stall_checks=3,
    )
    system = ScalableTCCSystem(config)
    with pytest.raises(WatchdogStall) as excinfo:
        system.run(HotCounter(), verify=False)
    report = excinfo.value.report
    assert report["cycle"] >= 6_000
    assert len(report["processors"]) == 4
    assert any(not p["finished"] for p in report["processors"])
    text = format_stall_report(report)
    assert "no commit progress" in text
    assert "cpu" in text


def test_hardened_run_survives_the_same_drops():
    config = SystemConfig(
        n_processors=4,
        fault_plan=FaultPlan(
            packet_faults=(PacketFault("drop", 0.3, traffic_classes=("commit",)),),
            seed=1,
        ),
        watchdog_interval=25_000,
    )
    system = ScalableTCCSystem(config)
    result = system.run(HotCounter(), verify=True)
    assert result.committed_transactions == 16
    assert result.memory_image[0][0] == 16
    assert result.fault_stats is not None
    assert result.fault_stats.drops > 0
    assert result.fault_stats.retries > 0


def test_cpu_pause_window_is_exercised_and_survived():
    config = SystemConfig(
        n_processors=4,
        fault_plan=FaultPlan(
            node_faults=(NodeFault("cpu_pause", 2, start_cycle=0,
                                   duration=20_000),),
            seed=3,
        ),
    )
    system = ScalableTCCSystem(config)
    result = system.run(HotCounter(), verify=True)
    assert result.committed_transactions == 16
    assert result.fault_stats.cpu_pause_cycles > 0


def test_dir_stall_window_is_exercised_and_survived():
    config = SystemConfig(
        n_processors=4,
        fault_plan=FaultPlan(
            node_faults=(NodeFault("dir_stall", 1, start_cycle=0,
                                   duration=20_000),),
            seed=3,
        ),
    )
    system = ScalableTCCSystem(config)
    result = system.run(HotCounter(), verify=True)
    assert result.committed_transactions == 16
    assert result.fault_stats.dir_stall_cycles > 0


def test_watchdog_off_by_default_for_fault_free_runs():
    config = SystemConfig(n_processors=4)
    assert not config.watchdog_active
    assert SystemConfig(n_processors=4, fault_plan=FaultPlan()).watchdog_active
    assert SystemConfig(n_processors=4, watchdog=True).watchdog_active


def _fake_system(violations, threshold=8):
    config = SystemConfig(n_processors=4, livelock_abort_threshold=threshold)
    proc = SimpleNamespace(
        node=0, finished=False, _consecutive_violations=violations,
        current_tid=7, retained=True,
        stats=SimpleNamespace(committed_transactions=0),
    )
    return SimpleNamespace(config=config, processors=[proc], engine=None,
                           events=None), proc


def test_livelock_reported_once_per_episode():
    system, proc = _fake_system(violations=9, threshold=8)
    stats = FaultStats()
    watchdog = ProgressWatchdog(system, stats)
    watchdog._check_livelock()
    watchdog._check_livelock()
    assert stats.livelock_episodes == 1  # still the same episode
    proc._consecutive_violations = 0  # the retained TID finally won
    watchdog._check_livelock()
    proc._consecutive_violations = 20  # ...and livelocked again
    watchdog._check_livelock()
    assert stats.livelock_episodes == 2
