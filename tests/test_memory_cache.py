"""Unit tests for the speculative cache."""

import pytest

from repro.memory import AddressMap, SpeculativeCache


@pytest.fixture
def amap():
    return AddressMap(line_size=32, word_size=4)


def small_cache(amap, ways=2, sets=4, granularity="word"):
    size = ways * sets * amap.line_size
    return SpeculativeCache(amap, size, ways, granularity=granularity)


def test_geometry(amap):
    cache = SpeculativeCache(amap, 32 * 1024, 4)
    assert cache.n_sets == 256
    assert cache.ways == 4


def test_bad_geometry_rejected(amap):
    with pytest.raises(ValueError):
        SpeculativeCache(amap, 33, 4)
    with pytest.raises(ValueError):
        SpeculativeCache(amap, 32 * 1024, 4, granularity="byte")


def test_read_miss_returns_none(amap):
    cache = small_cache(amap)
    assert cache.read(0, 0) is None
    assert cache.stats.misses == 1


def test_fill_then_read_hits(amap):
    cache = small_cache(amap)
    cache.fill(3, [10 * w for w in range(8)])
    assert cache.read(3, 2) == 20
    assert cache.stats.hits == 1


def test_speculative_read_sets_sr_bit(amap):
    cache = small_cache(amap)
    cache.fill(3, [0] * 8)
    cache.read(3, 5)
    assert cache.lookup(3).sr_mask == 1 << 5


def test_nonspeculative_read_leaves_sr_clear(amap):
    cache = small_cache(amap)
    cache.fill(3, [0] * 8)
    cache.read(3, 5, speculative=False)
    assert cache.lookup(3).sr_mask == 0


def test_speculative_write_sets_sm_not_dirty(amap):
    cache = small_cache(amap)
    cache.fill(3, [0] * 8)
    assert cache.write(3, 1, 99)
    entry = cache.lookup(3)
    assert entry.sm_mask == 1 << 1
    assert not entry.dirty
    assert entry.data[1] == 99


def test_nonspeculative_write_sets_dirty(amap):
    cache = small_cache(amap)
    cache.fill(3, [0] * 8)
    cache.write(3, 1, 99, speculative=False)
    entry = cache.lookup(3)
    assert entry.dirty
    assert entry.sm_mask == 0


def test_write_miss_returns_false(amap):
    cache = small_cache(amap)
    assert not cache.write(3, 0, 1)


def test_line_granularity_sets_full_masks(amap):
    cache = small_cache(amap, granularity="line")
    cache.fill(3, [0] * 8)
    cache.read(3, 2)
    assert cache.lookup(3).sr_mask == amap.full_line_mask
    cache.write(3, 0, 1)
    assert cache.lookup(3).sm_mask == amap.full_line_mask


def test_lru_eviction_of_clean_line(amap):
    cache = small_cache(amap, ways=2, sets=1)
    cache.fill(0, [0] * 8)
    cache.fill(1, [0] * 8)
    cache.read(0, 0)  # make line 1 the LRU
    notice = cache.fill(2, [0] * 8)
    assert notice is not None
    assert notice.line == 1
    assert not notice.dirty
    assert not cache.contains(1)


def test_dirty_eviction_reports_data(amap):
    cache = small_cache(amap, ways=1, sets=1)
    cache.fill(0, [5] * 8)
    cache.write(0, 0, 42, speculative=False)
    notice = cache.fill(1, [0] * 8)
    assert notice.dirty
    assert notice.data[0] == 42
    assert cache.stats.dirty_evictions == 1


def test_speculative_lines_never_evicted(amap):
    cache = small_cache(amap, ways=2, sets=1)
    cache.fill(0, [0] * 8)
    cache.fill(1, [0] * 8)
    cache.read(0, 0)
    cache.write(1, 0, 1)
    # Both resident lines are speculative; the set must overflow.
    notice = cache.fill(2, [0] * 8)
    assert notice is None
    assert cache.stats.speculative_overflows == 1
    assert cache.contains(0) and cache.contains(1) and cache.contains(2)


def test_refill_keeps_locally_valid_words(amap):
    cache = small_cache(amap)
    cache.fill(0, [1] * 8)
    # All words valid locally: a refill must not clobber them (they may be
    # dirtier/newer than memory's copy).
    assert cache.fill(0, [2] * 8) is None
    assert cache.read(0, 0, speculative=False) == 1


def test_refill_fills_only_invalid_words(amap):
    cache = small_cache(amap)
    cache.fill(0, [1] * 8)
    cache.invalidate_words(0, 0b0000_0110)  # words 1 and 2 invalid
    assert cache.read(0, 1, speculative=False) is None
    cache.fill(0, [2] * 8)
    assert cache.read(0, 1, speculative=False) == 2
    assert cache.read(0, 0, speculative=False) == 1


def test_invalidate_words_drops_fully_invalid_line(amap):
    cache = small_cache(amap)
    cache.fill(0, [1] * 8)
    cache.invalidate_words(0, amap.full_line_mask)
    assert not cache.contains(0)


def test_invalidate_words_clears_speculative_flags(amap):
    cache = small_cache(amap)
    cache.fill(0, [1] * 8)
    cache.read(0, 1)
    cache.write(0, 2, 9)
    entry = cache.invalidate_words(0, 0b0000_0110)
    assert entry.sr_mask == 0
    assert entry.sm_mask == 0
    assert cache.contains(0)


def test_valid_words_payload(amap):
    cache = small_cache(amap)
    cache.fill(0, list(range(8)))
    cache.invalidate_words(0, 0b0000_0001)
    entry = cache.lookup(0)
    words = entry.valid_words()
    assert 0 not in words
    assert words[3] == 3
    assert len(words) == 7


def test_commit_promotes_sm_to_dirty_and_clears_flags(amap):
    cache = small_cache(amap)
    cache.fill(0, [0] * 8)
    cache.fill(1, [0] * 8)
    cache.write(0, 0, 7)
    cache.read(1, 3)
    committed = cache.commit_speculative()
    assert committed == [0]
    assert cache.lookup(0).dirty
    assert cache.lookup(0).sm_mask == 0
    assert cache.lookup(1).sr_mask == 0
    assert cache.lookup(0).data[0] == 7


def test_abort_drops_written_lines_keeps_read_lines(amap):
    cache = small_cache(amap)
    cache.fill(0, [0] * 8)
    cache.fill(1, [11] * 8)
    cache.write(0, 0, 7)
    cache.read(1, 3)
    dropped = cache.abort_speculative()
    assert dropped == [0]
    assert not cache.contains(0)
    entry = cache.lookup(1)
    assert entry.sr_mask == 0
    assert entry.data == [11] * 8


def test_written_and_read_line_queries(amap):
    cache = small_cache(amap)
    cache.fill(0, [0] * 8)
    cache.fill(1, [0] * 8)
    cache.write(0, 0, 1)
    cache.read(1, 0)
    assert [e.line for e in cache.written_lines()] == [0]
    assert [e.line for e in cache.read_lines()] == [1]


def test_invalidate_removes_line(amap):
    cache = small_cache(amap)
    cache.fill(0, [3] * 8)
    entry = cache.invalidate(0)
    assert entry.data == [3] * 8
    assert cache.invalidate(0) is None


def test_clear_dirty(amap):
    cache = small_cache(amap)
    cache.fill(0, [0] * 8, dirty=True)
    cache.clear_dirty(0)
    assert not cache.lookup(0).dirty


def test_hit_rate(amap):
    cache = small_cache(amap)
    cache.fill(0, [0] * 8)
    cache.read(0, 0)
    cache.read(9, 0)
    assert cache.stats.hit_rate == 0.5
    assert cache.stats.accesses == 2
