"""Unit tests for the fault-injection subsystem (repro.faults)."""

import pytest

from repro.core.tid import TidVendor
from repro.faults import (
    FaultInjector,
    FaultPlan,
    FaultStats,
    NodeFault,
    PacketFault,
    AckTracker,
    Retrier,
)
from repro.network.message import Packet
from repro.sim import Engine


class RetryablePayload:
    retryable = True


class FragilePayload:  # no end-to-end retry protects this
    pass


def make_packet(src=0, dst=1, payload=None, traffic_class="commit"):
    return Packet(src, dst, payload or RetryablePayload(), 8, traffic_class)


def injected(plan, packets, delay=5, run_until=None):
    """Dispatch ``packets`` through a fresh injector; return
    (delivery times, stats)."""
    engine = Engine()
    stats = FaultStats()
    injector = FaultInjector(plan, 4, stats=stats)
    delivered = []
    for packet in packets:
        injector.dispatch(
            engine, lambda p: delivered.append((engine.now, p)), packet, delay
        )
    engine.run(until=run_until)
    return delivered, stats


# ----------------------------------------------------------------------
# plan validation
# ----------------------------------------------------------------------

@pytest.mark.parametrize("kwargs", [
    dict(kind="explode", probability=0.1),
    dict(kind="drop", probability=-0.1),
    dict(kind="drop", probability=1.5),
    dict(kind="delay", probability=0.1, delay=0),
    dict(kind="drop", probability=0.1, start_cycle=-1),
    dict(kind="drop", probability=0.1, start_cycle=10, end_cycle=10),
])
def test_invalid_packet_faults_rejected(kwargs):
    with pytest.raises(ValueError):
        PacketFault(**kwargs)


@pytest.mark.parametrize("kwargs", [
    dict(kind="meltdown", node=0, start_cycle=0, duration=10),
    dict(kind="dir_stall", node=-1, start_cycle=0, duration=10),
    dict(kind="dir_stall", node=0, start_cycle=-5, duration=10),
    dict(kind="cpu_pause", node=0, start_cycle=0, duration=0),
])
def test_invalid_node_faults_rejected(kwargs):
    with pytest.raises(ValueError):
        NodeFault(**kwargs)


def test_plan_rejects_foreign_entries():
    with pytest.raises(ValueError):
        FaultPlan(packet_faults=("not a rule",))


def test_plan_coerces_lists_and_stays_hashable():
    plan = FaultPlan(packet_faults=[PacketFault("drop", 0.1)],
                     node_faults=[NodeFault("dir_stall", 1, 0, 10)])
    assert isinstance(plan.packet_faults, tuple)
    hash(plan)
    assert not plan.empty
    assert FaultPlan().empty
    assert plan.node_windows("dir_stall", 1) == ((0, 10),)
    assert plan.node_windows("dir_stall", 2) == ()
    assert "drop" in plan.describe()
    assert FaultPlan().describe() == "(no faults)"


def test_rule_matching_filters():
    rule = PacketFault("drop", 1.0, traffic_classes=("commit",),
                       src_nodes=(0,), dst_nodes=(1,),
                       start_cycle=100, end_cycle=200)
    assert rule.matches(0, 1, "commit", 150)
    assert not rule.matches(0, 1, "miss", 150)
    assert not rule.matches(2, 1, "commit", 150)
    assert not rule.matches(0, 2, "commit", 150)
    assert not rule.matches(0, 1, "commit", 99)
    assert not rule.matches(0, 1, "commit", 200)


# ----------------------------------------------------------------------
# injector actions
# ----------------------------------------------------------------------

def test_drop_removes_retryable_packet():
    plan = FaultPlan(packet_faults=(PacketFault("drop", 1.0),))
    delivered, stats = injected(plan, [make_packet()])
    assert delivered == []
    assert stats.drops == 1
    assert stats.packets_seen == 1


def test_drop_downgraded_to_delay_for_fragile_payload():
    plan = FaultPlan(packet_faults=(PacketFault("drop", 1.0, delay=100),))
    delivered, stats = injected(plan, [make_packet(payload=FragilePayload())])
    assert len(delivered) == 1
    assert delivered[0][0] > 5  # delayed beyond the fault-free time
    assert stats.drops == 0
    assert stats.downgraded_drops == 1
    assert stats.delays == 1


def test_dup_delivers_twice():
    plan = FaultPlan(packet_faults=(PacketFault("dup", 1.0, delay=50),))
    delivered, stats = injected(plan, [make_packet()])
    assert len(delivered) == 2
    assert delivered[0][0] == 5  # first copy on time
    assert delivered[1][0] > 5
    assert stats.duplicates == 1


def test_probability_zero_never_fires():
    plan = FaultPlan(packet_faults=(PacketFault("drop", 0.0),))
    delivered, stats = injected(plan, [make_packet() for _ in range(20)])
    assert len(delivered) == 20
    assert stats.injected_total == 0


def test_reorder_backstop_releases_lone_packet():
    plan = FaultPlan(packet_faults=(PacketFault("reorder", 1.0, delay=60),))
    delivered, stats = injected(plan, [make_packet()])
    assert len(delivered) == 1
    assert delivered[0][0] == 60  # held until the backstop
    assert stats.reorders == 1
    assert stats.reorder_backstops == 1


def test_reorder_later_packet_overtakes_held_one():
    plan = FaultPlan(packet_faults=(PacketFault("reorder", 1.0, delay=60),))
    engine = Engine()
    stats = FaultStats()
    injector = FaultInjector(plan, 4, stats=stats)
    delivered = []
    first = make_packet()
    second = make_packet()
    injector.dispatch(engine, lambda p: delivered.append(p), first, 5)
    injector.dispatch(engine, lambda p: delivered.append(p), second, 5)
    engine.run()
    # The second dispatch released the first (held) packet; the second
    # waited for its own backstop.  Both always arrive.
    assert delivered == [first, second]
    assert stats.reorders == 2
    assert stats.reorder_backstops == 1


def test_flush_held_delivers_everything():
    plan = FaultPlan(packet_faults=(PacketFault("reorder", 1.0, delay=10_000),))
    engine = Engine()
    injector = FaultInjector(plan, 4)
    delivered = []
    injector.dispatch(engine, lambda p: delivered.append(p), make_packet(), 5)
    injector.flush_held(engine, lambda p: delivered.append(p))
    assert len(delivered) == 1


def test_injector_is_deterministic():
    plan = FaultPlan(
        packet_faults=(
            PacketFault("drop", 0.3),
            PacketFault("dup", 0.3, delay=40),
            PacketFault("delay", 0.3, delay=40),
        ),
        seed=17,
    )
    packets = [make_packet(src=i % 4, dst=(i + 1) % 4) for i in range(50)]
    times_a, stats_a = injected(plan, packets)
    packets = [make_packet(src=i % 4, dst=(i + 1) % 4) for i in range(50)]
    times_b, stats_b = injected(plan, packets)
    assert [t for t, _ in times_a] == [t for t, _ in times_b]
    assert stats_a.as_dict() == stats_b.as_dict()
    assert stats_a.injected_total > 0


def test_node_fault_windows_report_remaining_pause():
    plan = FaultPlan(node_faults=(
        NodeFault("dir_stall", 1, start_cycle=100, duration=50),
        NodeFault("cpu_pause", 2, start_cycle=0, duration=30),
    ))
    injector = FaultInjector(plan, 4)
    assert injector.has_dir_stalls and injector.has_cpu_pauses
    assert injector.dir_stall_pause(1, 99) == 0
    assert injector.dir_stall_pause(1, 100) == 50
    assert injector.dir_stall_pause(1, 140) == 10
    assert injector.dir_stall_pause(1, 150) == 0
    assert injector.dir_stall_pause(0, 120) == 0
    assert injector.cpu_pause(2, 10) == 20
    assert injector.stats.dir_stall_cycles == 60
    assert injector.stats.cpu_pause_cycles == 20


# ----------------------------------------------------------------------
# retry primitives
# ----------------------------------------------------------------------

def test_retrier_backs_off_exponentially_to_cap():
    engine = Engine()
    sent = []
    done = []
    Retrier(engine, lambda: sent.append(engine.now), lambda: bool(done),
            base_timeout=10, backoff=2, cap=40)
    engine.run(until=120)
    # ticks at 10 (timeout->20), 30 (->40), 70 (->40 capped), 110
    assert sent == [10, 30, 70, 110]
    done.append(True)
    engine.run(until=1000)
    assert sent == [10, 30, 70, 110]  # self-cancelled after done


def test_retrier_counts_into_stats():
    engine = Engine()
    stats = FaultStats()
    Retrier(engine, lambda: None, lambda: False, 10, 2, 80, stats)
    engine.run(until=200)
    assert stats.retries > 0


def test_ack_tracker_resends_only_to_unacked_targets():
    engine = Engine()
    sent = []
    tracker = AckTracker(engine, [1, 2, 3],
                         lambda node: sent.append((engine.now, node)),
                         base_timeout=10, backoff=2, cap=40)
    tracker.acked(1)
    engine.run(until=15)
    assert sent == [(10, 2), (10, 3)]
    tracker.acked(2)
    tracker.acked(3)
    assert tracker.all_acked()
    engine.run(until=500)
    assert sent == [(10, 2), (10, 3)]  # no further resends
    tracker.acked(7)  # unknown node: harmless


# ----------------------------------------------------------------------
# vendor dedup
# ----------------------------------------------------------------------

def test_vendor_dedups_sequenced_requests():
    vendor = TidVendor(0)
    first = vendor.next_tid(3, seq=1)
    assert vendor.next_tid(3, seq=1) == first  # retry: same TID back
    assert vendor.duplicate_requests == 1
    second = vendor.next_tid(3, seq=2)
    assert second == first + 1
    # A late duplicate of seq 1 after seq 2 was minted still answers
    # with a cached TID rather than minting a gap.
    assert vendor.next_tid(3, seq=1) == second
    assert vendor.duplicate_requests == 2
    # Per-requester sequencing: another node's seq 1 is independent.
    other = vendor.next_tid(2, seq=1)
    assert other == second + 1


# ----------------------------------------------------------------------
# stale-invalidation word protection
# ----------------------------------------------------------------------

def _hardened_processor():
    from repro.core.config import SystemConfig
    from repro.core.system import ScalableTCCSystem

    system = ScalableTCCSystem(
        SystemConfig(n_processors=2, harden_protocol=True)
    )
    return system.processors[0]


def test_stale_dup_invalidation_cannot_destroy_committed_words():
    """An invalidation whose TID predates the commit that produced our
    dirty copy must not clear those words or flush ownership — they can
    be the only architectural copy of the line (chaos seed 379)."""
    proc = _hardened_processor()
    words = proc.config.line_size // proc.config.word_size
    proc.hierarchy.fill(7, list(range(words)))
    entry = proc.hierarchy.peek(7)
    entry.dirty = True
    entry.commit_tid = 9
    entry.commit_sm_mask = 0b1
    proc.latest_tid = 9

    wb_words, _ = proc._apply_invalidation(7, 0b1, inv_tid=5)
    entry = proc.hierarchy.peek(7)
    assert wb_words is None           # no ownership transfer
    assert entry.dirty                # still the owner's copy
    assert entry.valid_mask & 0b1     # the protected word survives


def test_partially_stale_invalidation_clears_only_unwritten_words():
    proc = _hardened_processor()
    words = proc.config.line_size // proc.config.word_size
    proc.hierarchy.fill(7, list(range(words)))
    entry = proc.hierarchy.peek(7)
    entry.dirty = True
    entry.commit_tid = 9
    entry.commit_sm_mask = 0b1
    proc.latest_tid = 9

    # Word 1 was never ours: the stale duplicate still invalidates it.
    wb_words, wb_tid = proc._apply_invalidation(7, 0b11, inv_tid=5)
    entry = proc.hierarchy.peek(7)
    assert entry.valid_mask & 0b1
    assert not (entry.valid_mask & 0b10)
    # The surviving words ride home tagged with our commit's TID, so the
    # home's TID-tag rule accepts them.
    assert wb_words is not None and 0 in wb_words
    assert wb_tid >= 9


def test_newer_invalidation_still_honoured():
    proc = _hardened_processor()
    words = proc.config.line_size // proc.config.word_size
    proc.hierarchy.fill(7, list(range(words)))
    entry = proc.hierarchy.peek(7)
    entry.dirty = True
    entry.commit_tid = 9
    entry.commit_sm_mask = 0b1
    proc.latest_tid = 9

    wb_words, _ = proc._apply_invalidation(7, 0b1, inv_tid=12)
    entry = proc.hierarchy.peek(7)
    assert not (entry.valid_mask & 0b1)  # genuinely superseded
    assert not entry.dirty               # ownership moved home


def test_validated_committer_protects_speculative_words():
    """Before local commit the about-to-be-committed data lives only in
    SM words; a stale duplicate invalidation must not clear them."""
    proc = _hardened_processor()
    words = proc.config.line_size // proc.config.word_size
    proc.hierarchy.fill(7, list(range(words)))
    entry = proc.hierarchy.peek(7)
    entry.sm_mask = 0b1
    proc.validated = True
    proc.current_tid = 11
    proc.in_transaction = True

    wb_words, _ = proc._apply_invalidation(7, 0b1, inv_tid=8)
    entry = proc.hierarchy.peek(7)
    assert wb_words is None
    assert entry.sm_mask & 0b1
    assert entry.valid_mask & 0b1
