"""Tests for result export and the sweep utility."""

import json

import pytest

from repro import ScalableTCCSystem, SystemConfig, app_workload
from repro.analysis.sweep import Sweep
from repro.workloads import CounterWorkload


@pytest.fixture(scope="module")
def result():
    system = ScalableTCCSystem(SystemConfig(n_processors=4))
    return system.run(CounterWorkload(increments_per_proc=5),
                      max_cycles=50_000_000)


class TestExport:
    def test_to_dict_structure(self, result):
        data = result.to_dict()
        assert data["config"]["n_processors"] == 4
        assert data["cycles"] == result.cycles
        assert data["committed_transactions"] == 20
        assert len(data["per_processor"]) == 4
        assert set(data["breakdown"]) == {
            "useful", "miss", "idle", "commit", "violation"
        }

    def test_to_dict_is_json_serializable(self, result):
        json.dumps(result.to_dict())

    def test_save_json(self, result, tmp_path):
        path = tmp_path / "run.json"
        result.save_json(str(path))
        loaded = json.loads(path.read_text())
        assert loaded["cycles"] == result.cycles


class TestSweep:
    def make_sweep(self, grid):
        return Sweep(
            SystemConfig(n_processors=2, ordered_network=True),
            grid,
            lambda cfg: app_workload("barnes", scale=0.05),
            max_cycles=500_000_000,
        )

    def test_grid_size(self):
        sweep = self.make_sweep(
            {"link_latency": [1, 3], "granularity": ["word", "line"]}
        )
        assert len(sweep) == 4

    def test_run_collects_all_points(self):
        sweep = self.make_sweep({"link_latency": [1, 6]})
        points = sweep.run()
        assert len(points) == 2
        assert points[0].overrides == {"link_latency": 1}
        assert points[1].overrides == {"link_latency": 6}
        # higher link latency never speeds things up
        assert points[1].result.cycles >= points[0].result.cycles

    def test_table_and_csv_rendering(self):
        sweep = self.make_sweep({"link_latency": [1, 6]})
        sweep.run()
        table = sweep.as_table()
        assert "link_latency" in table
        assert "cycles" in table
        csv_text = sweep.as_csv()
        lines = csv_text.strip().splitlines()
        assert len(lines) == 3  # header + 2 points
        assert lines[0].startswith("link_latency,")

    def test_best_point(self):
        sweep = self.make_sweep({"link_latency": [6, 1]})
        sweep.run()
        assert sweep.best("cycles").overrides["link_latency"] == 1

    def test_rendering_before_run_rejected(self):
        sweep = self.make_sweep({"link_latency": [1]})
        with pytest.raises(RuntimeError):
            sweep.as_table()
