"""Unit tests for the coherence message set (sizes and traffic classes)."""

from repro.core import messages as m
from repro.network.message import (
    CLASS_COMMIT,
    CLASS_MISS,
    CLASS_OVERHEAD,
    CLASS_WRITEBACK,
)


def test_load_request_is_overhead():
    msg = m.LoadRequest(requester=1, line=5, seq=1)
    assert msg.traffic_class == CLASS_OVERHEAD
    assert msg.payload_bytes == 4


def test_load_reply_counts_line_data():
    msg = m.LoadReply(line=5, data=[0] * 8, seq=1)
    assert msg.traffic_class == CLASS_MISS
    assert msg.payload_bytes == 4 + 32


def test_skip_and_probe_are_commit_class():
    assert m.SkipMsg(tid=3).traffic_class == CLASS_COMMIT
    assert m.ProbeRequest(requester=0, tid=3, writing=True).traffic_class == CLASS_COMMIT
    assert m.ProbeReply(directory=0, tid=3, nstid=3, writing=True).traffic_class == CLASS_COMMIT


def test_mark_size_scales_with_lines_not_data():
    small = m.MarkMsg(committer=0, tid=1, lines={10: 0xFF})
    large = m.MarkMsg(committer=0, tid=1, lines={10: 0xFF, 11: 1, 12: 2})
    assert small.traffic_class == CLASS_COMMIT
    assert large.payload_bytes - small.payload_bytes == 2 * (4 + 1)


def test_write_through_mark_carries_data_cost():
    lean = m.MarkMsg(committer=0, tid=1, lines={10: 0b11})
    fat = m.MarkMsg(committer=0, tid=1, lines={10: 0b11}, data={10: {0: 7, 1: 9}})
    assert fat.payload_bytes == lean.payload_bytes + 8


def test_invalidation_class_and_size():
    msg = m.Invalidation(directory=0, line=9, word_mask=0b1, tid=4)
    assert msg.traffic_class == CLASS_COMMIT
    assert msg.payload_bytes == 9


def test_inv_ack_grows_with_writeback_payload():
    plain = m.InvAck(sharer=1, line=9, tid=4)
    carrying = m.InvAck(sharer=1, line=9, tid=4, wb_words={0: 5, 3: 7}, wb_tid=2)
    assert carrying.payload_bytes == plain.payload_bytes + 2 * 4 + 1


def test_writeback_is_writeback_class_and_counts_words():
    msg = m.WriteBackMsg(writer=1, line=9, words={0: 1, 1: 2, 2: 3}, tid=5, remove=True)
    assert msg.traffic_class == CLASS_WRITEBACK
    assert msg.payload_bytes == 4 + 4 + 1 + 12


def test_abort_default_is_not_retaining():
    assert not m.AbortMsg(committer=0, tid=1).retain
    assert m.AbortMsg(committer=0, tid=1, retain=True).retain


def test_token_messages():
    inv = m.TokenInv(committer=0, tid=1, lines={5: 0b1, 6: 0b10})
    assert inv.traffic_class == CLASS_COMMIT
    assert inv.payload_bytes == 4 + 2 * 5
    write = m.TokenWrite(committer=0, tid=1, lines={5: {0: 1, 1: 2}})
    assert write.payload_bytes == 4 + (4 + 1 + 8)
    assert m.TokenInvAck(node=1, tid=1).traffic_class == CLASS_OVERHEAD
    assert m.TokenWriteAck(directory=1, tid=1).traffic_class == CLASS_OVERHEAD


def test_flush_request_overhead():
    assert m.FlushRequest(directory=0, line=1).traffic_class == CLASS_OVERHEAD
