"""Tests for the differential conformance subsystem.

Generator determinism, program/case serialization round-trips, the
differ's ability to catch every class of injected corruption, greedy
shrinking (against a synthetic failure check, via the injectable ``run``
hook), counterexample files, and the harness's bit-identical fingerprint
across ``--jobs`` settings and cache hits.
"""

import copy
import json

import pytest

from repro.conform import (
    ConformCase,
    ConformProgram,
    diff_run,
    generate_program,
    iter_counterexamples,
    load_counterexample,
    make_case,
    replay_counterexample,
    run_conform,
    run_conform_case,
    save_counterexample,
    shrink_case,
)
from repro.conform.harness import results_fingerprint
from repro.core.system import ScalableTCCSystem
from repro.runner import JobSpec, ResultCache, run_jobs
from repro.verify import CommitRecord


class TestGenerator:
    def test_same_seed_same_program(self):
        assert generate_program(7).to_dict() == generate_program(7).to_dict()

    def test_different_seeds_differ(self):
        assert generate_program(1).to_dict() != generate_program(2).to_dict()

    def test_programs_are_valid_workloads(self):
        for seed in range(5):
            generate_program(seed).validate()

    def test_make_case_deterministic_including_fault_plan(self):
        a, b = make_case(3, faults=True), make_case(3, faults=True)
        assert a.to_dict() == b.to_dict()
        assert a.fault_plan is not None

    def test_faults_flag_changes_case(self):
        clean, faulty = make_case(3), make_case(3, faults=True)
        assert clean.fault_plan is None
        assert clean.to_dict() != faulty.to_dict()
        # ...but not the program: same seed, same transactional code.
        assert clean.program.to_dict() == faulty.program.to_dict()


class TestSerialization:
    def test_program_round_trip(self):
        program = generate_program(11)
        data = json.loads(json.dumps(program.to_dict()))
        assert ConformProgram.from_dict(data).to_dict() == program.to_dict()

    def test_case_round_trip_with_fault_plan(self):
        case = make_case(11, faults=True)
        data = json.loads(json.dumps(case.to_dict()))
        restored = ConformCase.from_dict(data)
        assert restored.to_dict() == case.to_dict()
        # The restored case must rebuild an identical machine config.
        assert restored.build_config() == case.build_config()

    def test_schedule_mismatch_rejected(self):
        with pytest.raises(ValueError, match="schedules"):
            ConformProgram(n_processors=2, schedules=[[]])


def run_machine(case):
    system = ScalableTCCSystem(case.build_config())
    return system.run(case.build_workload(), max_cycles=50_000_000,
                      verify=False)


@pytest.fixture(scope="module")
def clean_run():
    """One real simulator run of a fault-free case, shared read-only."""
    case = make_case(2)
    return case, run_machine(case)


def corrupted(result, mutate):
    """A deep-copied SimulationResult with ``mutate`` applied."""
    twin = copy.deepcopy(result)
    mutate(twin)
    return twin


class TestDiffer:
    """Every diff surface must catch its corruption class — injected
    into a *real* run's log, not a hand-built one."""

    def test_clean_run_has_no_mismatches(self, clean_run):
        case, result = clean_run
        assert diff_run(case.program, result) == []

    def first_kind(self, case, result):
        mismatches = diff_run(case.program, result)
        assert mismatches, "corruption went undetected"
        return mismatches[0].kind

    def test_corrupt_read_value(self, clean_run):
        case, result = clean_run

        def mutate(r):
            rec = next(rec for rec in r.commit_log if rec.reads)
            line, word, value = rec.reads[0]
            rec.reads[0] = (line, word, value + 1)

        kind = self.first_kind(case, corrupted(result, mutate))
        assert kind == "read-witness"

    def test_corrupt_log_ops(self, clean_run):
        # A log whose recorded ops diverge from the program cannot vouch
        # for itself: the oracle executes the *program's* ops.
        case, result = clean_run

        def mutate(r):
            rec = r.commit_log[0]
            r.commit_log[0] = CommitRecord(
                tid=rec.tid,
                tx=type(rec.tx)(rec.tx.tx_id, [("c", 1)]),
                proc=rec.proc, reads=rec.reads,
                commit_time=rec.commit_time,
            )

        kind = self.first_kind(case, corrupted(result, mutate))
        assert kind == "ops-mismatch"

    def test_dropped_commit(self, clean_run):
        case, result = clean_run
        kind = self.first_kind(
            case, corrupted(result, lambda r: r.commit_log.pop()))
        assert kind == "missing-commit"

    def test_corrupt_final_memory(self, clean_run):
        case, result = clean_run

        def mutate(r):
            line = next(iter(r.memory_image))
            r.memory_image[line][0] += 1

        kind = self.first_kind(case, corrupted(result, mutate))
        assert kind == "final-memory"

    def test_reordered_tids_break_program_order(self, clean_run):
        case, result = clean_run

        def mutate(r):
            procs = {}
            for rec in r.commit_log:
                procs.setdefault(rec.proc, []).append(rec)
            a, b = next(recs[:2] for recs in procs.values()
                        if len(recs) >= 2)
            a.tid, b.tid = b.tid, a.tid

        kind = self.first_kind(case, corrupted(result, mutate))
        assert kind in ("program-order", "epoch-order")

    def test_duplicate_tid(self, clean_run):
        case, result = clean_run

        def mutate(r):
            r.commit_log[1].tid = r.commit_log[0].tid

        kind = self.first_kind(case, corrupted(result, mutate))
        assert kind == "duplicate-tid"


class TestRunConformCase:
    @pytest.mark.parametrize("faults", [False, True])
    def test_seed_zero_conforms(self, faults):
        result = run_conform_case(make_case(0, faults=faults))
        assert result.outcome == "ok", result.detail
        assert result.committed == result.transactions

    def test_as_dict_round_trips(self):
        from repro.conform import ConformCaseResult

        result = run_conform_case(make_case(1))
        assert ConformCaseResult(**result.as_dict()).as_dict() \
            == result.as_dict()


class TestShrinker:
    def test_minimizes_synthetic_failure(self):
        # "Failure": the program touches address 0 with an add.  The
        # shrinker should strip everything else away via the injectable
        # run hook — no simulator involved, so this is fast and exact.
        from repro.conform.differ import ConformCaseResult

        def fake_run(case):
            bad = any(
                op[0] == "add" and op[1] == 0
                for tx in case.program.transactions().values()
                for op in tx.ops
            )
            return ConformCaseResult(
                seed=case.seed, faults=case.faults,
                n_processors=case.program.n_processors,
                transactions=case.program.tx_count,
                outcome="mismatch" if bad else "ok",
                detail="synthetic",
                mismatches=[{"kind": "synthetic", "detail": "x"}] if bad
                else [],
            )

        case = make_case(2)  # seed 2's program does hit address 0
        assert not fake_run(case).ok
        shrunk = shrink_case(case, max_evals=400, run=fake_run)
        assert shrunk.final_txs == 1
        assert shrunk.final_ops == 1
        only_tx = next(iter(shrunk.case.program.transactions().values()))
        assert only_tx.ops[0][0] == "add" and only_tx.ops[0][1] == 0
        assert shrunk.case.program.n_processors == 1
        assert not shrunk.result.ok

    def test_shrunk_case_stays_well_formed(self):
        from repro.conform.differ import ConformCaseResult

        def fake_run(case):
            case.program.validate()  # would raise on barrier imbalance
            return ConformCaseResult(
                seed=case.seed, faults=case.faults,
                n_processors=case.program.n_processors,
                transactions=case.program.tx_count,
                outcome="stall", detail="synthetic",
            )

        shrunk = shrink_case(make_case(4), max_evals=150, run=fake_run)
        shrunk.case.program.validate()
        assert shrunk.final_txs >= 1

    def test_passing_case_rejected(self):
        from repro.conform.differ import ConformCaseResult

        def fake_run(case):
            return ConformCaseResult(
                seed=case.seed, faults=False, n_processors=1,
                transactions=1, outcome="ok")

        with pytest.raises(ValueError, match="does not fail"):
            shrink_case(make_case(0), run=fake_run)


class TestCounterexamples:
    def test_save_load_replay_round_trip(self, tmp_path):
        case = make_case(5, faults=True)
        result = run_conform_case(case)
        path = save_counterexample(case, result, tmp_path / "ce.json")
        loaded, failure = load_counterexample(path)
        assert loaded.to_dict() == case.to_dict()
        assert failure["outcome"] == result.outcome
        assert replay_counterexample(path).as_dict() == result.as_dict()

    def test_iter_sorted_and_format_checked(self, tmp_path):
        case = make_case(1)
        result = run_conform_case(case)
        save_counterexample(case, result, tmp_path / "b.json")
        save_counterexample(case, result, tmp_path / "a.json")
        (tmp_path / "not_a_ce.json").write_text('{"format": "bogus"}')
        with pytest.raises(ValueError, match="bogus"):
            list(iter_counterexamples(tmp_path))
        (tmp_path / "not_a_ce.json").unlink()
        names = [p.name for p, _, _ in iter_counterexamples(tmp_path)]
        assert names == ["a.json", "b.json"]

    def test_missing_directory_yields_nothing(self, tmp_path):
        assert list(iter_counterexamples(tmp_path / "absent")) == []


class TestJobSpecWiring:
    def test_conform_spec_needs_seed(self):
        with pytest.raises(ValueError, match="seed"):
            JobSpec(kind="conform")

    def test_faults_flag_keys_the_cache(self):
        clean = JobSpec(kind="conform", seed=1)
        faulty = JobSpec(kind="conform", seed=1,
                         workload_args={"faults": True})
        assert clean.key() != faulty.key()

    def test_worker_executes_conform_job(self):
        outcomes, _ = run_jobs([JobSpec(kind="conform", seed=0)], jobs=1)
        assert outcomes[0].ok
        assert outcomes[0].payload["case"]["outcome"] == "ok"


@pytest.mark.slow
class TestHarnessBitIdentity:
    """The acceptance criterion: identical fingerprints no matter how
    the campaign was scheduled or whether it hit the cache."""

    CASES = 6

    def test_jobs_and_cache_equivalence(self, tmp_path):
        cache = ResultCache(root=str(tmp_path))
        serial = run_conform(cases=self.CASES, jobs=1, cache=None)
        parallel = run_conform(cases=self.CASES, jobs=2, cache=cache)
        warm = run_conform(cases=self.CASES, jobs=2, cache=cache)
        assert serial["fingerprint"] == parallel["fingerprint"]
        assert parallel["fingerprint"] == warm["fingerprint"]
        assert warm["runner"]["from_cache"] == self.CASES
        assert serial["failed"] == 0

    def test_fingerprint_covers_every_case(self):
        from repro.conform import ConformCaseResult

        a = [ConformCaseResult(seed=i, faults=False, n_processors=1,
                               transactions=1, outcome="ok")
             for i in range(3)]
        b = [copy.deepcopy(r) for r in a]
        assert results_fingerprint(a) == results_fingerprint(b)
        b[2].outcome = "mismatch"
        assert results_fingerprint(a) != results_fingerprint(b)


@pytest.mark.slow
class TestHarnessFailurePath:
    """Fake a failing worker outcome so run_conform's shrink-and-save
    path executes for real (the live simulator passes every seed, so the
    failure has to be injected at the worker boundary)."""

    @staticmethod
    def fake_worker(monkeypatch, forced_mismatch):
        import repro.runner as runner_mod
        from repro.conform.differ import ConformCaseResult

        class Outcome:
            def __init__(self, index, data):
                self.index = index
                self.ok = True
                self.error = None
                self.payload = {"case": data}

        class Stats:
            def as_dict(self):
                return {"jobs": 1, "executed": 1, "from_cache": 0,
                        "wall_s": 0.0, "cache": None}

        def fake_run_jobs(specs, jobs=None, cache=None, progress=None):
            outcomes = []
            for i, spec in enumerate(specs):
                faults = bool((spec.workload_args or {}).get("faults"))
                data = run_conform_case(
                    make_case(spec.seed, faults=faults)).as_dict()
                if spec.seed in forced_mismatch:
                    data.update(outcome="mismatch", detail="forced",
                                mismatches=[{"kind": "forced",
                                             "detail": "x"}])
                outcome = Outcome(i, data)
                outcomes.append(outcome)
                if progress:
                    progress(outcome)
            return outcomes, Stats()

        monkeypatch.setattr(runner_mod, "run_jobs", fake_run_jobs)
        return ConformCaseResult

    def test_unreproducible_failure_recorded(self, monkeypatch):
        # The parent re-runs the real case, which passes, so the report
        # must say the failure did not reproduce rather than crash.
        self.fake_worker(monkeypatch, forced_mismatch={1})
        report = run_conform(cases=2, seed0=0, shrink=True, shrink_evals=5)
        assert report["failed"] == 1
        assert report["shrunk"] == [{"seed": 1, "reproduced": False}]

    def test_reproducing_failure_shrunk_and_saved(self, tmp_path,
                                                  monkeypatch):
        import repro.conform.harness as harness_mod

        ConformCaseResult = self.fake_worker(monkeypatch,
                                             forced_mismatch={1})

        def flaky_run(case):
            result = run_conform_case(case)
            if result.ok:
                result = ConformCaseResult(**result.as_dict())
                result.outcome = "mismatch"
                result.detail = "forced"
                result.mismatches = [{"kind": "forced", "detail": "x"}]
            return result

        monkeypatch.setattr(
            harness_mod, "shrink_case",
            lambda case, **kw: shrink_case(case, max_evals=40,
                                           run=flaky_run))
        report = run_conform(cases=1, seed0=1, shrink=True,
                             save_dir=str(tmp_path))
        assert report["failed"] == 1
        entry = report["shrunk"][0]
        assert entry["reproduced"] and entry["outcome"] == "mismatch"
        loaded, failure = load_counterexample(entry["file"])
        assert failure["outcome"] == "mismatch"
        assert loaded.program.tx_count <= make_case(1).program.tx_count
