"""OCC conditions (Section 2.1) made observable.

Kung & Robinson's condition 2 allows only one commit at a time (the
token baseline); condition 3 allows commits to overlap when write-sets
touch disjoint data (the scalable design).  Using the event log's
commit-phase spans we can measure that overlap directly — plus error
paths of the run loop itself.
"""

import pytest

from repro import ScalableTCCSystem, SystemConfig, Transaction
from repro.core.system import SimulationTimeout
from repro.workloads import PrivateWorkload
from repro.workloads.base import Workload

PAGE = 4096


class Scripted(Workload):
    def __init__(self, schedules):
        self.schedules = schedules

    def schedule(self, proc, n_procs):
        return iter(self.schedules[proc])


def commit_windows(system):
    """Per-processor (commit_start, tx_commit) spans from the event log."""
    starts = {}
    windows = []
    for event in system.events.events:
        if event.category == "commit_start":
            starts[event.node] = event.time
        elif event.category == "tx_commit":
            begin = starts.pop(event.node, None)
            if begin is not None:
                windows.append((begin, event.time, event.node))
    return windows


def overlapping_pairs(windows):
    count = 0
    for i, (b1, e1, n1) in enumerate(windows):
        for (b2, e2, n2) in windows[i + 1:]:
            if n1 != n2 and b1 < e2 and b2 < e1:
                count += 1
    return count


def heavy_commit_schedules(n_procs):
    """Transactions with sizeable disjoint write-sets and tiny compute:
    commit time dominates, so overlap is measurable."""
    schedules = []
    for p in range(n_procs):
        base = (1 + p) * (PAGE * 64)
        txs = []
        for i in range(6):
            ops = [("c", 5)]
            for j in range(10):
                ops.append(("st", base + (i * 10 + j) * 32, i + j + 1))
            txs.append(Transaction(p * 100 + i, ops))
        schedules.append(txs)
    return schedules


class TestCondition3Overlap:
    def test_scalable_commits_overlap_in_time(self):
        system = ScalableTCCSystem(
            SystemConfig(n_processors=8, event_log=True)
        )
        system.run(Scripted(heavy_commit_schedules(8)),
                   max_cycles=200_000_000)
        windows = commit_windows(system)
        assert len(windows) == 48
        assert overlapping_pairs(windows) > 0  # condition 3: parallelism

    def test_token_commits_never_overlap(self):
        """Condition 2: the token serializes the whole commit phase.
        Windows measured from token acquisition to local commit may not
        overlap across processors."""
        system = ScalableTCCSystem(
            SystemConfig(n_processors=8, event_log=True,
                         commit_backend="token")
        )
        system.run(Scripted(heavy_commit_schedules(8)),
                   max_cycles=200_000_000)
        # Token hold spans: use the Resource accounting — one at a time
        # by construction; confirm the machine actually serialized by
        # comparing against the scalable run's wall clock.
        assert system.token.total_acquisitions == 48
        assert not system.token.held

    def test_scalable_beats_token_at_scale(self):
        """At 32 processors commit serialization dominates the token
        design (the A1 crossover); parallel commit wins clearly."""
        cycles = {}
        for backend in ("scalable", "token"):
            system = ScalableTCCSystem(
                SystemConfig(n_processors=32, commit_backend=backend)
            )
            result = system.run(Scripted(heavy_commit_schedules(32)),
                                max_cycles=500_000_000)
            cycles[backend] = result.cycles
        assert cycles["scalable"] < cycles["token"]


class TestRunErrorPaths:
    def test_system_is_single_shot(self):
        system = ScalableTCCSystem(SystemConfig(n_processors=2))
        system.run(PrivateWorkload(tx_per_proc=1), max_cycles=50_000_000)
        with pytest.raises(RuntimeError, match="exactly one workload"):
            system.run(PrivateWorkload(tx_per_proc=1))

    def test_timeout_reports_unfinished_processors(self):
        system = ScalableTCCSystem(SystemConfig(n_processors=2))
        big = PrivateWorkload(tx_per_proc=50, compute=10_000)
        with pytest.raises(SimulationTimeout, match="unfinished at cycle"):
            system.run(big, max_cycles=100)

    def test_inconsistent_barriers_deadlock_detected(self):
        from repro.workloads.base import BARRIER

        class Broken(Workload):
            def schedule(self, proc, n_procs):
                items = [Transaction(proc, [("c", 10)])]
                if proc == 0:
                    items.append(BARRIER)  # P0 waits forever
                return iter(items)

        system = ScalableTCCSystem(SystemConfig(n_processors=2))
        with pytest.raises(SimulationTimeout, match="deadlock"):
            system.run(Broken(), max_cycles=1_000_000)

    def test_validate_workload_flag_catches_it_first(self):
        from repro.workloads.base import BARRIER

        class Broken(Workload):
            def schedule(self, proc, n_procs):
                items = [Transaction(proc, [("c", 10)])]
                if proc == 0:
                    items.append(BARRIER)
                return iter(items)

        system = ScalableTCCSystem(SystemConfig(n_processors=2))
        with pytest.raises(ValueError, match="barrier"):
            system.run(Broken(), validate_workload=True)
