"""Tests for the finite directory-cache timing model."""

import pytest

from repro import ScalableTCCSystem, SystemConfig, Transaction
from repro.directory.controller import _DirectoryCache
from repro.workloads.base import Workload


class TestUnit:
    def test_miss_then_hit(self):
        cache = _DirectoryCache(4)
        assert not cache.access(1)
        assert cache.access(1)

    def test_lru_eviction(self):
        cache = _DirectoryCache(2)
        cache.access(1)
        cache.access(2)
        cache.access(1)      # refresh 1
        cache.access(3)      # evicts 2
        assert cache.access(1)
        assert not cache.access(2)

    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            _DirectoryCache(0)


class Scripted(Workload):
    def __init__(self, schedules):
        self.schedules = schedules

    def schedule(self, proc, n_procs):
        return iter(self.schedules[proc])


def run(schedules, **kwargs):
    kwargs.setdefault("n_processors", len(schedules))
    kwargs.setdefault("ordered_network", True)
    system = ScalableTCCSystem(SystemConfig(**kwargs))
    result = system.run(Scripted(schedules), max_cycles=100_000_000)
    return system, result


def _hot_workload(lines=2, repeats=12):
    txs = []
    for i in range(repeats):
        addr = (i % lines) * 32
        txs.append(Transaction(i, [("c", 5), ("add", addr, 1)]))
    return [txs]


class TestIntegration:
    def test_small_working_set_hits_after_warmup(self):
        system, result = run(_hot_workload(), directory_cache_entries=64)
        stats = system.directories[0].stats
        assert stats.dir_cache_hits > stats.dir_cache_misses
        assert stats.dir_cache_hit_rate > 0.5

    def test_thrashing_working_set_misses(self):
        # 64 distinct lines through a 2-entry directory cache
        txs = [
            Transaction(i, [("c", 5), ("st", i * 32, i)]) for i in range(64)
        ]
        system, result = run([txs], directory_cache_entries=2)
        stats = system.directories[0].stats
        assert stats.dir_cache_misses > stats.dir_cache_hits

    def test_ideal_cache_records_nothing(self):
        system, result = run(_hot_workload(), directory_cache_entries=None)
        stats = system.directories[0].stats
        assert stats.dir_cache_hits == 0
        assert stats.dir_cache_misses == 0
        assert stats.dir_cache_hit_rate == 1.0

    def test_finite_cache_costs_cycles(self):
        _, ideal = run(_hot_workload(lines=16, repeats=32))
        _, tiny = run(
            _hot_workload(lines=16, repeats=32), directory_cache_entries=1
        )
        assert tiny.cycles > ideal.cycles

    def test_correctness_unaffected_by_cache_size(self):
        # Timing model only: the counter totals stay exact.
        for entries in (None, 1, 8):
            schedules = [
                [Transaction(p * 100 + i, [("c", 3), ("add", 0, 1)])
                 for i in range(5)]
                for p in range(4)
            ]
            system, result = run(schedules, directory_cache_entries=entries)
            assert result.memory_image[0][0] == 20
