"""Tests for coarse sharer-vector directories."""

import pytest

from repro import ScalableTCCSystem, SystemConfig, Transaction
from repro.workloads import CounterWorkload
from repro.workloads.base import Workload


class Scripted(Workload):
    def __init__(self, schedules):
        self.schedules = schedules

    def schedule(self, proc, n_procs):
        return iter(self.schedules[proc])


def test_group_size_one_is_exact():
    system = ScalableTCCSystem(SystemConfig(n_processors=4))
    entry = system.directories[0].state.entry(0)
    entry.sharers = {1, 3}
    assert system.directories[0]._invalidation_targets(entry) == {1, 3}


def test_group_expansion():
    system = ScalableTCCSystem(
        SystemConfig(n_processors=8, sharer_group_size=4)
    )
    entry = system.directories[0].state.entry(0)
    entry.sharers = {1}
    assert system.directories[0]._invalidation_targets(entry) == {0, 1, 2, 3}
    entry.sharers = {1, 6}
    assert system.directories[0]._invalidation_targets(entry) == set(range(8))


def test_group_clipped_at_processor_count():
    system = ScalableTCCSystem(
        SystemConfig(n_processors=6, sharer_group_size=4)
    )
    entry = system.directories[0].state.entry(0)
    entry.sharers = {5}
    assert system.directories[0]._invalidation_targets(entry) == {4, 5}


def test_invalid_group_size_rejected():
    with pytest.raises(ValueError):
        SystemConfig(sharer_group_size=0)


def test_coarse_vector_sends_more_invalidations():
    def run(group):
        system = ScalableTCCSystem(
            SystemConfig(n_processors=8, sharer_group_size=group,
                         ordered_network=True)
        )
        # One reader per group; one writer commits the line repeatedly.
        schedules = [[] for _ in range(8)]
        schedules[4] = [Transaction(1, [("ld", 0)])]  # reader in group 1
        schedules[0] = [
            Transaction(10 + i, [("c", 500), ("st", 0, i)]) for i in range(3)
        ]
        result = system.run(Scripted(schedules), max_cycles=50_000_000)
        return sum(d.stats.invalidations_sent for d in system.directories)

    exact = run(1)
    coarse = run(4)
    assert coarse > exact


def test_coarse_vector_remains_correct():
    for group in (1, 2, 8):
        wl = CounterWorkload(n_counters=2, increments_per_proc=6)
        system = ScalableTCCSystem(
            SystemConfig(n_processors=8, sharer_group_size=group)
        )
        result = system.run(wl, max_cycles=100_000_000)
        total = sum(
            result.memory_image.get(wl.counter_addr(i) // 32, [0] * 8)[0]
            for i in range(2)
        )
        assert total == wl.expected_total(8)
