"""Tests for the repro lint framework: per-rule fixtures, suppressions,
baselines, the CLI, and a self-run over the real tree.

Fixture modules live under ``tests/fixtures/lint/``.  Single-module
fixtures are loaded as ``fx.sim.mod`` next to a synthetic
``fx.core.system`` that imports them, so the classifier puts them on
the sim path; the protocol fixtures are mini trees loaded under the
real ``repro.*`` handler-module names, because the protocol table
addresses modules by those names.
"""

import json
from pathlib import Path

import pytest

from repro.cli import main
from repro.lint import (
    Baseline,
    classify_modules,
    lint_modules,
    load_source,
    run_lint,
)
from repro.lint.suppress import REASON_RULE

FIXTURES = Path(__file__).parent / "fixtures" / "lint"

#: rule id -> fixture basename (``<base>_bad.py`` / ``<base>_good.py``)
RULE_FIXTURES = {
    "det-global-rng": "det_global_rng",
    "det-wallclock": "det_wallclock",
    "det-env": "det_env",
    "det-owned-rng": "det_owned_rng",
    "det-unordered-iter": "det_unordered_iter",
    "det-id-order": "det_id_order",
    "det-slots": "det_slots",
    "spec-factory-named": "spec_factory_named",
    "spec-canonical-json": "spec_canonical_json",
    "spec-cache-key-field": "spec_cache_key_field",
}

#: proto fixture file -> the module name the table addresses it by.
PROTO_MODULES = {
    "messages.py": "repro.core.messages",
    "controller.py": "repro.directory.controller",
    "core.py": "repro.processor.core",
    "commit.py": "repro.processor.commit",
    "system.py": "repro.core.system",
}


def lint_fixture_source(source: str):
    """Lint one source string as the sim-path module ``fx.sim.mod``."""
    modules = {
        "fx.core.system": load_source("import fx.sim.mod\n",
                                      name="fx.core.system"),
        "fx.sim.mod": load_source(source, name="fx.sim.mod"),
    }
    return lint_modules(modules)


def lint_fixture_file(filename: str):
    return lint_fixture_source((FIXTURES / filename).read_text())


def lint_proto_tree(tree_name: str):
    modules = {}
    for filename, module_name in PROTO_MODULES.items():
        modules[module_name] = load_source(
            (FIXTURES / tree_name / filename).read_text(), name=module_name,
        )
    return lint_modules(modules)


def rules_hit(result):
    return {finding.rule for finding in result.findings}


# -- per-rule positive/negative fixtures --------------------------------


@pytest.mark.parametrize("rule_id", sorted(RULE_FIXTURES))
def test_rule_fires_on_bad_fixture(rule_id):
    result = lint_fixture_file(RULE_FIXTURES[rule_id] + "_bad.py")
    assert rule_id in rules_hit(result), (
        f"{rule_id} did not fire; findings: "
        f"{[f.render() for f in result.findings]}"
    )
    finding = next(f for f in result.findings if f.rule == rule_id)
    assert finding.line > 0
    assert finding.path.endswith(".py")


@pytest.mark.parametrize("rule_id", sorted(RULE_FIXTURES))
def test_rule_quiet_on_good_fixture(rule_id):
    result = lint_fixture_file(RULE_FIXTURES[rule_id] + "_good.py")
    assert rule_id not in rules_hit(result), (
        f"{rule_id} fired on the good fixture: "
        f"{[f.render() for f in result.findings if f.rule == rule_id]}"
    )


def test_sim_scope_rules_skip_driver_modules():
    # The same global-RNG source, loaded *without* a sim root importing
    # it, is driver-path and exempt from determinism rules.
    source = (FIXTURES / "det_global_rng_bad.py").read_text()
    modules = {"fx.analysis.tool": load_source(source, name="fx.analysis.tool")}
    result = lint_modules(modules)
    assert "det-global-rng" not in rules_hit(result)


def test_classifier_marks_transitive_imports_sim():
    modules = {
        "fx.core.system": load_source("from fx.sim import engine\n",
                                      name="fx.core.system"),
        "fx.sim.engine": load_source("import fx.sim.events\n",
                                     name="fx.sim.engine"),
        "fx.sim.events": load_source("", name="fx.sim.events"),
        "fx.analysis.plot": load_source("import fx.sim.engine\n",
                                        name="fx.analysis.plot"),
    }
    labels = classify_modules(modules)
    assert labels["fx.sim.engine"] == "sim"
    assert labels["fx.sim.events"] == "sim"  # transitive
    assert labels["fx.analysis.plot"] == "driver"  # imports sim, not imported by it


# -- protocol tree fixtures ---------------------------------------------


def _fixture_type_findings(result):
    """Findings that talk about the fixture's own message types (the
    mini message set does not define the full table, so table-coverage
    findings about absent real types are expected noise)."""
    return [
        f for f in result.findings
        if "`LoadRequest`" in f.message or "`TidRequest`" in f.message
    ]


def test_proto_good_tree_is_contract_clean():
    result = lint_proto_tree("proto_good")
    assert _fixture_type_findings(result) == [], (
        [f.render() for f in _fixture_type_findings(result)]
    )


def test_proto_bad_tree_reports_all_three_rules():
    result = lint_proto_tree("proto_bad")
    findings = _fixture_type_findings(result)
    hit = {f.rule for f in findings}
    assert hit == {
        "proto-handler-coverage", "proto-emission", "proto-retry-wrap",
    }
    coverage = next(f for f in findings if f.rule == "proto-handler-coverage")
    assert "`TidRequest` has no handler" in coverage.message
    emission = next(f for f in findings if f.rule == "proto-emission")
    assert "repro.directory.controller" in emission.message
    retry = {f.message for f in findings if f.rule == "proto-retry-wrap"}
    assert any("`TidRequest`" in m and "acquire_tid" in m for m in retry)
    assert any("`LoadRequest`" in m and "_forward" in m for m in retry)


# -- suppressions --------------------------------------------------------


def test_inline_suppression_silences_finding():
    result = lint_fixture_source(
        "import random\n"
        "JITTER = random.random()  # repro: allow[det-global-rng] fixture demo\n"
    )
    assert "det-global-rng" not in rules_hit(result)
    assert [f.rule for f in result.suppressed] == ["det-global-rng"]


def test_standalone_suppression_covers_next_code_line():
    result = lint_fixture_source(
        "import random\n"
        "# repro: allow[det-global-rng] fixture demo\n"
        "JITTER = random.random()\n"
    )
    assert "det-global-rng" not in rules_hit(result)
    assert len(result.suppressed) == 1


def test_reasonless_suppression_is_itself_a_finding():
    result = lint_fixture_source(
        "import random\n"
        "JITTER = random.random()  # repro: allow[det-global-rng]\n"
    )
    hit = rules_hit(result)
    assert REASON_RULE in hit
    # ...and the malformed allow does not silence anything.
    assert "det-global-rng" in hit


def test_suppression_for_other_rule_does_not_match():
    result = lint_fixture_source(
        "import random\n"
        "JITTER = random.random()  # repro: allow[det-wallclock] wrong rule\n"
    )
    assert "det-global-rng" in rules_hit(result)
    assert result.suppressed == []


# -- baseline ------------------------------------------------------------


def test_baseline_round_trip(tmp_path):
    first = lint_fixture_file("det_global_rng_bad.py")
    assert first.findings
    baseline_path = tmp_path / "lint-baseline.json"
    Baseline.from_findings(first.findings).save(str(baseline_path))

    loaded = Baseline.load(str(baseline_path))
    modules = {
        "fx.core.system": load_source("import fx.sim.mod\n",
                                      name="fx.core.system"),
        "fx.sim.mod": load_source(
            (FIXTURES / "det_global_rng_bad.py").read_text(),
            name="fx.sim.mod"),
    }
    second = lint_modules(modules, baseline=loaded)
    assert second.ok
    assert len(second.baselined) == len(first.findings)


def test_baseline_ignores_line_drift(tmp_path):
    first = lint_fixture_file("det_global_rng_bad.py")
    baseline_path = tmp_path / "lint-baseline.json"
    Baseline.from_findings(first.findings).save(str(baseline_path))
    # Prepend lines: same violation, different line number.
    drifted = "X = 1\nY = 2\n" + (FIXTURES / "det_global_rng_bad.py").read_text()
    modules = {
        "fx.core.system": load_source("import fx.sim.mod\n",
                                      name="fx.core.system"),
        "fx.sim.mod": load_source(drifted, name="fx.sim.mod"),
    }
    result = lint_modules(modules, baseline=Baseline.load(str(baseline_path)))
    assert result.ok
    assert len(result.baselined) == len(first.findings)


# -- self-run: the repo's own tree must be clean -------------------------


def test_repo_tree_is_lint_clean():
    result = run_lint()
    assert result.ok, "\n".join(f.render() for f in result.findings)
    assert result.modules_scanned > 50
    # Spot-check the classifier on the real tree.
    assert "repro.sim.engine" in result.sim_path_modules
    assert "repro.core.system" in result.sim_path_modules
    assert "repro.cli" not in result.sim_path_modules
    assert "repro.runner.pool" not in result.sim_path_modules


# -- CLI -----------------------------------------------------------------


def _write_violating_tree(tmp_path):
    """A tiny package with a module-level global-RNG draw in sim-path
    code (the acceptance scenario: random.random() in sim/engine.py)."""
    pkg = tmp_path / "repro"
    (pkg / "core").mkdir(parents=True)
    (pkg / "sim").mkdir()
    (pkg / "__init__.py").write_text("")
    (pkg / "core" / "__init__.py").write_text("")
    (pkg / "core" / "system.py").write_text("import repro.sim.engine\n")
    (pkg / "sim" / "__init__.py").write_text("")
    (pkg / "sim" / "engine.py").write_text(
        "import random\nJITTER = random.random()\n"
    )
    return pkg


def test_cli_lint_clean_tree_exits_zero(capsys):
    code = main(["lint"])
    out = capsys.readouterr().out
    assert code == 0
    assert "clean" in out


def test_cli_lint_names_rule_file_and_line(tmp_path, capsys):
    pkg = _write_violating_tree(tmp_path)
    code = main(["lint", "--root", str(pkg)])
    out = capsys.readouterr().out
    assert code == 1
    assert "det-global-rng" in out
    assert "repro/sim/engine.py:2" in out


def test_cli_lint_json_format(tmp_path, capsys):
    pkg = _write_violating_tree(tmp_path)
    code = main(["lint", "--root", str(pkg), "--format", "json"])
    out = capsys.readouterr().out
    assert code == 1
    report = json.loads(out)
    assert report["ok"] is False
    assert report["findings"][0]["rule"] == "det-global-rng"
    assert report["findings"][0]["path"].endswith("sim/engine.py")
    assert report["findings"][0]["line"] == 2


def test_cli_lint_baseline_flow(tmp_path, capsys):
    pkg = _write_violating_tree(tmp_path)
    baseline = tmp_path / "lint-baseline.json"
    assert main(["lint", "--root", str(pkg),
                 "--write-baseline", str(baseline)]) == 0
    capsys.readouterr()
    code = main(["lint", "--root", str(pkg), "--baseline", str(baseline)])
    out = capsys.readouterr().out
    assert code == 0
    assert "1 baselined" in out
