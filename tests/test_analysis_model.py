"""Tests for the analytical conflict model, including model-vs-simulation
directional agreement."""

import random

import pytest

from repro import ScalableTCCSystem, SystemConfig, Transaction
from repro.analysis.model import (
    ConflictModel,
    overlap_probability,
    violation_probability,
)
from repro.workloads.base import Workload


class TestOverlapProbability:
    def test_zero_writes_or_reads(self):
        assert overlap_probability(100, 0, 10) == 0.0
        assert overlap_probability(100, 10, 0) == 0.0

    def test_full_pool_write_always_overlaps(self):
        assert overlap_probability(10, 10, 1) == pytest.approx(1.0)

    def test_single_word_each(self):
        assert overlap_probability(100, 1, 1) == pytest.approx(0.01)

    def test_monotone_in_writes(self):
        probs = [overlap_probability(256, w, 8) for w in (1, 4, 16, 64)]
        assert probs == sorted(probs)
        assert probs[-1] > probs[0]

    def test_monotone_in_reads(self):
        probs = [overlap_probability(256, 8, r) for r in (1, 4, 16, 64)]
        assert probs == sorted(probs)

    def test_approximation_formula_close_for_small_sets(self):
        exact = overlap_probability(1000, 5, 8)
        approx = 1 - (1 - 5 / 1000) ** 8
        assert exact == pytest.approx(approx, rel=0.02)

    def test_bad_pool_rejected(self):
        with pytest.raises(ValueError):
            overlap_probability(0, 1, 1)


class TestViolationProbability:
    def test_no_rivals_no_violations(self):
        assert violation_probability(100, 5, 5, 0) == 0.0

    def test_monotone_in_rivals(self):
        probs = [violation_probability(100, 4, 4, k) for k in (1, 3, 7, 15)]
        assert probs == sorted(probs)

    def test_negative_rivals_rejected(self):
        with pytest.raises(ValueError):
            violation_probability(100, 1, 1, -1)


class _Uniform(Workload):
    """Symmetric uniform-pool RMW workload matching the model."""

    def __init__(self, pool_words, reads, writes, per_proc, seed=0):
        self.pool_words = pool_words
        self.reads = reads
        self.writes = writes
        self.per_proc = per_proc
        self.seed = seed
        self.base = 1 << 26

    def addr(self, word):
        return self.base + word * 4

    def schedule(self, proc, n_procs):
        rng = random.Random(self.seed * 6007 + proc)
        for i in range(self.per_proc):
            ops = [("c", 60)]
            for word in rng.sample(range(self.pool_words), self.reads):
                ops.append(("ld", self.addr(word)))
            for word in rng.sample(range(self.pool_words), self.writes):
                ops.append(("st", self.addr(word), rng.randrange(1, 999)))
            yield Transaction(proc * 10_000 + i, ops)


class TestModelVsSimulation:
    @staticmethod
    def simulate(pool_words, reads, writes, n=8, per_proc=10, seed=1):
        system = ScalableTCCSystem(SystemConfig(n_processors=n, seed=seed))
        workload = _Uniform(pool_words, reads, writes, per_proc, seed)
        result = system.run(workload, max_cycles=500_000_000)
        attempts = result.committed_transactions + result.total_violations
        return result.total_violations / attempts

    def test_model_ranks_contention_like_the_simulator(self):
        """Across low/medium/high-contention pools, the model and the
        simulator must agree on the ordering."""
        settings = [
            (2048, 4, 2),   # low contention
            (256, 6, 4),    # medium
            (48, 8, 6),     # high
        ]
        simulated = [self.simulate(*s) for s in settings]
        modeled = [
            ConflictModel(pool, reads=r, writes=w).violation_rate(8)
            for pool, r, w in settings
        ]
        assert simulated == sorted(simulated)
        assert modeled == sorted(modeled)
        # high-contention point shows substantial violation rates in both
        assert simulated[-1] > 0.15
        assert modeled[-1] > 0.15
        # low-contention point is quiet in both
        assert simulated[0] < 0.25
        assert modeled[0] < 0.25

    def test_expected_attempts(self):
        model = ConflictModel(pool_words=64, reads=8, writes=6)
        assert model.expected_attempts(8) > 1.5
        quiet = ConflictModel(pool_words=100_000, reads=4, writes=2)
        assert quiet.expected_attempts(8) == pytest.approx(1.0, abs=0.01)
