"""Unit tests for the reference TM oracle.

The oracle is the *other* machine in the differential test, so it gets
its own direct tests: program flattening (indices, barrier epochs),
every witness-violation kind, serial TID-order execution semantics, and
the reimplemented address arithmetic.
"""

import pytest

from repro.oracle import (
    CommitWitness,
    OracleViolation,
    ReferenceTM,
    program_from_schedules,
)
from repro.workloads.base import BARRIER, Transaction


def located(schedules):
    return {tx.tx_id: tx for tx in program_from_schedules(schedules)}


class TestProgramFromSchedules:
    def test_indices_and_epochs(self):
        txs = located([
            [Transaction(1, [("c", 1)]), BARRIER, Transaction(2, [("c", 1)])],
            [BARRIER, Transaction(3, [("c", 1)])],
        ])
        assert (txs[1].proc, txs[1].index, txs[1].epoch) == (0, 0, 0)
        assert (txs[2].proc, txs[2].index, txs[2].epoch) == (0, 1, 1)
        assert (txs[3].proc, txs[3].index, txs[3].epoch) == (1, 0, 1)

    def test_ops_frozen_as_tuples(self):
        txs = located([[Transaction(1, [("st", 0, 5), ("ld", 4)])]])
        assert txs[1].ops == (("st", 0, 5), ("ld", 4))

    def test_duplicate_tx_id_rejected(self):
        with pytest.raises(ValueError, match="tx_id 7"):
            program_from_schedules([
                [Transaction(7, [("c", 1)])],
                [Transaction(7, [("c", 1)])],
            ])

    def test_non_transaction_item_rejected(self):
        with pytest.raises(TypeError, match="neither"):
            program_from_schedules([["bogus"]])


class TestGeometry:
    def test_rejects_non_power_of_two(self):
        with pytest.raises(ValueError, match="power of two"):
            ReferenceTM(line_size=24)
        with pytest.raises(ValueError, match="power of two"):
            ReferenceTM(word_size=3)
        with pytest.raises(ValueError, match="exceed"):
            ReferenceTM(line_size=4, word_size=8)

    def test_locate_matches_line_word_split(self):
        tm = ReferenceTM(line_size=32, word_size=4)
        program = program_from_schedules(
            [[Transaction(1, [("st", 32 * 3 + 4 * 5, 9), ("ld", 32 * 3 + 4 * 5)])]]
        )
        result = tm.execute(program, [CommitWitness(1, 1, 0)])
        assert result.commits[0].writes == [(3, 5, 9)]
        assert result.commits[0].reads == [(3, 5, 9)]


def simple_program():
    # P0: st(0)=5 ; ld(0).  P1: add(0)+=2.
    return program_from_schedules([
        [Transaction(1, [("st", 0, 5)]), Transaction(2, [("ld", 0)])],
        [Transaction(3, [("add", 0, 2)])],
    ])


def witness(*triples):
    return [CommitWitness(tid, tx, proc) for tid, tx, proc in triples]


class TestWitnessChecks:
    def setup_method(self):
        self.tm = ReferenceTM()
        self.program = simple_program()

    def violation(self, w):
        with pytest.raises(OracleViolation) as exc_info:
            self.tm.check_witness(self.program, w)
        return exc_info.value.kind

    def test_valid_witness_sorted_by_tid(self):
        ordered = self.tm.check_witness(
            self.program, witness((3, 3, 1), (1, 1, 0), (2, 2, 0)))
        assert [entry.tid for entry in ordered] == [1, 2, 3]

    def test_duplicate_tid(self):
        kind = self.violation(witness((1, 1, 0), (1, 2, 0), (2, 3, 1)))
        assert kind == "duplicate-tid"

    def test_phantom_commit(self):
        kind = self.violation(
            witness((1, 1, 0), (2, 2, 0), (3, 3, 1), (4, 99, 0)))
        assert kind == "phantom-commit"

    def test_duplicate_commit(self):
        kind = self.violation(
            witness((1, 1, 0), (2, 2, 0), (3, 3, 1), (4, 1, 0)))
        assert kind == "duplicate-commit"

    def test_wrong_proc(self):
        kind = self.violation(witness((1, 1, 1), (2, 2, 0), (3, 3, 1)))
        assert kind == "wrong-proc"

    def test_missing_commit(self):
        kind = self.violation(witness((1, 1, 0), (2, 2, 0)))
        assert kind == "missing-commit"

    def test_program_order(self):
        # tx 2 (P0 index 1) commits with a TID below tx 1 (P0 index 0).
        kind = self.violation(witness((1, 2, 0), (2, 1, 0), (3, 3, 1)))
        assert kind == "program-order"

    def test_epoch_order(self):
        program = program_from_schedules([
            [Transaction(1, [("c", 1)]), BARRIER, Transaction(2, [("c", 1)])],
            [Transaction(3, [("c", 1)]), BARRIER],
        ])
        # Epoch-1 tx 2 gets a TID below epoch-0 tx 3: impossible, the
        # barrier drains every epoch-0 transaction first.
        with pytest.raises(OracleViolation) as exc_info:
            self.tm.check_witness(
                program, witness((1, 1, 0), (2, 2, 0), (3, 3, 1)))
        assert exc_info.value.kind == "epoch-order"


class TestExecution:
    def test_serial_tid_order_semantics(self):
        tm = ReferenceTM()
        result = tm.execute(simple_program(),
                            witness((1, 1, 0), (2, 3, 1), (3, 2, 0)))
        by_tx = result.commit_by_tx()
        assert by_tx[1].writes == [(0, 0, 5)]
        assert by_tx[3].reads == [(0, 0, 5)]       # add observed the store
        assert by_tx[3].writes == [(0, 0, 7)]
        assert by_tx[2].reads == [(0, 0, 7)]       # ld observed the add
        assert result.memory == {(0, 0): 7}

    def test_order_changes_witnesses(self):
        # Same program, P1's add first: the ld must observe a different
        # value — the oracle is order-sensitive, not just op-sensitive.
        tm = ReferenceTM()
        result = tm.execute(simple_program(),
                            witness((1, 3, 1), (2, 1, 0), (3, 2, 0)))
        by_tx = result.commit_by_tx()
        assert by_tx[3].reads == [(0, 0, 0)]
        assert by_tx[2].reads == [(0, 0, 5)]
        assert result.memory == {(0, 0): 5}

    def test_unwritten_words_absent_from_memory(self):
        tm = ReferenceTM()
        program = program_from_schedules([[Transaction(1, [("ld", 64)])]])
        result = tm.execute(program, witness((1, 1, 0)))
        assert result.commits[0].reads == [(2, 0, 0)]
        assert result.memory == {}

    def test_compute_ops_ignored(self):
        tm = ReferenceTM()
        program = program_from_schedules(
            [[Transaction(1, [("c", 9), ("st", 0, 1), ("c", 2)])]])
        result = tm.execute(program, witness((1, 1, 0)))
        assert result.commits[0].reads == []
        assert result.commits[0].writes == [(0, 0, 1)]

    def test_unknown_op_rejected(self):
        # Transaction validates ops at construction, so a corrupt op can
        # only reach the oracle through a hand-built record.
        from repro.oracle import OracleTx

        tm = ReferenceTM()
        program = [OracleTx(tx_id=1, proc=0, index=0, epoch=0,
                            ops=(("jmp", 0),))]
        with pytest.raises(OracleViolation) as exc_info:
            tm.execute(program, witness((1, 1, 0)))
        assert exc_info.value.kind == "bad-op"

    def test_empty_program_empty_witness(self):
        tm = ReferenceTM()
        result = tm.execute([], [])
        assert result.commits == [] and result.memory == {}
