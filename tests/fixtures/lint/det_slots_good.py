"""Negative fixture: the message dataclass declares slots."""

from dataclasses import dataclass


@dataclass(slots=True)
class PingMsg:
    node: int

    traffic_class = "overhead"
    payload_bytes = 4
