"""Negative fixture: canonical serialization feeding the hash."""

import hashlib
import json


def key(payload):
    canonical = json.dumps(payload, sort_keys=True, default=repr)
    return hashlib.sha256(canonical.encode()).hexdigest()
