"""Negative fixture: canonically serializable cache-key fields."""

from dataclasses import dataclass
from typing import Dict, Optional, Tuple


@dataclass(frozen=True)
class Spec:
    nodes: Tuple[int, ...]
    args: Optional[Dict[str, int]] = None

    def key(self):
        return str((self.nodes, self.args))
