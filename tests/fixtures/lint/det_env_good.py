"""Negative fixture: configuration is threaded explicitly."""


def knob(config):
    return config.knob
