"""Loaded as ``repro.processor.commit``: emits commit-critical
TidRequest with no retry wrapper in the function (proto-retry-wrap)."""

from repro.core.messages import TidRequest


class CommitEngine:
    def acquire_tid(self, proc):
        proc._send(0, TidRequest(proc.node))
