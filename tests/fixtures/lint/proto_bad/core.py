"""Loaded as ``repro.processor.core``: legitimate LoadRequest emitter,
retry-wrapped (keeps the bad tree's LoadRequest dispatch count at
exactly one so only the intended violations fire)."""

from repro.core.messages import LoadRequest


class Processor:
    def issue_load(self, line):
        msg = LoadRequest(self.node)
        self._send(0, msg)
        self._retry(lambda: self._send(0, msg), lambda: True)

    def _send(self, dst, msg):
        pass

    def _retry(self, resend, done):
        pass
