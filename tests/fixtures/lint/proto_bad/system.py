"""Loaded as ``repro.core.system``: the router never dispatches
TidRequest, so the message type has no handler
(proto-handler-coverage)."""


def make_router(vendor):
    def route(msg):
        return vendor

    return route
