"""Loaded as ``repro.directory.controller``: handles LoadRequest, but
also *constructs* one — the directory is not a declared LoadRequest
emitter (proto-emission), and the send is not retry-wrapped
(proto-retry-wrap)."""

from repro.core.messages import LoadRequest


class DirectoryController:
    def _serve(self, msg):
        dispatch = {LoadRequest: self._handle_load}
        dispatch[type(msg)](msg)

    def _handle_load(self, msg):
        return msg.requester

    def _forward(self, line):
        self._send(0, LoadRequest(self.node))

    def _send(self, dst, msg):
        pass
