"""Same mini message set as proto_good — the violations live in the
handler/emitter modules."""

from dataclasses import dataclass


@dataclass(slots=True)
class LoadRequest:
    requester: int

    payload_bytes = 8
    traffic_class = "miss"


@dataclass(slots=True)
class TidRequest:
    requester: int

    payload_bytes = 4
    traffic_class = "overhead"
