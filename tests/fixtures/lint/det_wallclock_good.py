"""Negative fixture: simulated time comes from the engine."""


def stamp(engine):
    return engine.now
