"""Positive fixture: ordering by memory address."""


def stable(entries):
    return sorted(entries, key=id)
