"""Positive fixture: hashed JSON without sort_keys."""

import hashlib
import json


def key(payload):
    return hashlib.sha256(json.dumps(payload).encode()).hexdigest()
