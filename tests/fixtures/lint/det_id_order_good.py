"""Negative fixture: ordering by a stable domain key."""


def stable(entries):
    return sorted(entries, key=lambda entry: entry.line)
