"""Loaded as ``repro.directory.controller``: the declared LoadRequest
handler, and nothing but handling."""

from repro.core.messages import LoadRequest


class DirectoryController:
    def _serve(self, msg):
        dispatch = {LoadRequest: self._handle_load}
        dispatch[type(msg)](msg)

    def _handle_load(self, msg):
        return msg.requester
