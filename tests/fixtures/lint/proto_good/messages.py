"""Mini message set for the protocol-rule fixtures (loaded as
``repro.core.messages``): two real message names from the protocol
table, so the extraction runs exactly as it does on the real tree."""

from dataclasses import dataclass


@dataclass(slots=True)
class LoadRequest:
    requester: int

    payload_bytes = 8
    traffic_class = "miss"


@dataclass(slots=True)
class TidRequest:
    requester: int

    payload_bytes = 4
    traffic_class = "overhead"
