"""Loaded as ``repro.core.system``: the TID vendor answers TidRequest
inline in the node router."""

from repro.core.messages import TidRequest


def make_router(vendor):
    def route(msg):
        if isinstance(msg, TidRequest):
            return vendor
        return None

    return route
