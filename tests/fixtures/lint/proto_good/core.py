"""Loaded as ``repro.processor.core``: emits LoadRequest (its declared
emitter) under a retry wrapper."""

from repro.core.messages import LoadRequest


class Processor:
    def issue_load(self, line):
        msg = LoadRequest(self.node)
        self._send(0, msg)
        self._retry(lambda: self._send(0, msg), lambda: True)

    def _send(self, dst, msg):
        pass

    def _retry(self, resend, done):
        pass
