"""Loaded as ``repro.processor.commit``: emits TidRequest (its declared
emitter) under a retry wrapper."""

from repro.core.messages import TidRequest


class CommitEngine:
    def acquire_tid(self, proc):
        msg = TidRequest(proc.node)
        proc._send(0, msg)
        self._retry(lambda: proc._send(0, msg), lambda: True)

    def _retry(self, resend, done):
        pass
