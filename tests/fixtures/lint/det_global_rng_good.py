"""Negative fixture: instance-owned, explicitly seeded generator."""

import random


class Engine:
    def __init__(self, seed):
        self.rng = random.Random(seed)

    def jitter(self):
        return self.rng.random()
