"""Negative fixture: the RNG belongs to the object that draws from it."""

import random


class Network:
    def __init__(self, seed):
        self._rng = random.Random(seed)
