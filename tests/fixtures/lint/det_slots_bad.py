"""Positive fixture: an unslotted message dataclass."""

from dataclasses import dataclass


@dataclass
class PingMsg:
    node: int

    traffic_class = "overhead"
    payload_bytes = 4
