"""Positive fixture: a lambda registered as a workload factory."""

WORKLOAD_FACTORIES = {}


def register_workload(name, factory):
    WORKLOAD_FACTORIES[name] = factory


register_workload("hot", lambda config: object())
