"""Positive fixture: set iteration order decides message order."""


class Broadcaster:
    def broadcast(self, targets: set, msg):
        for node in targets:
            self._send(node, msg)

    def _send(self, node, msg):
        pass
