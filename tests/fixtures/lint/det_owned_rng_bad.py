"""Positive fixture: a process-wide shared RNG instance."""

import random

_RNG = random.Random(0)
