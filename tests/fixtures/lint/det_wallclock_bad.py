"""Positive fixture: reads the host clock in simulated code."""

import time


def stamp():
    return time.time()
