"""Positive fixture: a cache-keyed dataclass with a set-typed field."""

from dataclasses import dataclass
from typing import Set


@dataclass(frozen=True)
class Spec:
    nodes: Set[int]

    def key(self):
        return str(self.nodes)
