"""Negative fixture: a named module-level factory."""

WORKLOAD_FACTORIES = {}


def register_workload(name, factory):
    WORKLOAD_FACTORIES[name] = factory


def make_hot(config):
    return object()


register_workload("hot", make_hot)
