"""Negative fixture: sorted() pins the send order."""


class Broadcaster:
    def broadcast(self, targets: set, msg):
        for node in sorted(targets):
            self._send(node, msg)

    def _send(self, node, msg):
        pass
