"""Positive fixture: simulation outcome depends on the environment."""

import os


def knob():
    return os.environ.get("REPRO_KNOB", "0")
