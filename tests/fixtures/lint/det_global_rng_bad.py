"""Positive fixture: draws from the shared global RNG."""

import random


def jitter():
    return random.random()
