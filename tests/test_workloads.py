"""Unit tests for workload generation."""

import pytest

from repro.workloads import (
    APP_PROFILES,
    BARRIER,
    SyntheticWorkload,
    Transaction,
    WorkloadProfile,
    app_workload,
)
from repro.workloads.base import Workload
from repro.workloads.micro import CounterWorkload, ProducerConsumerWorkload


class TestTransaction:
    def test_instruction_count(self):
        tx = Transaction(1, [("c", 100), ("ld", 0), ("st", 4, 1), ("add", 8, 1)])
        assert tx.instructions == 100 + 1 + 1 + 2

    def test_read_write_addrs(self):
        tx = Transaction(1, [("ld", 0), ("st", 4, 1), ("add", 8, 1)])
        assert tx.read_addrs() == [0, 8]
        assert tx.write_addrs() == [4, 8]

    def test_bad_op_rejected(self):
        with pytest.raises(ValueError):
            Transaction(1, [("jmp", 0)])


class TestWorkloadValidation:
    def test_consistent_barriers_pass(self):
        ProducerConsumerWorkload(phases=2).validate(4)

    def test_duplicate_tx_ids_detected(self):
        class Bad(Workload):
            def schedule(self, proc, n_procs):
                return iter([Transaction(7, [("c", 1)])])

        with pytest.raises(ValueError, match="duplicate"):
            Bad().validate(2)

    def test_mismatched_barriers_detected(self):
        class Bad(Workload):
            def schedule(self, proc, n_procs):
                items = [Transaction(proc, [("c", 1)])]
                if proc == 0:
                    items.append(BARRIER)
                return iter(items)

        with pytest.raises(ValueError, match="barrier"):
            Bad().validate(2)


class TestSyntheticWorkload:
    def make(self, **kwargs):
        profile = WorkloadProfile(name="test", total_transactions=64, **kwargs)
        return SyntheticWorkload(profile)

    def test_total_transactions_partitioned_exactly(self):
        wl = self.make()
        for n in (1, 3, 8, 64):
            total = sum(
                sum(1 for item in wl.schedule(p, n) if isinstance(item, Transaction))
                for p in range(n)
            )
            assert total == 64

    def test_deterministic_per_seed(self):
        wl = self.make()
        a = [t.ops for t in wl.schedule(0, 4) if isinstance(t, Transaction)]
        b = [t.ops for t in wl.schedule(0, 4) if isinstance(t, Transaction)]
        assert a == b

    def test_different_procs_get_different_streams(self):
        wl = self.make()
        a = [t.ops for t in wl.schedule(0, 4) if isinstance(t, Transaction)]
        b = [t.ops for t in wl.schedule(1, 4) if isinstance(t, Transaction)]
        assert a != b

    def test_tx_sizes_track_profile(self):
        small = self.make(tx_instructions=100)
        large = self.make(tx_instructions=10000)
        mean_small = self._mean_instructions(small)
        mean_large = self._mean_instructions(large)
        assert mean_large > 10 * mean_small

    @staticmethod
    def _mean_instructions(wl):
        txs = [t for t in wl.schedule(0, 2) if isinstance(t, Transaction)]
        return sum(t.instructions for t in txs) / len(txs)

    def test_shared_fraction_zero_means_private(self):
        wl = self.make(shared_fraction=0.0, write_shared_fraction=0.0)
        for proc in range(2):
            for tx in wl.schedule(proc, 2):
                if isinstance(tx, Transaction):
                    for addr in tx.read_addrs() + tx.write_addrs():
                        assert addr < wl._shared_base

    def test_shared_fraction_one_hits_shared_pool(self):
        wl = self.make(shared_fraction=1.0, write_shared_fraction=1.0)
        hits = 0
        for tx in wl.schedule(0, 2):
            if isinstance(tx, Transaction):
                hits += sum(
                    1 for a in tx.read_addrs() if a >= wl._shared_base
                )
        assert hits > 0

    def test_barrier_counts_consistent_across_procs(self):
        profile = WorkloadProfile(
            name="b", total_transactions=50, barrier_every=4
        )
        SyntheticWorkload(profile).validate(8)

    def test_scaled_profile(self):
        profile = WorkloadProfile(name="x", total_transactions=100)
        assert profile.scaled(0.25).total_transactions == 25
        assert profile.scaled(0.001).total_transactions == 1


class TestAppProfiles:
    def test_all_eleven_applications_present(self):
        assert len(APP_PROFILES) == 11
        expected = {
            "barnes", "cluster_ga", "equake", "radix", "specjbb2000",
            "svm_classify", "swim", "tomcatv", "volrend",
            "water_nsquared", "water_spatial",
        }
        assert set(APP_PROFILES) == expected

    def test_app_workload_factory(self):
        wl = app_workload("barnes", scale=0.5)
        assert wl.profile.total_transactions == APP_PROFILES["barnes"].total_transactions // 2

    def test_unknown_app_rejected(self):
        with pytest.raises(KeyError):
            app_workload("doom")

    def test_all_profiles_validate(self):
        for name in APP_PROFILES:
            app_workload(name, scale=0.1).validate(4)

    def test_profile_relationships_from_prose(self):
        """Orderings the paper's Section 4.2 prose establishes."""
        p = APP_PROFILES
        # swim has the largest transactions
        assert p["swim"].tx_instructions == max(
            prof.tx_instructions for prof in p.values()
        )
        # equake and volrend have tiny transactions
        assert p["equake"].tx_instructions < 1000
        assert p["volrend"].tx_instructions < 1000
        # SPECjbb has essentially no sharing
        assert p["specjbb2000"].shared_fraction < 0.05
        # radix spans the most pages (touches all directories)
        assert p["radix"].spread_pages == max(
            prof.spread_pages for prof in p.values()
        )
        # water-spatial communicates less than water-nsquared
        assert (
            p["water_spatial"].shared_fraction
            < p["water_nsquared"].shared_fraction
        )


class TestMicroWorkloads:
    def test_counter_expected_total(self):
        wl = CounterWorkload(increments_per_proc=7)
        assert wl.expected_total(8) == 56

    def test_counter_addrs_on_distinct_pages(self):
        wl = CounterWorkload(n_counters=4)
        pages = {wl.counter_addr(i) // 4096 for i in range(4)}
        assert len(pages) == 4

    def test_all_micros_validate(self):
        from repro.workloads.micro import (
            FalseSharingWorkload,
            PrivateWorkload,
            StarvationWorkload,
        )

        for wl in (
            CounterWorkload(),
            PrivateWorkload(),
            FalseSharingWorkload(),
            ProducerConsumerWorkload(),
            StarvationWorkload(),
        ):
            wl.validate(4)
