"""Tests for the command-line interface."""

import pytest

from repro.cli import main


def run_cli(capsys, *argv):
    code = main(list(argv))
    out = capsys.readouterr().out
    return code, out


def test_list_apps(capsys):
    code, out = run_cli(capsys, "list-apps")
    assert code == 0
    assert "specjbb2000" in out
    assert "swim" in out
    assert out.count("\n") >= 12


def test_describe(capsys):
    code, out = run_cli(capsys, "describe", "-n", "32")
    assert code == 0
    assert "32 single-issue cores" in out
    assert "2D grid" in out


def test_run_small(capsys):
    code, out = run_cli(capsys, "run", "barnes", "-n", "4", "--scale", "0.1")
    assert code == 0
    assert "barnes @ 4 CPUs" in out
    assert "cycles" in out
    assert "breakdown" in out
    assert "B/instr" in out


def test_run_with_tape(capsys):
    code, out = run_cli(
        capsys, "run", "cluster_ga", "-n", "4", "--scale", "0.1", "--tape"
    )
    assert code == 0
    assert "TAPE report" in out


def test_run_token_backend(capsys):
    code, out = run_cli(
        capsys, "run", "barnes", "-n", "4", "--scale", "0.1",
        "--backend", "token",
    )
    assert code == 0
    assert "token commit" in out


def test_scaling(capsys):
    code, out = run_cli(
        capsys, "scaling", "barnes", "--counts", "1,4", "--scale", "0.1"
    )
    assert code == 0
    assert "barnes@1" in out
    assert "barnes@4" in out
    assert "speedup" in out


def test_latency(capsys):
    code, out = run_cli(
        capsys, "latency", "equake", "-n", "4", "--scale", "0.1",
        "--hops", "1,6",
    )
    assert code == 0
    assert "1 cy/hop" in out
    assert "6 cy/hop" in out
    assert "slowdown" in out


def test_traffic(capsys):
    code, out = run_cli(capsys, "traffic", "swim", "-n", "4", "--scale", "0.1")
    assert code == 0
    assert "B/instr" in out


def test_unknown_app_exits_with_message(capsys):
    with pytest.raises(SystemExit, match="unknown application"):
        main(["run", "doom"])


def test_bad_count_list_rejected(capsys):
    with pytest.raises(SystemExit):
        main(["scaling", "barnes", "--counts", "1,x"])


def test_chaos_small_campaign(capsys):
    code, out = run_cli(capsys, "chaos", "--cases", "3", "--seed0", "200")
    assert code == 0
    assert "3/3 passed" in out
    assert "zero hangs" in out


def test_chaos_verbose_lists_cases(capsys):
    code, out = run_cli(capsys, "chaos", "--cases", "2", "--verbose")
    assert code == 0
    assert out.count("ok   seed=") == 2


def test_chaos_writes_json_report(capsys, tmp_path):
    out_file = tmp_path / "chaos.json"
    code, out = run_cli(capsys, "chaos", "--cases", "2", "--out", str(out_file))
    assert code == 0
    import json

    report = json.loads(out_file.read_text())
    assert report["cases"] == 2
    assert report["failed"] == 0


def test_chaos_rejects_bad_case_count(capsys):
    with pytest.raises(SystemExit, match="cases"):
        main(["chaos", "--cases", "0"])


def test_conform_small_campaign(capsys):
    code, out = run_cli(capsys, "conform", "--cases", "3", "--seed", "100")
    assert code == 0
    assert "3/3 passed" in out
    assert "fault-free" in out
    assert "oracle agreement" in out
    assert "fingerprint:" in out


def test_conform_faults_mode(capsys):
    code, out = run_cli(capsys, "conform", "--cases", "2", "--faults")
    assert code == 0
    assert "2/2 passed" in out
    assert "(faults," in out


def test_conform_verbose_lists_cases(capsys):
    code, out = run_cli(capsys, "conform", "--cases", "2", "--verbose")
    assert code == 0
    assert out.count("ok   seed=") == 2


def test_conform_writes_json_report(capsys, tmp_path):
    out_file = tmp_path / "conform.json"
    code, out = run_cli(capsys, "conform", "--cases", "2",
                        "--out", str(out_file))
    assert code == 0
    import json

    report = json.loads(out_file.read_text())
    assert report["cases"] == 2
    assert report["failed"] == 0
    assert len(report["fingerprint"]) == 64


def test_conform_rejects_bad_case_count(capsys):
    with pytest.raises(SystemExit, match="cases"):
        main(["conform", "--cases", "0"])


def test_bad_config_exits_nonzero_with_one_line_error(capsys):
    code = main(["run", "barnes", "-n", "-3"])
    captured = capsys.readouterr()
    assert code == 1
    assert "error: ValueError: need at least one processor" in captured.err
    assert "--debug" in captured.err
    assert "Traceback" not in captured.err


def test_debug_flag_reraises(capsys):
    with pytest.raises(ValueError, match="at least one processor"):
        main(["--debug", "run", "barnes", "-n", "-3"])
