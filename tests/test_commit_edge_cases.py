"""Edge cases in the commit engine and abort paths."""

import pytest

from repro import ScalableTCCSystem, SystemConfig, Transaction
from repro.workloads.base import BARRIER, Workload

PAGE = 4096


class Scripted(Workload):
    def __init__(self, schedules):
        self.schedules = schedules

    def schedule(self, proc, n_procs):
        return iter(self.schedules[proc])


def run(schedules, **kwargs):
    kwargs.setdefault("n_processors", len(schedules))
    kwargs.setdefault("ordered_network", True)
    system = ScalableTCCSystem(SystemConfig(**kwargs))
    result = system.run(Scripted(schedules), max_cycles=100_000_000)
    return system, result


class TestReadOnlyAndEmpty:
    def test_many_read_only_transactions(self):
        schedules = [
            [Transaction(p * 10 + i, [("c", 5), ("ld", (p * 8 + i) * 32)])
             for i in range(4)]
            for p in range(4)
        ]
        system, result = run(schedules)
        assert result.committed_transactions == 16
        assert all(d.stats.commits_served == 0 for d in system.directories)

    def test_empty_write_set_leaves_no_marks(self):
        schedules = [[Transaction(1, [("c", 10), ("ld", 0), ("ld", 64)])]]
        system, result = run(schedules)
        for directory in system.directories:
            assert not any(e.marked for e in directory.state.entries())

    def test_pure_compute_transactions_commit_in_tid_order(self):
        schedules = [
            [Transaction(p * 10 + i, [("c", 50)]) for i in range(3)]
            for p in range(3)
        ]
        system, result = run(schedules)
        tids = sorted(record.tid for record in result.commit_log)
        assert tids == list(range(1, 10))


class TestWriteSetShapes:
    def test_single_word_write(self):
        system, result = run([[Transaction(1, [("st", 0, 1)])]])
        assert result.memory_image[0][0] == 1

    def test_write_every_word_of_a_line(self):
        ops = [("st", w * 4, w + 1) for w in range(8)]
        system, result = run([[Transaction(1, ops)]])
        assert result.memory_image[0] == [1, 2, 3, 4, 5, 6, 7, 8]

    def test_wide_write_set_across_many_pages(self):
        ops = [("c", 10)]
        for page in range(12):
            ops.append(("st", page * PAGE * 64, page))
        system, result = run([[Transaction(1, ops)], [], [], []])
        for page in range(12):
            line = page * PAGE * 64 // 32
            assert result.memory_image[line][0] == page

    def test_repeated_writes_to_same_word(self):
        ops = [("st", 0, i) for i in range(10)]
        system, result = run([[Transaction(1, ops)]])
        assert result.memory_image[0][0] == 9


class TestConflictLadders:
    def test_chain_of_dependent_rmws_across_procs(self):
        """Each processor increments the same word N times; the total
        must be exact regardless of commit interleaving."""
        n, per = 6, 7
        schedules = [
            [Transaction(p * 100 + i, [("c", 3), ("add", 0, 1)])
             for i in range(per)]
            for p in range(n)
        ]
        system, result = run(schedules)
        assert result.memory_image[0][0] == n * per

    def test_conflict_on_two_directories_simultaneously(self):
        """Transactions whose write-sets span two directories conflict on
        both; parallel commit must still serialize them correctly."""
        a, b = 0, PAGE * 64
        schedules = [
            [Transaction(p * 100 + i,
                         [("c", 5), ("add", a, 1), ("add", b, 10)])
             for i in range(4)]
            for p in range(3)
        ]
        system, result = run(schedules)
        assert result.memory_image[0][0] == 12
        assert result.memory_image[b // 32][0] == 120

    def test_reader_chases_writer_chain(self):
        writer = [Transaction(100 + i, [("c", 20), ("add", 0, 1)])
                  for i in range(8)]
        reader = [Transaction(200 + i, [("c", 10), ("ld", 0)])
                  for i in range(8)]
        system, result = run([writer, reader])
        # Every committed reader observed a prefix value 0..8.
        for record in result.commit_log:
            if record.tx.tx_id >= 200:
                (_, _, value) = record.reads[0]
                assert 0 <= value <= 8


class TestRetentionEdges:
    def test_retained_transaction_with_growing_write_set(self):
        """A retained transaction whose write-set differs between
        attempts must not deadlock (its skips are deferred until
        validation, so no directory passed its TID early)."""
        hot = 0
        # victim: reads hot, then writes a second line; writers hammer hot
        victim = [Transaction(1, [("ld", hot), ("c", 1500),
                                  ("add", hot + 64, 1)])]
        writers = [
            [Transaction(100 * p + i, [("c", 5), ("add", hot, 1)])
             for i in range(10)]
            for p in range(3)
        ]
        system, result = run([victim] + writers, retention_threshold=2)
        assert result.committed_transactions == 1 + 30

    def test_retention_threshold_one_all_transactions(self):
        schedules = [
            [Transaction(p * 100 + i, [("c", 3), ("add", 0, 1)])
             for i in range(6)]
            for p in range(4)
        ]
        system, result = run(schedules, retention_threshold=1)
        assert result.memory_image[0][0] == 24

    def test_no_retention_in_token_mode(self):
        schedules = [
            [Transaction(p * 100 + i, [("c", 3), ("add", 0, 1)])
             for i in range(6)]
            for p in range(4)
        ]
        system, result = run(schedules, commit_backend="token",
                             retention_threshold=1)
        assert sum(s.tid_retentions for s in result.proc_stats) == 0
        assert result.memory_image[0][0] == 24


class TestBarrierCommitInterplay:
    def test_commit_completes_before_barrier_release(self):
        """A value committed before a barrier is visible to reads after
        the barrier, on every processor."""
        flag = 0
        writer = [Transaction(1, [("st", flag, 42)]), BARRIER]
        readers = [
            [BARRIER, Transaction(10 + p, [("ld", flag)])] for p in range(3)
        ]
        system, result = run([writer] + readers)
        for record in result.commit_log:
            if record.tx.tx_id >= 10:
                assert record.reads[0] == (0, 0, 42)

    def test_alternating_barrier_phases(self):
        addr = 0
        schedules = []
        for p in range(4):
            items = []
            for phase in range(3):
                items.append(
                    Transaction(p * 100 + phase, [("c", 5), ("add", addr, 1)])
                )
                items.append(BARRIER)
            schedules.append(items)
        system, result = run(schedules)
        assert result.memory_image[0][0] == 12
