"""Unit-level tests of processor execution and cycle attribution."""

import pytest

from repro import ScalableTCCSystem, SystemConfig, Transaction
from repro.workloads.base import BARRIER, Workload

LINE = 32
PAGE = 4096


class Scripted(Workload):
    def __init__(self, schedules):
        self.schedules = schedules

    def schedule(self, proc, n_procs):
        return iter(self.schedules[proc])


def run(schedules, **kwargs):
    kwargs.setdefault("n_processors", len(schedules))
    kwargs.setdefault("ordered_network", True)
    system = ScalableTCCSystem(SystemConfig(**kwargs))
    result = system.run(Scripted(schedules), max_cycles=50_000_000)
    return system, result


def test_compute_cycles_become_useful_time():
    system, result = run([[Transaction(1, [("c", 1234)])]])
    assert result.proc_stats[0].useful_cycles >= 1234


def test_cache_hits_cost_l1_latency():
    # one line, ten loads: 1 miss + 9 L1 hits
    ops = [("st", 0, 1)] + [("ld", 0)] * 9
    system, result = run([[Transaction(1, ops)]])
    stats = system.processors[0].hierarchy.stats
    assert stats.hits >= 9


def test_remote_miss_attributed_to_miss_cycles():
    system, result = run([[Transaction(1, [("c", 10), ("ld", PAGE * 64)])], []])
    # first-touch homes the page at the requester... the load still pays
    # local directory + memory latency
    assert result.proc_stats[0].miss_cycles >= 100


def test_commit_cycles_recorded_per_transaction():
    system, result = run([[Transaction(1, [("c", 10), ("st", 0, 1)])]])
    stats = result.proc_stats[0]
    assert stats.commit_cycles > 0
    assert len(stats.commit_wait) == 1
    assert stats.commit_wait[0] == stats.commit_cycles


def test_instructions_counted_for_committed_tx_only():
    tx = Transaction(1, [("c", 100), ("ld", 0), ("st", 4, 2)])
    system, result = run([[tx]])
    assert result.proc_stats[0].committed_instructions == tx.instructions == 102


def test_reads_recorded_in_op_order():
    tx = Transaction(1, [("st", 0, 5), ("ld", 0), ("ld", 4), ("add", 8, 1)])
    system, result = run([[tx]])
    record = result.commit_log[0]
    assert [(l, w) for (l, w, _) in record.reads] == [(0, 0), (0, 1), (0, 2)]


def test_commit_record_carries_commit_time_and_proc():
    system, result = run([[Transaction(1, [("c", 10), ("st", 0, 1)])]])
    record = result.commit_log[0]
    assert record.proc == 0
    assert record.commit_time > 0
    assert record.tid == 1


def test_dirs_touched_sample():
    # write two pages homed on two nodes
    tx = Transaction(1, [("st", 0, 1), ("ld", PAGE * 64)])
    schedules = [[tx], [Transaction(2, [("st", PAGE * 64 + LINE, 1)])]]
    system, result = run(schedules)
    samples = result.proc_stats[0].dirs_touched
    assert samples and samples[0] >= 1


def test_write_and_read_set_bytes_sampled():
    tx = Transaction(1, [("ld", 0), ("ld", 4), ("st", 64, 1)])
    system, result = run([[tx]])
    stats = result.proc_stats[0]
    assert stats.read_set_bytes == [8]
    assert stats.write_set_bytes == [4]


def test_multiple_transactions_sequential_on_one_proc():
    txs = [Transaction(i, [("c", 10), ("add", 0, 1)]) for i in range(5)]
    system, result = run([txs])
    assert result.committed_transactions == 5
    assert result.memory_image[0][0] == 5
    assert result.total_violations == 0  # single proc: no conflicts


def test_finished_flag_set():
    system, result = run([[Transaction(1, [("c", 1)])]])
    assert all(p.finished for p in system.processors)


def test_empty_schedule_is_fine():
    system, result = run([[], [Transaction(1, [("c", 10)])]])
    assert result.committed_transactions == 1


def test_barrier_only_schedules():
    system, result = run([[BARRIER], [BARRIER]])
    assert result.committed_transactions == 0


def test_load_retry_stat_counts_races():
    # Heavy single-line contention with jitter: some load/inv races occur
    schedules = [
        [Transaction(p * 100 + i, [("c", 2), ("add", 0, 1)]) for i in range(8)]
        for p in range(4)
    ]
    system, result = run(schedules, ordered_network=False, network_jitter=6)
    assert result.memory_image[0][0] == 32
    # the stat exists and is non-negative (races are probabilistic)
    assert all(s.load_retries >= 0 for s in result.proc_stats)


def test_violation_classification_execution_vs_commit():
    schedules = [
        [Transaction(p * 10 + i, [("c", 50), ("add", 0, 1)]) for i in range(4)]
        for p in range(4)
    ]
    system, result = run(schedules)
    total = sum(s.violations for s in result.proc_stats)
    split = sum(
        s.execution_violations + s.commit_violations for s in result.proc_stats
    )
    assert total == split


def test_tx_instruction_samples_match_commits():
    txs = [Transaction(i, [("c", 10 * (i + 1))]) for i in range(3)]
    system, result = run([txs])
    assert len(result.proc_stats[0].tx_instructions) == 3
