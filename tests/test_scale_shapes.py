"""Odd machine shapes: non-square, prime, and large processor counts."""

import pytest

from repro import ScalableTCCSystem, SystemConfig
from repro.workloads import CounterWorkload, PrivateWorkload


@pytest.mark.parametrize("n", [3, 5, 7, 12, 24, 48])
def test_non_square_processor_counts(n):
    system = ScalableTCCSystem(SystemConfig(n_processors=n))
    wl = CounterWorkload(n_counters=2, increments_per_proc=4)
    result = system.run(wl, max_cycles=200_000_000)
    total = sum(
        result.memory_image.get(wl.counter_addr(i) // 32, [0] * 8)[0]
        for i in range(2)
    )
    assert total == wl.expected_total(n)


def test_hundred_processors():
    system = ScalableTCCSystem(SystemConfig(n_processors=100))
    result = system.run(PrivateWorkload(tx_per_proc=2), max_cycles=500_000_000)
    assert result.committed_transactions == 200
    assert result.total_violations == 0


def test_vendor_node_can_be_relocated():
    system = ScalableTCCSystem(
        SystemConfig(n_processors=8, tid_vendor_node=5)
    )
    wl = CounterWorkload(n_counters=2, increments_per_proc=3)
    result = system.run(wl, max_cycles=200_000_000)
    assert result.committed_transactions == 24


@pytest.mark.parametrize("line_size,word_size", [(64, 4), (32, 8), (64, 8)])
def test_alternative_line_geometries(line_size, word_size):
    system = ScalableTCCSystem(
        SystemConfig(n_processors=4, line_size=line_size, word_size=word_size)
    )
    wl = CounterWorkload(n_counters=2, increments_per_proc=4)
    result = system.run(wl, max_cycles=200_000_000)
    total = sum(
        result.memory_image.get(wl.counter_addr(i) // line_size,
                                [0] * (line_size // word_size))[0]
        for i in range(2)
    )
    assert total == wl.expected_total(4)
