"""Tests for the chaos harness (repro.faults.chaos)."""

import dataclasses

from repro.faults.chaos import (
    ChaosCase,
    format_report,
    make_case,
    random_fault_plan,
    run_case,
    run_chaos,
)


def test_make_case_is_deterministic():
    assert make_case(42) == make_case(42)
    assert make_case(42) != make_case(43)


def test_random_fault_plans_are_bounded():
    for seed in range(30):
        plan = random_fault_plan(seed, n_nodes=8)
        assert plan.packet_faults  # always at least one packet rule
        for rule in plan.packet_faults:
            assert rule.probability <= 0.10
        for fault in plan.node_faults:
            assert fault.node < 8
            assert fault.duration <= 4_000


def test_run_case_is_replayable():
    case = make_case(3)
    first = run_case(case)
    second = run_case(case)
    assert first.ok, first.detail
    assert (first.cycles, first.committed, first.violations) == (
        second.cycles, second.committed, second.violations
    )
    assert first.fault_stats == second.fault_stats


def test_small_campaign_passes_clean():
    report = run_chaos(cases=6, seed0=500)
    assert report["failed"] == 0, report["failures"]
    assert report["passed"] == 6
    assert report["fault_totals"]["packets_seen"] > 0
    text = format_report(report)
    assert "6/6 passed" in text
    assert "zero hangs" in text


def test_paranoid_mode_is_threaded_and_bit_inert():
    """``chaos --quick`` runs with paranoid invariant checking; the
    checks are passive, so the simulated outcome must be bit-identical
    to the plain run of the same seed."""
    plain_case = make_case(7)
    paranoid_case = make_case(7, paranoid=True)
    assert not plain_case.build_config().paranoid
    assert paranoid_case.build_config().paranoid
    plain = run_case(plain_case)
    paranoid = run_case(paranoid_case)
    assert paranoid.ok, paranoid.detail
    assert (plain.cycles, plain.committed, plain.violations) == (
        paranoid.cycles, paranoid.committed, paranoid.violations
    )


def test_campaign_paranoid_flag_reaches_workers():
    report = run_chaos(cases=3, seed0=500, paranoid=True)
    assert report["failed"] == 0, report["failures"]
    assert report["passed"] == 3


def test_failed_expectation_is_reported_not_raised():
    case = dataclasses.replace(make_case(0), expected_commits=99_999)
    outcome = run_case(case)
    assert outcome.outcome == "check-failed"
    assert "expected 99999" in outcome.detail
    report = {
        "cases": 1, "seed0": 0, "passed": 0, "failed": 1,
        "failures": [outcome.as_dict()], "fault_totals": {},
        "wall_seconds": 0.0, "results": [outcome.as_dict()],
    }
    assert "replay: run_case(make_case(0))" in format_report(report)


def test_case_results_serialize():
    outcome = run_case(make_case(1))
    as_dict = outcome.as_dict()
    import json

    json.dumps(as_dict)
    assert as_dict["outcome"] == "ok"
    assert as_dict["seed"] == 1


def test_historical_wedge_seeds_stay_fixed():
    """Regression: seeds that wedged pending forwards before hardening —
    a write-back stale-dropped after the owner's next commit of the same
    line (152) and a duplicated invalidation from an older commit
    destroying the owner's only copy (379)."""
    for seed in (152, 379):
        result = run_case(make_case(seed))
        assert result.outcome == "ok", f"seed {seed}: {result.detail}"
