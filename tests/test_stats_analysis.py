"""Unit tests for the stats and analysis layers."""

import pytest

from repro import ScalableTCCSystem, SystemConfig
from repro.analysis import (
    format_breakdown_figure,
    format_table,
    format_traffic_figure,
    run_app,
    run_scaling,
)
from repro.stats import characteristics, percentile, speedup
from repro.workloads import CounterWorkload, PrivateWorkload


class TestPercentile:
    def test_empty_is_zero(self):
        assert percentile([], 90) == 0.0

    def test_single_sample(self):
        assert percentile([7], 50) == 7.0

    def test_median_of_two(self):
        assert percentile([0, 10], 50) == 5.0

    def test_p90_interpolation(self):
        assert percentile(list(range(11)), 90) == 9.0

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            percentile([1], 150)


@pytest.fixture(scope="module")
def small_run():
    system = ScalableTCCSystem(SystemConfig(n_processors=4))
    result = system.run(
        CounterWorkload(n_counters=4, increments_per_proc=5),
        max_cycles=20_000_000,
    )
    return result


class TestResultAccessors:
    def test_breakdown_sums_to_total(self, small_run):
        breakdown = small_run.breakdown()
        total = small_run.cycles * len(small_run.proc_stats)
        assert sum(breakdown.values()) == pytest.approx(total, rel=0.01)

    def test_breakdown_fractions_sum_to_one(self, small_run):
        fractions = small_run.breakdown_fractions()
        assert sum(fractions.values()) == pytest.approx(1.0, rel=0.01)

    def test_bytes_per_instruction_positive(self, small_run):
        bpi = small_run.bytes_per_instruction()
        assert set(bpi) == {"commit", "miss", "writeback", "overhead"}
        assert all(v >= 0 for v in bpi.values())
        assert sum(bpi.values()) > 0

    def test_committed_counts(self, small_run):
        assert small_run.committed_transactions == 20
        assert small_run.committed_instructions > 0


class TestCharacteristics:
    def test_table3_row_extraction(self, small_run):
        row = characteristics("counters", small_run)
        assert row.name == "counters"
        assert row.n_processors == 4
        assert row.tx_size_p90 > 0
        assert row.write_set_p90_kb > 0
        assert row.read_set_p90_kb > 0
        assert row.ops_per_word_written > 0
        assert 1 <= row.dirs_per_commit_p90 <= 4
        assert row.occupancy_p90_cycles > 0
        assert len(row.row()) == 8


class TestSpeedup:
    def test_speedup_of_identical_runs_is_one(self, small_run):
        assert speedup(small_run, small_run) == 1.0

    def test_parallel_speedup_positive(self):
        results = {}
        for n in (1, 4):
            system = ScalableTCCSystem(SystemConfig(n_processors=n))
            results[n] = system.run(
                PrivateWorkload(tx_per_proc=16 // n, compute=500),
                max_cycles=50_000_000,
            )
        assert speedup(results[1], results[4]) > 1.5


class TestFormatting:
    def test_format_table_aligns(self):
        text = format_table(["a", "bb"], [["1", "2"], ["333", "4"]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert all(len(line) == len(lines[0]) for line in lines[1:])

    def test_breakdown_figure_includes_speedups(self):
        text = format_breakdown_figure(
            "Figure 7",
            {"app@8": {"useful": 0.5, "miss": 0.2, "idle": 0.3}},
            {"app@8": 6.0},
        )
        assert "Figure 7" in text
        assert "50.0%" in text
        assert "6.0x" in text

    def test_traffic_figure(self):
        text = format_traffic_figure(
            "Figure 9", {"app": {"commit": 0.01, "miss": 0.02,
                                 "writeback": 0.005, "overhead": 0.001}}
        )
        assert "0.0100" in text
        assert "total" in text


class TestExperimentDrivers:
    def test_run_app_small(self):
        result = run_app("barnes", SystemConfig(n_processors=2), scale=0.05)
        assert result.committed_transactions > 0

    def test_run_scaling_returns_per_count(self):
        results = run_scaling("barnes", [1, 2], scale=0.05)
        assert set(results) == {1, 2}
        assert results[1].n_processors == 1
        assert results[2].n_processors == 2
