"""Unit tests for the Skip Vector (Figure 5 of the paper)."""

from repro.directory import SkipVector


def test_initial_nstid():
    assert SkipVector().nstid == 1
    assert SkipVector(first_tid=5).nstid == 5


def test_skip_of_current_tid_advances():
    sv = SkipVector()
    assert sv.skip(1) == 1
    assert sv.nstid == 2


def test_skip_of_future_tid_buffers():
    sv = SkipVector()
    assert sv.skip(3) == 0
    assert sv.nstid == 1
    assert sv.is_skipped(3)


def test_consecutive_skips_drain_together():
    sv = SkipVector()
    sv.skip(2)
    sv.skip(3)
    sv.skip(4)
    assert sv.nstid == 1
    advanced = sv.skip(1)
    assert advanced == 4
    assert sv.nstid == 5


def test_figure5_scenario():
    """The exact sequence from Figure 5: serving 10, skips for 12,13,14
    buffered; completing 10 advances to 11; skipping 11 drains to 15."""
    sv = SkipVector(first_tid=10)
    sv.skip(12)
    sv.skip(13)
    sv.skip(14)
    assert sv.nstid == 10
    assert sv.complete_current() == 1
    assert sv.nstid == 11
    assert sv.skip(11) == 4
    assert sv.nstid == 15


def test_stale_skip_ignored():
    sv = SkipVector()
    sv.skip(1)
    assert sv.skip(1) == 0
    assert sv.stale_skips == 1
    assert sv.nstid == 2


def test_duplicate_future_skip_idempotent():
    sv = SkipVector()
    sv.skip(3)
    sv.skip(3)
    sv.skip(2)
    assert sv.skip(1) == 3
    assert sv.nstid == 4


def test_complete_current_with_gap_stops():
    sv = SkipVector()
    sv.skip(4)  # gap at 2 and 3
    assert sv.complete_current() == 1
    assert sv.nstid == 2


def test_skips_received_counter():
    sv = SkipVector()
    sv.skip(2)
    sv.skip(3)
    sv.skip(1)
    assert sv.skips_received == 3


def test_max_width_tracks_hardware_sizing():
    sv = SkipVector()
    sv.skip(65)
    assert sv.max_width == 65


def test_long_random_sequence_ends_gap_free():
    import random

    rng = random.Random(42)
    sv = SkipVector()
    tids = list(range(1, 201))
    rng.shuffle(tids)
    for tid in tids:
        sv.skip(tid)
    assert sv.nstid == 201


def test_buffered_bits_shift_with_the_anchor():
    """The bitmap is anchored at NSTID: advancing must slide buffered
    skips down so they drain at the right TIDs (the Figure 5 wraparound
    behaviour of the hardware shift register)."""
    sv = SkipVector()
    sv.skip(3)
    sv.skip(5)
    assert sv.skip(1) == 1  # advance to 2; bits for 3 and 5 must follow
    assert sv.nstid == 2
    assert sv.is_skipped(3) and sv.is_skipped(5)
    assert sv.skip(2) == 2  # drains 2 and the shifted 3
    assert sv.nstid == 4
    assert sv.skip(4) == 2  # drains 4 and the twice-shifted 5
    assert sv.nstid == 6


def test_anchor_reuse_across_many_windows():
    """Alternate ahead-of-anchor and at-anchor skips for many windows:
    each window reuses bit positions the previous one vacated."""
    sv = SkipVector()
    for tid in range(1, 300, 2):
        assert sv.skip(tid + 1) == 0  # buffered one ahead
        assert sv.skip(tid) == 2      # drains both
    assert sv.nstid == 301
    assert sv.stale_skips == 0


def test_far_future_skip_survives_gap_fill():
    sv = SkipVector()
    sv.skip(1000)
    for tid in range(2, 1000):
        sv.skip(tid)
    assert sv.nstid == 1
    assert sv.skip(1) == 1000
    assert sv.nstid == 1001
    assert sv.max_width >= 1000


def test_is_skipped_false_for_past_tids():
    sv = SkipVector()
    sv.skip(1)
    assert not sv.is_skipped(1)  # already served
    assert not sv.is_skipped(0)


def test_dup_skip_after_drain_is_stale_not_reanchored():
    """A duplicate of an already-drained skip (hardened-protocol retry)
    must count as stale, not re-set a bit in the new window."""
    sv = SkipVector()
    sv.skip(2)
    sv.skip(1)
    assert sv.nstid == 3
    assert sv.skip(2) == 0
    assert sv.stale_skips == 1
    assert not sv.is_skipped(3)  # the dup must not poison TID 3
    assert sv.skip(3) == 1
