"""Regression guard: the declared protocol table and the source stay in
lock-step.

An added message type in ``core/messages.py`` cannot land without (a) a
``PROTOCOL_TABLE`` entry and (b) exactly one implemented dispatch site
in the declared handler module — and vice versa, a table entry cannot
outlive its message type.  Each assertion names the orphan so the
failure is actionable without re-running the linter.
"""

from repro.lint.loader import load_tree
from repro.lint.protocol_table import (
    HANDLER_MODULES,
    PROTOCOL_TABLE,
    MessageContract,
)
from repro.lint.rules.protocol import (
    extract_emissions,
    extract_handlers,
    message_types,
)
from repro.lint.runner import default_root


def _modules():
    return load_tree(default_root())


def test_every_message_type_is_declared_in_the_table():
    types = message_types(_modules())
    assert types, "no message types found in core/messages.py"
    for name in sorted(types):
        assert name in PROTOCOL_TABLE, (
            f"orphan message type {name!r}: defined in core/messages.py "
            "but not declared in PROTOCOL_TABLE "
            "(src/repro/lint/protocol_table.py)"
        )


def test_every_table_entry_has_a_message_type():
    types = message_types(_modules())
    for name in sorted(PROTOCOL_TABLE):
        assert name in types, (
            f"stale table entry {name!r}: declared in PROTOCOL_TABLE but "
            "core/messages.py defines no such message type"
        )


def test_every_message_type_has_exactly_one_handler():
    modules = _modules()
    types = message_types(modules)
    by_message = {}
    for site in extract_handlers(modules):
        by_message.setdefault(site.message, []).append(site)
    for name in sorted(types):
        sites = by_message.get(name, [])
        assert len(sites) == 1, (
            f"message type {name!r} must have exactly one dispatch site, "
            f"found {[(s.module, s.function, s.line) for s in sites]}"
        )
        declared = PROTOCOL_TABLE[name].handler
        assert sites[0].module == declared, (
            f"message type {name!r} is dispatched in {sites[0].module} "
            f"but PROTOCOL_TABLE declares {declared}"
        )


def test_every_emission_site_is_a_declared_emitter():
    modules = _modules()
    for site in extract_emissions(modules):
        contract = PROTOCOL_TABLE.get(site.message)
        assert contract is not None
        assert site.module in contract.emitters, (
            f"{site.message} constructed in {site.module}:{site.line} "
            f"({site.function}); declared emitters: {contract.emitters}"
        )


def test_commit_critical_requests_cover_the_commit_protocol():
    # The forward-progress argument of the hardened protocol (PR 2)
    # rests on these exact request types being timeout-retried; shrink
    # this set only with a matching change to the retry machinery.
    critical = {
        name for name, contract in PROTOCOL_TABLE.items()
        if contract.commit_critical
    }
    assert critical == {
        "LoadRequest", "TidRequest", "SkipMsg", "ProbeRequest",
        "MarkMsg", "CommitMsg", "AbortMsg",
    }


def test_handler_modules_exist_in_the_tree():
    modules = _modules()
    for module_name in HANDLER_MODULES:
        assert module_name in modules, (
            f"PROTOCOL_TABLE references handler module {module_name!r} "
            "which does not exist"
        )


def test_table_entries_are_well_formed():
    for name, contract in PROTOCOL_TABLE.items():
        assert isinstance(contract, MessageContract)
        assert contract.handler in HANDLER_MODULES, name
        assert contract.emitters, f"{name} has no declared emitters"
        for emitter in contract.emitters:
            assert emitter in HANDLER_MODULES, (name, emitter)
