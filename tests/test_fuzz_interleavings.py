"""Interleaving fuzzer: many jitter seeds over nasty scenarios.

The network jitter seed perturbs every message's delivery time, so
sweeping seeds explores a broad space of protocol interleavings —
deterministic per seed, hence reproducible on failure.  Every run is
serializability-checked, invariant-checked, and counter-exact.

The second half is the differential property suite: seeded random
programs (and schedule perturbations of them — same program, different
machine seed and jitter) cross-checked against the independent oracle
in :mod:`repro.oracle`.  A failing property shrinks its case to a
minimal reproducer and writes it under ``tests/fixtures/conform/``,
where the regression loader (``test_conform_regressions.py``) replays
it forever.  See docs/TESTING.md for the triage workflow.
"""

import dataclasses
import pathlib

import pytest

from repro import ScalableTCCSystem, SystemConfig, Transaction
from repro.conform import make_case, run_conform_case, save_counterexample, shrink_case
from repro.workloads.base import Workload
from repro.workloads.tm_patterns import ListSetWorkload, QueueWorkload

FIXTURES = pathlib.Path(__file__).parent / "fixtures" / "conform"


class Scripted(Workload):
    def __init__(self, schedules):
        self.schedules = schedules

    def schedule(self, proc, n_procs):
        return iter(self.schedules[proc])


def hot_counter_schedules(n_procs, per_proc):
    return [
        [Transaction(p * 100 + i, [("c", 3), ("add", 0, 1)])
         for i in range(per_proc)]
        for p in range(n_procs)
    ]


@pytest.mark.parametrize("seed", range(25))
def test_counter_exact_across_jitter_seeds(seed):
    config = SystemConfig(
        n_processors=4, seed=seed, network_jitter=6, ordered_network=False
    )
    system = ScalableTCCSystem(config)
    result = system.run(
        Scripted(hot_counter_schedules(4, 6)), max_cycles=100_000_000
    )
    assert result.memory_image[0][0] == 24


@pytest.mark.parametrize("seed", range(10))
def test_listset_across_jitter_seeds(seed):
    config = SystemConfig(
        n_processors=6, seed=seed, network_jitter=5, ordered_network=False
    )
    system = ScalableTCCSystem(config)
    workload = ListSetWorkload(list_length=12, ops_per_proc=6,
                               insert_ratio=0.5, seed=seed)
    result = system.run(workload, max_cycles=200_000_000)
    assert result.committed_transactions == 36


@pytest.mark.parametrize("seed", range(10))
def test_queue_counters_across_jitter_seeds(seed):
    config = SystemConfig(
        n_processors=6, seed=seed, network_jitter=5, ordered_network=False
    )
    system = ScalableTCCSystem(config)
    workload = QueueWorkload(ops_per_proc=6, seed=seed)
    result = system.run(workload, max_cycles=200_000_000)
    enqueuers = 3
    assert result.memory_image[workload.tail_addr // 32][0] == enqueuers * 6


@pytest.mark.parametrize("seed", range(8))
def test_retention_under_jitter(seed):
    config = SystemConfig(
        n_processors=4, seed=seed, network_jitter=6,
        retention_threshold=1, ordered_network=False
    )
    system = ScalableTCCSystem(config)
    result = system.run(
        Scripted(hot_counter_schedules(4, 5)), max_cycles=100_000_000
    )
    assert result.memory_image[0][0] == 20


# ---------------------------------------------------------------------------
# Differential property suite: random programs vs. the reference oracle.
# ---------------------------------------------------------------------------


def assert_conforms(case, fixture_name):
    """The property: the full machine agrees with the oracle on commit
    order, read witnesses, and final memory.  On failure, shrink and
    save a replayable counterexample before failing the test."""
    result = run_conform_case(case)
    if result.ok:
        assert result.committed == case.program.tx_count
        return
    shrunk = shrink_case(case, base=result, max_evals=200)
    path = save_counterexample(shrunk.case, shrunk.result,
                               FIXTURES / f"{fixture_name}.json")
    pytest.fail(
        f"{case.describe()}: {result.outcome} ({result.detail}); "
        f"{shrunk.describe()}; counterexample saved to {path} — commit it "
        f"so test_conform_regressions.py pins the fix"
    )


def perturbed(case, variant):
    """Same program, different schedule: perturb the machine seed and
    network jitter so message delivery (hence commit interleaving)
    changes while the transactional code stays fixed."""
    overrides = dict(case.config_overrides)
    overrides["seed"] = case.seed * 1_000 + 7 * variant + 1
    overrides["network_jitter"] = (overrides.get("network_jitter", 0)
                                   + variant) % 7
    return dataclasses.replace(case, config_overrides=overrides)


@pytest.mark.parametrize("seed", range(12))
def test_random_programs_conform(seed):
    assert_conforms(make_case(seed), f"fuzz_seed{seed}_clean")


@pytest.mark.parametrize("seed", range(6))
def test_random_programs_conform_under_faults(seed):
    assert_conforms(make_case(seed, faults=True), f"fuzz_seed{seed}_faults")


@pytest.mark.parametrize("variant", range(1, 4))
@pytest.mark.parametrize("seed", range(4))
def test_schedule_perturbations_conform(seed, variant):
    case = perturbed(make_case(seed), variant)
    assert_conforms(case, f"fuzz_seed{seed}_v{variant}_clean")


@pytest.mark.slow
@pytest.mark.parametrize("seed", range(12, 60))
def test_random_programs_conform_deep(seed):
    assert_conforms(make_case(seed), f"fuzz_seed{seed}_clean")


@pytest.mark.slow
@pytest.mark.parametrize("seed", range(6, 40))
def test_random_programs_conform_under_faults_deep(seed):
    assert_conforms(make_case(seed, faults=True), f"fuzz_seed{seed}_faults")


@pytest.mark.slow
@pytest.mark.parametrize("variant", range(4, 8))
@pytest.mark.parametrize("seed", range(8))
def test_schedule_perturbations_conform_deep(seed, variant):
    case = perturbed(make_case(seed), variant)
    assert_conforms(case, f"fuzz_seed{seed}_v{variant}_clean")
