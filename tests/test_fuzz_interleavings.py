"""Interleaving fuzzer: many jitter seeds over nasty scenarios.

The network jitter seed perturbs every message's delivery time, so
sweeping seeds explores a broad space of protocol interleavings —
deterministic per seed, hence reproducible on failure.  Every run is
serializability-checked, invariant-checked, and counter-exact.
"""

import pytest

from repro import ScalableTCCSystem, SystemConfig, Transaction
from repro.workloads.base import Workload
from repro.workloads.tm_patterns import ListSetWorkload, QueueWorkload


class Scripted(Workload):
    def __init__(self, schedules):
        self.schedules = schedules

    def schedule(self, proc, n_procs):
        return iter(self.schedules[proc])


def hot_counter_schedules(n_procs, per_proc):
    return [
        [Transaction(p * 100 + i, [("c", 3), ("add", 0, 1)])
         for i in range(per_proc)]
        for p in range(n_procs)
    ]


@pytest.mark.parametrize("seed", range(25))
def test_counter_exact_across_jitter_seeds(seed):
    config = SystemConfig(
        n_processors=4, seed=seed, network_jitter=6, ordered_network=False
    )
    system = ScalableTCCSystem(config)
    result = system.run(
        Scripted(hot_counter_schedules(4, 6)), max_cycles=100_000_000
    )
    assert result.memory_image[0][0] == 24


@pytest.mark.parametrize("seed", range(10))
def test_listset_across_jitter_seeds(seed):
    config = SystemConfig(
        n_processors=6, seed=seed, network_jitter=5, ordered_network=False
    )
    system = ScalableTCCSystem(config)
    workload = ListSetWorkload(list_length=12, ops_per_proc=6,
                               insert_ratio=0.5, seed=seed)
    result = system.run(workload, max_cycles=200_000_000)
    assert result.committed_transactions == 36


@pytest.mark.parametrize("seed", range(10))
def test_queue_counters_across_jitter_seeds(seed):
    config = SystemConfig(
        n_processors=6, seed=seed, network_jitter=5, ordered_network=False
    )
    system = ScalableTCCSystem(config)
    workload = QueueWorkload(ops_per_proc=6, seed=seed)
    result = system.run(workload, max_cycles=200_000_000)
    enqueuers = 3
    assert result.memory_image[workload.tail_addr // 32][0] == enqueuers * 6


@pytest.mark.parametrize("seed", range(8))
def test_retention_under_jitter(seed):
    config = SystemConfig(
        n_processors=4, seed=seed, network_jitter=6,
        retention_threshold=1, ordered_network=False
    )
    system = ScalableTCCSystem(config)
    result = system.run(
        Scripted(hot_counter_schedules(4, 5)), max_cycles=100_000_000
    )
    assert result.memory_image[0][0] == 20
