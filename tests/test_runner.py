"""Tests for the parallel job runner and content-addressed result cache."""

import json
import multiprocessing
import os

import pytest

from repro import SystemConfig
from repro.analysis.sweep import Sweep
from repro.faults.chaos import run_chaos
from repro.runner import (
    JobSpec,
    ResultCache,
    ResultSummary,
    code_fingerprint,
    register_workload,
    run_jobs,
)

CONFIG = SystemConfig(n_processors=2)


def sim_spec(seed_args=None, **overrides):
    return JobSpec(
        kind="sim",
        workload="counter",
        workload_args=seed_args or {"n_counters": 2, "increments_per_proc": 3},
        config=CONFIG,
        max_cycles=50_000_000,
        **overrides,
    )


class TestJobSpec:
    def test_key_is_stable_and_label_free(self):
        a = sim_spec(label="first")
        b = sim_spec(label="second")
        assert a.key() == b.key()
        assert a.key() == sim_spec().key()

    def test_key_changes_with_inputs(self):
        base = sim_spec()
        assert base.key() != sim_spec({"n_counters": 3}).key()
        assert base.key() != JobSpec(kind="chaos", seed=1).key()
        bigger = JobSpec(kind="sim", workload="counter",
                         config=SystemConfig(n_processors=4),
                         max_cycles=50_000_000)
        assert base.key() != bigger.key()

    def test_cacheable_flag_not_part_of_identity(self):
        assert sim_spec().key() == sim_spec(cacheable=False).key()

    def test_validation(self):
        with pytest.raises(ValueError, match="kind"):
            JobSpec(kind="nope", workload="counter")
        with pytest.raises(ValueError, match="seed"):
            JobSpec(kind="chaos")
        with pytest.raises(ValueError, match="workload"):
            JobSpec(kind="sim")

    def test_describe(self):
        assert sim_spec(label="pt-3").describe() == "pt-3"
        assert JobSpec(kind="chaos", seed=7).describe() == "chaos seed=7"
        assert sim_spec().describe() == "sim counter@2"


class TestResultCache:
    def test_miss_then_hit(self, tmp_path):
        cache = ResultCache(root=str(tmp_path))
        assert cache.get("ab" * 32) is None
        cache.put("ab" * 32, {"x": 1})
        assert cache.get("ab" * 32) == {"x": 1}
        assert (cache.hits, cache.misses, cache.writes) == (1, 1, 1)
        assert cache.entry_count() == 1

    def test_layout_is_sharded_json(self, tmp_path):
        cache = ResultCache(root=str(tmp_path))
        key = "cd" * 32
        cache.put(key, {"x": 2})
        path = tmp_path / key[:2] / f"{key}.json"
        assert path.is_file()
        assert json.loads(path.read_text())["payload"] == {"x": 2}

    def test_code_fingerprint_invalidates(self, tmp_path):
        writer = ResultCache(root=str(tmp_path), fingerprint="old-code")
        writer.put("ef" * 32, {"x": 3})
        reader = ResultCache(root=str(tmp_path), fingerprint="new-code")
        assert reader.get("ef" * 32) is None
        assert reader.invalidations == 1
        assert reader.misses == 1

    def test_clear(self, tmp_path):
        cache = ResultCache(root=str(tmp_path))
        cache.put("01" * 32, {})
        cache.put("23" * 32, {})
        assert cache.clear() == 2
        assert cache.entry_count() == 0

    def test_code_fingerprint_is_cached_and_refreshable(self):
        assert code_fingerprint() == code_fingerprint()
        assert code_fingerprint(refresh=True) == code_fingerprint()


class TestRunJobs:
    def test_serial_vs_parallel_fingerprints_identical(self):
        specs = [sim_spec({"n_counters": 2, "increments_per_proc": n})
                 for n in (2, 3, 4, 5)]
        serial, _ = run_jobs(specs, jobs=1, cache=None)
        parallel, stats = run_jobs(specs, jobs=4, cache=None)
        assert stats.executed == 4
        assert [o.summary().fingerprint() for o in serial] == \
               [o.summary().fingerprint() for o in parallel]

    def test_cold_then_warm_cache(self, tmp_path):
        cache = ResultCache(root=str(tmp_path))
        specs = [sim_spec(), sim_spec({"n_counters": 3})]
        cold, cold_stats = run_jobs(specs, jobs=1, cache=cache)
        warm, warm_stats = run_jobs(specs, jobs=1, cache=cache)
        assert (cold_stats.executed, cold_stats.from_cache) == (2, 0)
        assert (warm_stats.executed, warm_stats.from_cache) == (0, 2)
        assert warm_stats.cache["hits"] == 2
        assert [o.cached for o in warm] == [True, True]
        assert [o.summary().fingerprint() for o in cold] == \
               [o.summary().fingerprint() for o in warm]

    def test_perf_jobs_never_cached(self, tmp_path):
        cache = ResultCache(root=str(tmp_path))
        spec = JobSpec(kind="perf", workload="barnes",
                       workload_args={"scale": 0.02}, config=CONFIG,
                       verify=False, cacheable=False)
        outcomes, stats = run_jobs([spec], jobs=1, cache=cache)
        assert outcomes[0].ok
        assert outcomes[0].payload["wall_samples_s"]
        assert cache.entry_count() == 0
        assert stats.executed == 1

    def test_chaos_job_matches_direct_run(self):
        outcomes, _ = run_jobs([JobSpec(kind="chaos", seed=11)], jobs=1)
        case = outcomes[0].payload["case"]
        assert case["seed"] == 11
        assert case["outcome"] == "ok"

    def test_error_is_captured_not_raised(self):
        bad = JobSpec(kind="sim", workload="no-such-workload", config=CONFIG)
        outcomes, stats = run_jobs([bad], jobs=1)
        assert not outcomes[0].ok
        assert "no-such-workload" in outcomes[0].error
        assert stats.errors == 1

    def test_deterministic_error_not_retried_in_parallel(self):
        bad = JobSpec(kind="sim", workload="no-such-workload", config=CONFIG)
        outcomes, stats = run_jobs([bad, sim_spec()], jobs=2)
        assert not outcomes[0].ok
        assert outcomes[1].ok
        assert stats.errors == 1
        assert stats.retried == 0


@pytest.mark.skipif(
    "fork" not in multiprocessing.get_all_start_methods(),
    reason="crash test needs fork so the registered factory is inherited",
)
class TestWorkerCrash:
    def test_crashed_worker_is_quarantined_and_campaign_completes(self):
        register_workload("_crash_test", lambda config, **kw: os._exit(3))
        try:
            crash = JobSpec(kind="sim", workload="_crash_test", config=CONFIG)
            specs = [sim_spec(), crash, sim_spec({"n_counters": 3})]
            outcomes, stats = run_jobs(specs, jobs=2, crash_retries=1)
        finally:
            from repro.runner import WORKLOAD_FACTORIES
            WORKLOAD_FACTORIES.pop("_crash_test", None)
        assert outcomes[0].ok and outcomes[2].ok
        assert not outcomes[1].ok
        assert "exit" in outcomes[1].error
        assert stats.crashes >= 1
        assert stats.quarantined == 1


class TestResultSummary:
    def test_roundtrip_preserves_fingerprint(self):
        outcomes, _ = run_jobs([sim_spec()], jobs=1)
        summary = outcomes[0].summary()
        clone = ResultSummary.from_dict(json.loads(
            json.dumps(summary.to_dict())))
        assert clone.fingerprint() == summary.fingerprint()

    def test_from_dict_ignores_unknown_keys(self):
        outcomes, _ = run_jobs([sim_spec()], jobs=1)
        data = outcomes[0].summary().to_dict()
        data["added_in_a_future_version"] = 1
        assert ResultSummary.from_dict(data).cycles == outcomes[0].summary().cycles

    def test_fraction_accessors(self):
        outcomes, _ = run_jobs([sim_spec()], jobs=1)
        summary = outcomes[0].summary()
        assert sum(summary.breakdown_fractions().values()) == \
               pytest.approx(1.0, rel=0.01)
        assert set(summary.bytes_per_instruction()) == \
               {"commit", "miss", "writeback", "overhead"}


class TestSweepRunner:
    def make_sweep(self, grid, **kwargs):
        return Sweep(
            SystemConfig(n_processors=2, ordered_network=True),
            grid,
            ("app", {"name": "barnes", "scale": 0.05}),
            max_cycles=500_000_000,
            **kwargs,
        )

    def test_unknown_grid_key_rejected_with_suggestion(self):
        with pytest.raises(ValueError, match="granlarity.*granularity"):
            self.make_sweep({"granlarity": ["word"]})

    def test_serial_vs_parallel_sweep_identical(self):
        serial = self.make_sweep({"link_latency": [1, 6]})
        serial.run(jobs=1)
        parallel = self.make_sweep({"link_latency": [1, 6]})
        parallel.run(jobs=4)
        assert serial.fingerprints() == parallel.fingerprints()
        assert parallel.last_run_stats.jobs == 4

    def test_cached_sweep_equivalent(self, tmp_path):
        cache = ResultCache(root=str(tmp_path))
        cold = self.make_sweep({"link_latency": [1, 6]})
        cold.run(jobs=1, cache=cache)
        warm = self.make_sweep({"link_latency": [1, 6]})
        warm.run(jobs=1, cache=cache)
        assert warm.last_run_stats.from_cache == 2
        assert cold.fingerprints() == warm.fingerprints()
        assert warm.best("cycles").overrides == {"link_latency": 1}

    def test_callable_factory_cannot_go_parallel(self):
        from repro import app_workload
        sweep = Sweep(
            SystemConfig(n_processors=2),
            {"link_latency": [1]},
            lambda cfg: app_workload("barnes", scale=0.05),
        )
        with pytest.raises(ValueError, match="callable"):
            sweep.run(jobs=2)
        with pytest.raises(ValueError, match="callable"):
            sweep.run(cache=ResultCache(root=".unused"))


class TestChaosReportShape:
    def test_report_is_summary_only_by_default(self):
        report = run_chaos(cases=2, seed0=500)
        assert "results" not in report
        assert report["passed"] == 2
        assert report["runner"]["total"] == 2

    def test_full_opt_in_restores_per_case_results(self):
        report = run_chaos(cases=2, seed0=500, full=True)
        assert len(report["results"]) == 2
        assert report["results"][0]["seed"] == 500

    def test_cached_campaign_is_equivalent(self, tmp_path):
        cache = ResultCache(root=str(tmp_path))
        cold = run_chaos(cases=3, seed0=500, cache=cache)
        warm = run_chaos(cases=3, seed0=500, cache=cache)
        assert warm["runner"]["from_cache"] == 3
        for key in ("passed", "failed", "fault_totals", "outcome_counts"):
            assert cold[key] == warm[key]
