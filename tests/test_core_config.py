"""Unit tests for SystemConfig (Table 2 defaults and validation)."""

import pytest

from repro.core import SystemConfig


def test_defaults_match_table2():
    cfg = SystemConfig()
    assert cfg.line_size == 32
    assert cfg.l1_size == 32 * 1024 and cfg.l1_ways == 4 and cfg.l1_latency == 1
    assert cfg.l2_size == 512 * 1024 and cfg.l2_ways == 8 and cfg.l2_latency == 6
    assert cfg.memory_latency == 100
    assert cfg.directory_latency == 10
    assert cfg.link_latency == 3
    assert cfg.first_touch
    assert cfg.commit_backend == "scalable"
    assert not cfg.write_through_commit
    assert cfg.granularity == "word"


def test_words_per_line():
    assert SystemConfig().words_per_line == 8
    assert SystemConfig(line_size=64, word_size=8).words_per_line == 8


def test_scaled_to_changes_only_processor_count():
    base = SystemConfig(n_processors=8, link_latency=5)
    scaled = base.scaled_to(64)
    assert scaled.n_processors == 64
    assert scaled.link_latency == 5
    assert base.n_processors == 8  # frozen: original untouched


def test_with_link_latency():
    cfg = SystemConfig().with_link_latency(8)
    assert cfg.link_latency == 8


@pytest.mark.parametrize(
    "kwargs",
    [
        dict(n_processors=0),
        dict(granularity="byte"),
        dict(commit_backend="bus"),
        dict(line_size=30),
        dict(retention_threshold=0),
    ],
)
def test_invalid_configs_rejected(kwargs):
    with pytest.raises(ValueError):
        SystemConfig(**kwargs)


def test_describe_mentions_key_parameters():
    text = SystemConfig().describe()
    assert "32-KB" in text
    assert "512-KB" in text
    assert "100 cycles" in text
    assert "first-touch" in text
    assert "word-granularity" in text


def test_frozen():
    cfg = SystemConfig()
    with pytest.raises(Exception):
        cfg.n_processors = 4  # type: ignore[misc]
