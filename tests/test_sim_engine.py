"""Unit tests for the discrete-event engine."""

import pytest

from repro.sim import Engine
from repro.sim.engine import SimulationError, ensure_engine


def test_time_starts_at_zero():
    assert Engine().now == 0


def test_schedule_and_run_advances_clock():
    engine = Engine()
    fired = []
    engine.schedule(10, lambda: fired.append(engine.now))
    engine.run()
    assert fired == [10]
    assert engine.now == 10


def test_events_run_in_time_order():
    engine = Engine()
    order = []
    engine.schedule(5, lambda: order.append("b"))
    engine.schedule(1, lambda: order.append("a"))
    engine.schedule(9, lambda: order.append("c"))
    engine.run()
    assert order == ["a", "b", "c"]


def test_same_cycle_events_run_fifo():
    engine = Engine()
    order = []
    for label in "abc":
        engine.schedule(3, lambda lab=label: order.append(lab))
    engine.run()
    assert order == ["a", "b", "c"]


def test_zero_delay_runs_after_current_queue_entries():
    engine = Engine()
    order = []

    def first():
        order.append("first")
        engine.schedule(0, lambda: order.append("nested"))

    engine.schedule(0, first)
    engine.schedule(0, lambda: order.append("second"))
    engine.run()
    assert order == ["first", "second", "nested"]


def test_negative_delay_rejected():
    engine = Engine()
    with pytest.raises(SimulationError):
        engine.schedule(-1, lambda: None)


def test_run_until_stops_clock_at_bound():
    engine = Engine()
    fired = []
    engine.schedule(10, lambda: fired.append("early"))
    engine.schedule(100, lambda: fired.append("late"))
    engine.run(until=50)
    assert fired == ["early"]
    assert engine.now == 50
    engine.run()
    assert fired == ["early", "late"]
    assert engine.now == 100


def test_run_until_includes_boundary_events():
    engine = Engine()
    fired = []
    engine.schedule(50, lambda: fired.append("boundary"))
    engine.run(until=50)
    assert fired == ["boundary"]


def test_run_on_empty_queue_leaves_clock_at_last_event():
    engine = Engine()
    engine.run(until=42)
    assert engine.now == 0
    engine.schedule(7, lambda: None)
    engine.run(until=42)
    assert engine.now == 7


def test_events_scheduled_during_run_execute():
    engine = Engine()
    fired = []
    engine.schedule(1, lambda: engine.schedule(5, lambda: fired.append(engine.now)))
    engine.run()
    assert fired == [6]


def test_peek_reports_next_event_time():
    engine = Engine()
    assert engine.peek() is None
    engine.schedule(7, lambda: None)
    assert engine.peek() == 7


def test_events_executed_counter():
    engine = Engine()
    for _ in range(5):
        engine.schedule(1, lambda: None)
    engine.run()
    assert engine.events_executed == 5


def test_schedule_call_without_argument():
    engine = Engine()
    fired = []
    engine.schedule_call(3, lambda: fired.append(engine.now))
    engine.run()
    assert fired == [3]


def test_schedule_call_passes_argument():
    engine = Engine()
    fired = []
    engine.schedule_call(2, fired.append, "payload")
    engine.schedule_call(2, fired.append, None)  # None is a real argument
    engine.run()
    assert fired == ["payload", None]


def test_schedule_many_preserves_order_and_shares_argument():
    engine = Engine()
    order = []
    callbacks = [lambda v, lab=label: order.append((lab, v)) for label in "abc"]
    engine.schedule_many(4, callbacks, "x")
    engine.run()
    assert order == [("a", "x"), ("b", "x"), ("c", "x")]


def test_schedule_many_zero_delay_interleaves_with_schedule():
    engine = Engine()
    order = []

    def kickoff():
        engine.schedule_many(0, [lambda: order.append("m1"), lambda: order.append("m2")])
        engine.schedule(0, lambda: order.append("s"))

    engine.schedule(1, kickoff)
    engine.run()
    assert order == ["m1", "m2", "s"]


def test_calendar_horizon_matches_default_engine():
    def trace(engine):
        order = []
        engine.schedule(9, lambda: order.append((engine.now, "far")))
        engine.schedule(1, lambda: engine.schedule(2, lambda: order.append((engine.now, "nested"))))
        for label in ("a", "b"):
            engine.schedule(3, lambda lab=label: order.append((engine.now, lab)))
        engine.schedule(0, lambda: order.append((engine.now, "zero")))
        engine.run()
        return order, engine.now, engine.events_executed

    assert trace(Engine(calendar_horizon=8)) == trace(Engine())


def test_calendar_horizon_peek_and_until():
    engine = Engine(calendar_horizon=16)
    fired = []
    engine.schedule(5, lambda: fired.append("near"))
    engine.schedule(40, lambda: fired.append("beyond-horizon"))
    assert engine.peek() == 5
    engine.run(until=20)
    assert fired == ["near"]
    assert engine.now == 20
    engine.run()
    assert fired == ["near", "beyond-horizon"]
    assert engine.now == 40


def test_ensure_engine_accepts_engine_and_wrapper():
    engine = Engine()
    assert ensure_engine(engine) is engine

    class Holder:
        def __init__(self, eng):
            self.engine = eng

    assert ensure_engine(Holder(engine)) is engine
    with pytest.raises(TypeError):
        ensure_engine(object())
