"""Unit tests for generator processes."""

import pytest

from repro.sim import Engine, Event, Process, Timeout
from repro.sim.engine import SimulationError


def test_process_runs_and_returns_value():
    engine = Engine()

    def worker():
        yield Timeout(engine, 5)
        return "done"

    proc = Process(engine, worker())
    engine.run()
    assert proc.fired
    assert proc.value == "done"
    assert engine.now == 5


def test_yield_expression_receives_event_value():
    engine = Engine()
    seen = []

    def worker():
        got = yield Timeout(engine, 2, value=42)
        seen.append(got)

    Process(engine, worker())
    engine.run()
    assert seen == [42]


def test_yield_none_is_cooperative_yield():
    engine = Engine()
    order = []

    def a():
        order.append("a1")
        yield None
        order.append("a2")

    def b():
        order.append("b1")
        yield None
        order.append("b2")

    Process(engine, a())
    Process(engine, b())
    engine.run()
    assert order == ["a1", "b1", "a2", "b2"]
    assert engine.now == 0


def test_processes_can_join_each_other():
    engine = Engine()

    def child():
        yield Timeout(engine, 7)
        return "child-result"

    results = []

    def parent():
        value = yield Process(engine, child(), name="child")
        results.append((engine.now, value))

    Process(engine, parent(), name="parent")
    engine.run()
    assert results == [(7, "child-result")]


def test_yield_from_subroutine_composes():
    engine = Engine()

    def delay_twice(n):
        yield Timeout(engine, n)
        yield Timeout(engine, n)
        return n * 2

    totals = []

    def main():
        total = yield from delay_twice(4)
        totals.append((engine.now, total))

    Process(engine, main())
    engine.run()
    assert totals == [(8, 8)]


def test_process_waits_on_plain_event():
    engine = Engine()
    gate = Event(engine)
    log = []

    def waiter():
        value = yield gate
        log.append((engine.now, value))

    Process(engine, waiter())
    engine.schedule(30, lambda: gate.fire("open"))
    engine.run()
    assert log == [(30, "open")]


def test_two_processes_waiting_on_same_event():
    engine = Engine()
    gate = Event(engine)
    woken = []

    def waiter(tag):
        yield gate
        woken.append(tag)

    Process(engine, waiter("x"))
    Process(engine, waiter("y"))
    engine.schedule(1, gate.fire)
    engine.run()
    assert sorted(woken) == ["x", "y"]


def test_non_generator_rejected():
    engine = Engine()
    with pytest.raises(SimulationError):
        Process(engine, lambda: None)  # type: ignore[arg-type]


def test_bad_yield_type_raises():
    engine = Engine()

    def worker():
        yield 123  # not an Event

    Process(engine, worker())
    with pytest.raises(SimulationError):
        engine.run()


def test_exception_in_process_propagates():
    engine = Engine()

    def worker():
        yield Timeout(engine, 1)
        raise ValueError("architectural bug")

    Process(engine, worker())
    with pytest.raises(ValueError, match="architectural bug"):
        engine.run()
