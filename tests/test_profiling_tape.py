"""Tests for the TAPE profiler."""

import pytest

from repro import ScalableTCCSystem, SystemConfig
from repro.profiling import TapeProfiler
from repro.workloads import CounterWorkload, PrivateWorkload, StarvationWorkload
from repro.workloads.base import Transaction


class TestUnit:
    def test_empty_profiler_report(self):
        tape = TapeProfiler()
        text = tape.report()
        assert "violations          : 0" in text

    def test_record_abort_aggregates(self):
        tape = TapeProfiler()
        tx = Transaction(1, [("c", 1)], label="hot")
        tape.note_violation_cause(0, line=5, word_mask=1,
                                  committer_tid=3, committer_proc=2)
        tape.record_abort(100, 0, tx, wasted_cycles=500, in_commit_phase=False)
        assert tape.total_violations == 1
        assert tape.total_wasted_cycles == 500
        assert tape.by_line[5] == 1
        assert tape.by_pair[(2, 0)] == 1
        assert tape.by_label["hot"] == 1
        assert tape.records[0].line == 5

    def test_abort_without_cause_is_execution_unknown(self):
        tape = TapeProfiler()
        tx = Transaction(1, [("c", 1)])
        tape.record_abort(1, 0, tx, wasted_cycles=10, in_commit_phase=True)
        assert tape.total_violations == 1
        assert tape.hot_lines() == []  # unknown line (-1) filtered out

    def test_first_cause_wins(self):
        tape = TapeProfiler()
        tape.note_violation_cause(0, 5, 1, 3, 2)
        tape.note_violation_cause(0, 9, 1, 4, 1)  # later cause ignored
        tx = Transaction(1, [("c", 1)])
        tape.record_abort(1, 0, tx, 10, False)
        assert tape.by_line[5] == 1
        assert tape.by_line[9] == 0

    def test_record_cap(self):
        tape = TapeProfiler(max_records=2)
        tx = Transaction(1, [("c", 1)])
        for i in range(5):
            tape.record_abort(i, 0, tx, 1, False)
        assert len(tape.records) == 2
        assert tape.total_violations == 5

    def test_commit_phase_fraction(self):
        tape = TapeProfiler()
        tx = Transaction(1, [("c", 1)])
        tape.record_abort(0, 0, tx, 1, in_commit_phase=True)
        tape.record_abort(1, 0, tx, 1, in_commit_phase=False)
        assert tape.commit_phase_fraction() == 0.5


class TestIntegration:
    def test_conflicting_run_populates_tape(self):
        workload = CounterWorkload(n_counters=1, increments_per_proc=8)
        system = ScalableTCCSystem(SystemConfig(n_processors=8))
        result = system.run(workload, max_cycles=50_000_000)
        tape = system.tape
        assert tape.total_violations == result.total_violations > 0
        assert tape.total_wasted_cycles == sum(
            s.violation_cycles for s in result.proc_stats
        )
        # the single counter line is the hottest conflict object
        hot = tape.hot_lines(top=3)
        assert hot
        assert hot[0][0] == workload.counter_addr(0) // 32
        assert "hottest conflict lines" in tape.report()

    def test_conflict_free_run_has_empty_tape(self):
        system = ScalableTCCSystem(SystemConfig(n_processors=4))
        system.run(PrivateWorkload(tx_per_proc=4), max_cycles=50_000_000)
        assert system.tape.total_violations == 0
        assert system.tape.retentions == []

    def test_starvation_detected_as_retentions(self):
        workload = StarvationWorkload(writer_txs=20)
        system = ScalableTCCSystem(
            SystemConfig(n_processors=8, retention_threshold=2)
        )
        system.run(workload, max_cycles=100_000_000)
        assert len(system.tape.retentions) > 0
        assert "retained (starving)" in system.tape.report()

    def test_committer_victim_pairs_recorded(self):
        workload = CounterWorkload(n_counters=1, increments_per_proc=6)
        system = ScalableTCCSystem(SystemConfig(n_processors=4))
        system.run(workload, max_cycles=50_000_000)
        pairs = [p for p in system.tape.by_pair if p[0] >= 0]
        assert pairs  # at least some violations attributed to a committer
