"""Tests for the TM data-structure workload pack."""

import pytest

from repro import ScalableTCCSystem, SystemConfig
from repro.workloads.tm_patterns import (
    ListSetWorkload,
    MatrixTileWorkload,
    QueueWorkload,
)


def run(workload, n=8, **kwargs):
    system = ScalableTCCSystem(SystemConfig(n_processors=n, **kwargs))
    result = system.run(workload, max_cycles=200_000_000)
    return system, result


class TestListSet:
    def test_runs_and_verifies(self):
        wl = ListSetWorkload(ops_per_proc=8)
        system, result = run(wl)
        assert result.committed_transactions == 8 * 8

    def test_inserts_conflict_with_long_lookups(self):
        """Writers touching early links violate readers' prefixes: the
        list pattern must produce real conflicts under contention."""
        wl = ListSetWorkload(list_length=16, ops_per_proc=12,
                             insert_ratio=0.6, compute_per_node=40)
        system, result = run(wl)
        assert result.total_violations > 0

    def test_lookup_only_list_never_conflicts(self):
        wl = ListSetWorkload(ops_per_proc=10, insert_ratio=0.0)
        system, result = run(wl)
        assert result.total_violations == 0

    def test_validates(self):
        ListSetWorkload().validate(4)


class TestQueue:
    def test_runs_and_verifies(self):
        wl = QueueWorkload(ops_per_proc=8)
        system, result = run(wl)
        assert result.committed_transactions == 8 * 8

    def test_tail_counts_enqueues_exactly(self):
        wl = QueueWorkload(ops_per_proc=10)
        system, result = run(wl, n=8)
        tail_line = wl.tail_addr // 32
        head_line = wl.head_addr // 32
        enqueuers = 4  # even processors of 8
        dequeuers = 4
        assert result.memory_image[tail_line][0] == enqueuers * 10
        assert result.memory_image[head_line][0] == dequeuers * 10

    def test_head_tail_independent_at_word_granularity(self):
        """Head and tail live on different lines: enqueuers and
        dequeuers only conflict within their own end."""
        wl = QueueWorkload(ops_per_proc=6, compute=5)
        system, result = run(wl, n=2)  # one enqueuer, one dequeuer
        assert result.total_violations == 0

    def test_validates(self):
        QueueWorkload().validate(4)


class TestMatrixTiles:
    def test_runs_and_verifies(self):
        wl = MatrixTileWorkload(steps=2)
        system, result = run(wl)
        assert result.committed_transactions == 8 * 2

    def test_halo_reads_create_sharing_but_no_conflicts(self):
        wl = MatrixTileWorkload(steps=3)
        system, result = run(wl)
        # Neighbour halo lines acquire remote sharers...
        working = sum(result.directory_working_sets)
        assert working > 0
        # ...and the commits invalidate the halo readers next step, yet
        # nobody ever violates: readers re-read after the barrier.
        invs = sum(s.invalidations_sent for s in result.directory_stats)
        assert invs > 0

    def test_final_tiles_hold_last_step(self):
        steps = 3
        wl = MatrixTileWorkload(steps=steps, lines_per_tile=4)
        system, result = run(wl, n=4)
        for proc in range(4):
            for line in range(4):
                addr = wl.tile_addr(proc, line)
                value = result.memory_image[addr // 32][0]
                assert value == (steps - 1) * 100 + line

    def test_validates(self):
        MatrixTileWorkload().validate(4)
