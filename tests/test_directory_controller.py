"""Unit tests driving one DirectoryController directly.

The rig puts the directory under test on node 0 of a 4-node mesh;
nodes 1-3 are recorders that capture every message the directory sends
them.  Tests inject protocol messages and assert on the directory's
replies and state transitions.
"""

from collections import defaultdict

import pytest

from repro.core import messages as m
from repro.core.config import SystemConfig
from repro.directory.controller import DirectoryController, ProtocolError
from repro.memory import AddressMap, MainMemory
from repro.network import Interconnect
from repro.sim import Engine


class Rig:
    def __init__(self, **config_kwargs):
        config_kwargs.setdefault("n_processors", 4)
        config_kwargs.setdefault("ordered_network", True)
        self.config = SystemConfig(**config_kwargs)
        self.engine = Engine()
        self.amap = AddressMap(self.config.line_size, self.config.word_size)
        self.network = Interconnect(
            self.engine, 4, ordered=True, link_bytes_per_cycle=None
        )
        self.memory = MainMemory(self.amap)
        self.dir = DirectoryController(
            0, self.engine, self.network, self.memory, self.amap, self.config
        )
        self.received = defaultdict(list)
        self.network.register(0, lambda pkt: self.dir.deliver(pkt.payload))
        for node in (1, 2, 3):
            self.network.register(
                node, lambda pkt, n=node: self.received[n].append(pkt.payload)
            )

    def send(self, src, msg):
        self.network.send(src, 0, msg, msg.payload_bytes, msg.traffic_class)

    def run(self):
        self.engine.run()

    def of_type(self, node, cls):
        return [msg for msg in self.received[node] if isinstance(msg, cls)]


@pytest.fixture
def rig():
    return Rig()


def test_load_serves_memory_and_registers_sharer(rig):
    rig.memory.write_line(7, list(range(8)))
    rig.send(1, m.LoadRequest(requester=1, line=7, seq=1))
    rig.run()
    replies = rig.of_type(1, m.LoadReply)
    assert len(replies) == 1
    assert replies[0].data == list(range(8))
    assert replies[0].seq == 1
    assert 1 in rig.dir.state.entry(7).sharers
    assert rig.dir.stats.loads_served == 1


def test_load_reply_delayed_by_memory_latency(rig):
    rig.send(1, m.LoadRequest(requester=1, line=7, seq=1))
    rig.run()
    # directory latency (10) + memory latency (100) must both be paid
    assert rig.engine.now >= rig.config.memory_latency + rig.config.directory_latency


def test_skip_advances_nstid(rig):
    rig.send(1, m.SkipMsg(tid=1))
    rig.run()
    assert rig.dir.nstid == 2
    assert rig.dir.stats.skips_processed == 1


def test_probe_answered_immediately_when_served(rig):
    rig.send(1, m.ProbeRequest(requester=1, tid=1, writing=True))
    rig.run()
    replies = rig.of_type(1, m.ProbeReply)
    assert len(replies) == 1
    assert replies[0].nstid == 1


def test_probe_deferred_until_nstid_reaches_tid(rig):
    rig.send(1, m.ProbeRequest(requester=1, tid=3, writing=False))
    rig.run()
    assert rig.of_type(1, m.ProbeReply) == []
    rig.send(2, m.SkipMsg(tid=1))
    rig.send(2, m.SkipMsg(tid=2))
    rig.run()
    replies = rig.of_type(1, m.ProbeReply)
    assert len(replies) == 1
    assert replies[0].nstid == 3


def test_mark_sets_state_and_acks(rig):
    rig.send(1, m.MarkMsg(committer=1, tid=1, lines={5: 0b11}))
    rig.run()
    entry = rig.dir.state.entry(5)
    assert entry.marked
    assert entry.marked_words == 0b11
    assert entry.marked_by == 1
    assert len(rig.of_type(1, m.MarkAck)) == 1


def test_mark_for_wrong_tid_is_protocol_error(rig):
    rig.send(1, m.MarkMsg(committer=1, tid=5, lines={5: 1}))
    with pytest.raises(ProtocolError):
        rig.run()


def test_commit_without_sharers_completes_immediately(rig):
    rig.send(1, m.MarkMsg(committer=1, tid=1, lines={5: 0b1}))
    rig.send(1, m.CommitMsg(committer=1, tid=1))
    rig.run()
    entry = rig.dir.state.entry(5)
    assert entry.owner == 1
    assert entry.tid_tag == 1
    assert not entry.marked
    assert rig.dir.nstid == 2
    assert len(rig.of_type(1, m.CommitAck)) == 1
    assert rig.dir.stats.commits_served == 1


def test_commit_invalidates_sharers_and_waits_for_acks(rig):
    # nodes 2 and 3 read line 5 first
    for node in (2, 3):
        rig.send(node, m.LoadRequest(requester=node, line=5, seq=1))
    rig.run()
    rig.send(1, m.LoadRequest(requester=1, line=5, seq=1))
    rig.run()
    rig.send(1, m.MarkMsg(committer=1, tid=1, lines={5: 0b1}))
    rig.send(1, m.CommitMsg(committer=1, tid=1))
    rig.run()
    # invalidations to 2 and 3, none to the committer
    assert len(rig.of_type(2, m.Invalidation)) == 1
    assert len(rig.of_type(3, m.Invalidation)) == 1
    assert rig.of_type(1, m.Invalidation) == []
    # no acks yet: commit incomplete, NSTID unchanged
    assert rig.dir.nstid == 1
    assert rig.of_type(1, m.CommitAck) == []
    rig.send(2, m.InvAck(sharer=2, line=5, tid=1))
    rig.run()
    assert rig.dir.nstid == 1
    rig.send(3, m.InvAck(sharer=3, line=5, tid=1))
    rig.run()
    assert rig.dir.nstid == 2
    assert len(rig.of_type(1, m.CommitAck)) == 1


def test_word_granularity_keeps_invalidated_sharers(rig):
    rig.send(2, m.LoadRequest(requester=2, line=5, seq=1))
    rig.run()
    rig.send(1, m.LoadRequest(requester=1, line=5, seq=1))
    rig.run()
    rig.send(1, m.MarkMsg(committer=1, tid=1, lines={5: 0b1}))
    rig.send(1, m.CommitMsg(committer=1, tid=1))
    rig.run()
    rig.send(2, m.InvAck(sharer=2, line=5, tid=1))
    rig.run()
    assert rig.dir.state.entry(5).sharers == {1, 2}


def test_line_granularity_clears_invalidated_sharers():
    rig = Rig(granularity="line")
    rig.send(2, m.LoadRequest(requester=2, line=5, seq=1))
    rig.run()
    rig.send(1, m.LoadRequest(requester=1, line=5, seq=1))
    rig.run()
    rig.send(1, m.MarkMsg(committer=1, tid=1, lines={5: 0xFF}))
    rig.send(1, m.CommitMsg(committer=1, tid=1))
    rig.run()
    rig.send(2, m.InvAck(sharer=2, line=5, tid=1))
    rig.run()
    assert rig.dir.state.entry(5).sharers == {1}


def test_inv_ack_with_writeback_merges_before_ownership_moves(rig):
    # Node 2 owns line 5 from an earlier commit.
    rig.send(2, m.MarkMsg(committer=2, tid=1, lines={5: 0b1}))
    rig.send(2, m.CommitMsg(committer=2, tid=1))
    rig.run()
    assert rig.dir.state.entry(5).owner == 2
    # Node 1 loads (forwarded), node 2 flushes, node 1 commits a new value.
    rig.send(1, m.LoadRequest(requester=1, line=5, seq=1))
    rig.run()
    assert len(rig.of_type(2, m.FlushRequest)) == 1
    rig.send(2, m.WriteBackMsg(writer=2, line=5, words={0: 42}, tid=1, remove=False))
    rig.run()
    assert rig.memory.read_word(5, 0) == 42
    assert rig.of_type(1, m.LoadReply)[0].data[0] == 42
    rig.send(1, m.MarkMsg(committer=1, tid=2, lines={5: 0b10}))
    rig.send(1, m.CommitMsg(committer=1, tid=2))
    rig.run()
    # Node 2 (previous owner, still sharer) gets the invalidation and
    # rides its surviving word back on the ack.
    assert len(rig.of_type(2, m.Invalidation)) == 1
    rig.send(2, m.InvAck(sharer=2, line=5, tid=2, wb_words={3: 99}, wb_tid=1))
    rig.run()
    assert rig.memory.read_word(5, 3) == 99
    assert rig.dir.state.entry(5).owner == 1


def test_load_to_marked_line_stalls_until_commit(rig):
    rig.send(1, m.MarkMsg(committer=1, tid=1, lines={5: 0b1}))
    rig.run()
    rig.send(2, m.LoadRequest(requester=2, line=5, seq=7))
    rig.run()
    assert rig.of_type(2, m.LoadReply) == []
    assert rig.dir.stats.loads_stalled == 1
    rig.send(1, m.CommitMsg(committer=1, tid=1))
    rig.run()
    # After the commit the stalled load is forwarded to the new owner.
    assert len(rig.of_type(1, m.FlushRequest)) == 1


def test_load_to_marked_line_released_by_abort(rig):
    rig.send(1, m.MarkMsg(committer=1, tid=1, lines={5: 0b1}))
    rig.run()
    rig.send(2, m.LoadRequest(requester=2, line=5, seq=7))
    rig.run()
    rig.send(1, m.AbortMsg(committer=1, tid=1))
    rig.run()
    assert not rig.dir.state.entry(5).marked
    assert len(rig.of_type(2, m.LoadReply)) == 1
    assert rig.dir.nstid == 2  # abort counts as a skip
    assert rig.dir.stats.aborts_served == 1


def test_retaining_abort_clears_marks_but_holds_nstid(rig):
    rig.send(1, m.MarkMsg(committer=1, tid=1, lines={5: 0b1}))
    rig.run()
    rig.send(1, m.AbortMsg(committer=1, tid=1, retain=True))
    rig.run()
    assert not rig.dir.state.entry(5).marked
    assert rig.dir.nstid == 1  # still waiting for TID 1


def test_owned_line_load_forwards_once_for_many_requesters(rig):
    rig.send(2, m.MarkMsg(committer=2, tid=1, lines={5: 0b1}))
    rig.send(2, m.CommitMsg(committer=2, tid=1))
    rig.run()
    rig.send(1, m.LoadRequest(requester=1, line=5, seq=1))
    rig.send(3, m.LoadRequest(requester=3, line=5, seq=1))
    rig.run()
    assert len(rig.of_type(2, m.FlushRequest)) == 1
    assert rig.dir.stats.loads_forwarded == 2
    rig.send(2, m.WriteBackMsg(writer=2, line=5, words={0: 8}, tid=1, remove=False))
    rig.run()
    assert len(rig.of_type(1, m.LoadReply)) == 1
    assert len(rig.of_type(3, m.LoadReply)) == 1


def test_stale_writeback_dropped_by_tid_tag(rig):
    rig.send(2, m.MarkMsg(committer=2, tid=1, lines={5: 0b1}))
    rig.send(2, m.CommitMsg(committer=2, tid=1))
    rig.run()
    rig.send(2, m.SkipMsg(tid=2))  # advance for the next commit
    rig.send(3, m.LoadRequest(requester=3, line=5, seq=1))
    rig.run()
    rig.send(2, m.WriteBackMsg(writer=2, line=5, words={0: 1}, tid=1, remove=False))
    rig.run()
    rig.send(3, m.MarkMsg(committer=3, tid=3, lines={5: 0b1}))
    rig.send(3, m.CommitMsg(committer=3, tid=3))
    rig.run()
    rig.send(2, m.InvAck(sharer=2, line=5, tid=3))
    rig.run()
    assert rig.dir.state.entry(5).owner == 3
    # A write-back tagged with the old TID arrives late: dropped.
    rig.send(2, m.WriteBackMsg(writer=2, line=5, words={0: 666}, tid=1, remove=True))
    rig.run()
    assert rig.memory.read_word(5, 0) != 666
    assert rig.dir.stats.writebacks_dropped == 1


def test_writeback_from_non_owner_dropped(rig):
    rig.send(1, m.WriteBackMsg(writer=1, line=5, words={0: 9}, tid=1, remove=True))
    rig.run()
    assert rig.memory.read_word(5, 0) == 0
    assert rig.dir.stats.writebacks_dropped == 1


def test_commit_from_wrong_tid_is_protocol_error(rig):
    rig.send(1, m.CommitMsg(committer=1, tid=4))
    with pytest.raises(ProtocolError):
        rig.run()


def test_commit_with_no_marks_is_protocol_error(rig):
    rig.send(1, m.CommitMsg(committer=1, tid=1))
    with pytest.raises(ProtocolError):
        rig.run()


def test_skip_vector_buffers_out_of_order_skips(rig):
    for tid in (4, 2, 3):
        rig.send(1, m.SkipMsg(tid=tid))
    rig.run()
    assert rig.dir.nstid == 1
    rig.send(1, m.SkipMsg(tid=1))
    rig.run()
    assert rig.dir.nstid == 5


def test_token_write_updates_memory_and_acks(rig):
    rig.send(1, m.TokenWrite(committer=1, tid=1, lines={5: {0: 11, 2: 22}}))
    rig.run()
    assert rig.memory.read_word(5, 0) == 11
    assert rig.memory.read_word(5, 2) == 22
    assert rig.dir.state.entry(5).tid_tag == 1
    assert len(rig.of_type(1, m.TokenWriteAck)) == 1


def test_occupancy_sample_recorded_per_commit(rig):
    rig.send(1, m.MarkMsg(committer=1, tid=1, lines={5: 0b1}))
    rig.send(1, m.CommitMsg(committer=1, tid=1))
    rig.run()
    assert len(rig.dir.stats.occupancy_samples) == 1
    assert rig.dir.stats.occupancy_samples[0] >= 0


def test_quiescent_check_flags_pending_state(rig):
    rig.send(1, m.ProbeRequest(requester=1, tid=9, writing=False))
    rig.run()
    with pytest.raises(ProtocolError, match="pending probes"):
        rig.dir.quiescent_check()


def test_quiescent_check_passes_when_clean(rig):
    rig.send(1, m.SkipMsg(tid=1))
    rig.run()
    rig.dir.quiescent_check()


# ----------------------------------------------------------------------
# NSTID gap handling and hardened-protocol stale/duplicate paths
# ----------------------------------------------------------------------

@pytest.fixture
def hrig():
    """A rig with the hardened (seq/ack + retry-tolerant) protocol on."""
    return Rig(harden_protocol=True)


def test_probe_waits_across_out_of_order_skip_gap(rig):
    # Skips for 2 and 3 arrive before 1: the probe for TID 4 must stay
    # deferred across the gap and fire only when 1 closes it.
    rig.send(1, m.ProbeRequest(requester=1, tid=4, writing=True))
    rig.send(2, m.SkipMsg(tid=3))
    rig.send(2, m.SkipMsg(tid=2))
    rig.run()
    assert rig.of_type(1, m.ProbeReply) == []
    assert rig.dir.nstid == 1
    rig.send(2, m.SkipMsg(tid=1))
    rig.run()
    replies = rig.of_type(1, m.ProbeReply)
    assert len(replies) == 1
    assert replies[0].nstid == 4


def test_deferred_probes_across_gap_release_in_tid_order(rig):
    rig.send(1, m.ProbeRequest(requester=1, tid=3, writing=False))
    rig.send(2, m.ProbeRequest(requester=2, tid=2, writing=False))
    rig.run()
    rig.send(3, m.SkipMsg(tid=1))
    rig.run()
    # NSTID jumped 1 -> 2: the sharing probe for 2 answers with 2, and
    # the one for 3 is still waiting.
    assert [r.nstid for r in rig.of_type(2, m.ProbeReply)] == [2]
    assert rig.of_type(1, m.ProbeReply) == []
    rig.send(3, m.SkipMsg(tid=2))
    rig.run()
    assert [r.nstid for r in rig.of_type(1, m.ProbeReply)] == [3]


def test_skip_acked_and_duplicate_reacked(hrig):
    hrig.send(1, m.SkipMsg(tid=1, committer=1))
    hrig.run()
    assert len(hrig.of_type(1, m.SkipAck)) == 1
    assert hrig.dir.nstid == 2
    # A retransmitted skip (its ack was lost) must be re-acked so the
    # sender's tracker stops, and must not advance anything.
    hrig.send(1, m.SkipMsg(tid=1, committer=1))
    hrig.run()
    assert len(hrig.of_type(1, m.SkipAck)) == 2
    assert hrig.dir.nstid == 2


def test_duplicate_mark_is_idempotent_and_reacked(hrig):
    mark = m.MarkMsg(committer=1, tid=1, lines={5: 0b11}, attempt=1)
    hrig.send(1, mark)
    hrig.run()
    hrig.send(1, m.MarkMsg(committer=1, tid=1, lines={5: 0b11}, attempt=1))
    hrig.run()
    assert len(hrig.of_type(1, m.MarkAck)) == 2
    assert hrig.dir.state.entry(5).marked_words == 0b11


def test_stale_mark_from_aborted_attempt_dropped(hrig):
    # Attempt 2 aborted (retained); a straggler mark from attempt 1
    # arriving afterwards must not resurrect marks.
    hrig.send(1, m.AbortMsg(committer=1, tid=1, retain=True, attempt=2,
                            want_ack=True))
    hrig.run()
    assert len(hrig.of_type(1, m.AbortAck)) == 1
    hrig.send(1, m.MarkMsg(committer=1, tid=1, lines={5: 0b1}, attempt=1))
    hrig.run()
    assert hrig.of_type(1, m.MarkAck) == []
    assert not hrig.dir.state.entry(5).marked
    # The committer's next attempt marks normally.
    hrig.send(1, m.MarkMsg(committer=1, tid=1, lines={5: 0b1}, attempt=3))
    hrig.run()
    assert len(hrig.of_type(1, m.MarkAck)) == 1
    assert hrig.dir.state.entry(5).marked


def test_commit_for_past_tid_is_reacked_not_replayed(hrig):
    hrig.send(1, m.MarkMsg(committer=1, tid=1, lines={5: 0b1}, attempt=1))
    hrig.send(1, m.CommitMsg(committer=1, tid=1, attempt=1))
    hrig.run()
    assert hrig.dir.nstid == 2
    assert len(hrig.of_type(1, m.CommitAck)) == 1
    # The commit's ack was lost; the retransmitted commit arrives after
    # NSTID moved on.  It must be re-acked, not re-executed.
    hrig.send(1, m.CommitMsg(committer=1, tid=1, attempt=1))
    hrig.run()
    assert len(hrig.of_type(1, m.CommitAck)) == 2
    assert hrig.dir.nstid == 2
    assert hrig.dir.stats.commits_served == 1


def test_abort_for_past_tid_is_reacked(hrig):
    hrig.send(1, m.SkipMsg(tid=1, committer=1))
    hrig.run()
    hrig.send(1, m.AbortMsg(committer=1, tid=1, attempt=1, want_ack=True))
    hrig.run()
    assert len(hrig.of_type(1, m.AbortAck)) == 1
    assert hrig.dir.nstid == 2


def test_duplicate_pending_probe_deduped(hrig):
    hrig.send(1, m.ProbeRequest(requester=1, tid=3, writing=False))
    hrig.send(1, m.ProbeRequest(requester=1, tid=3, writing=False))
    hrig.run()
    hrig.send(2, m.SkipMsg(tid=1, committer=2))
    hrig.send(2, m.SkipMsg(tid=2, committer=2))
    hrig.run()
    assert len(hrig.of_type(1, m.ProbeReply)) == 1


def test_duplicate_inv_ack_dropped(hrig):
    for node in (2,):
        hrig.send(node, m.LoadRequest(requester=node, line=5, seq=1))
    hrig.run()
    hrig.send(1, m.MarkMsg(committer=1, tid=1, lines={5: 0b1}, attempt=1))
    hrig.send(1, m.CommitMsg(committer=1, tid=1, attempt=1))
    hrig.run()
    assert len(hrig.of_type(2, m.Invalidation)) == 1
    hrig.send(2, m.InvAck(sharer=2, line=5, tid=1))
    hrig.run()
    assert len(hrig.of_type(1, m.CommitAck)) == 1
    # The sharer's retransmitted ack lands after the commit finished.
    hrig.send(2, m.InvAck(sharer=2, line=5, tid=1))
    hrig.run()
    assert len(hrig.of_type(1, m.CommitAck)) == 1
    assert hrig.dir.nstid == 2


def test_stale_inv_ack_ride_salvaged_through_writeback_rule(hrig):
    """A duplicated InvAck for a finished commit can still carry the
    owner's only copy of a line; the ack is deduped but the ridden data
    must go through the ordinary write-back acceptance rule."""
    entry = hrig.dir.state.entry(7)
    entry.owner = 1
    entry.tid_tag = 5
    hrig.send(1, m.InvAck(sharer=1, line=7, tid=3, wb_words={0: 99}, wb_tid=5))
    hrig.run()
    assert hrig.memory.read_line(7)[0] == 99
    assert not hrig.dir.state.entry(7).owned
    assert hrig.dir.stats.writebacks_accepted == 1


def test_stale_inv_ack_ride_with_stale_tid_still_dropped(hrig):
    """The salvage path must not bypass the version rule: ridden data
    from a writer that is not the committer of the word's current
    version stays dropped, whatever its tag says."""
    hrig.memory.write_line(7, [1] * 8)
    entry = hrig.dir.state.entry(7)
    entry.owner = 1
    entry.tid_tag = 5
    # Word 0's architectural version: committed at TID 5 by node 2.
    hrig.dir._word_committer[7] = {0: (5, 2)}
    hrig.send(1, m.InvAck(sharer=1, line=7, tid=3, wb_words={0: 99}, wb_tid=4))
    hrig.run()
    assert hrig.memory.read_line(7)[0] == 1
    assert hrig.dir.state.entry(7).owner == 1
    assert hrig.dir.stats.writebacks_dropped == 1


def test_late_writeback_from_words_committer_is_merged(hrig):
    """A flush overtaken by a later commit of the same line must not lose
    the words that later commit did not overwrite: the previous
    committer's words merge into memory word-by-word."""
    hrig.memory.write_line(7, [0] * 8)
    entry = hrig.dir.state.entry(7)
    # Node 2 committed word 6 at TID 1, then node 1 committed word 3 at
    # TID 2 and took ownership before node 2's flush arrived.
    hrig.dir._note_commit_words(7, 0b1000000, 1, 2)
    hrig.dir._note_commit_words(7, 0b0001000, 2, 1)
    entry.owner = 1
    entry.tid_tag = 2
    hrig.send(
        1, m.WriteBackMsg(writer=2, line=7, words={6: 41}, tid=1, remove=False)
    )
    hrig.run()
    assert hrig.memory.read_line(7)[6] == 41
    assert hrig.dir.stats.writebacks_merged == 1
    assert hrig.dir.state.entry(7).owner == 1  # ownership untouched
    assert hrig.dir._awaiting[7] == {3}  # word 3 still rides with node 1


def test_load_of_unowned_line_waits_for_inflight_committed_word(hrig):
    """After ownership is released, a load must not be served from
    memory while a committed word's only copy is still in flight."""
    hrig.memory.write_line(7, [0] * 8)
    # Node 1 committed word 6 at TID 1; its flush has not arrived yet.
    hrig.dir._note_commit_words(7, 0b1000000, 1, 1)
    hrig.send(2, m.LoadRequest(requester=2, line=7, seq=1))
    hrig.run()
    assert hrig.of_type(2, m.LoadReply) == []
    hrig.send(
        1, m.WriteBackMsg(writer=1, line=7, words={6: 17}, tid=1, remove=False)
    )
    hrig.run()
    replies = hrig.of_type(2, m.LoadReply)
    assert len(replies) == 1
    assert replies[0].data[6] == 17
