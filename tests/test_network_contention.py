"""Tests for XY routing and link-level contention."""

import pytest

from repro.network import CLASS_MISS, Interconnect, MeshTopology
from repro.sim import Engine


class TestRoute:
    def test_route_length_equals_hops(self):
        mesh = MeshTopology(16)
        for src in range(16):
            for dst in range(16):
                assert len(mesh.route(src, dst)) == mesh.hops(src, dst)

    def test_route_is_x_first(self):
        mesh = MeshTopology(16)  # 4x4
        # 0 -> 15: X to column 3 (0->1->2->3), then Y down (3->7->11->15)
        assert mesh.route(0, 15) == [(0, 1), (1, 2), (2, 3), (3, 7), (7, 11), (11, 15)]

    def test_route_to_self_is_empty(self):
        assert MeshTopology(4).route(2, 2) == []

    def test_route_links_are_mesh_edges(self):
        mesh = MeshTopology(12)
        for src in range(12):
            for dst in range(12):
                for a, b in mesh.route(src, dst):
                    assert abs(a - b) in (1, mesh.cols)


class TestContention:
    def make(self, **kwargs):
        engine = Engine()
        net = Interconnect(
            engine, 16, ordered=True, link_contention=True,
            link_bytes_per_cycle=8, link_latency=3, router_latency=1,
            **kwargs,
        )
        return engine, net

    def test_single_packet_latency_similar_to_uncontended(self):
        engine, net = self.make()
        times = []
        net.register(3, lambda pkt: times.append(engine.now))
        net.send(0, 3, None, 8, CLASS_MISS)
        engine.run()
        baseline = net.transit_cycles(0, 3, 16)
        assert times[0] <= baseline + 6  # same ballpark

    def test_shared_link_serializes_packets(self):
        engine, net = self.make()
        times = []
        net.register(1, lambda pkt: times.append(engine.now))
        # Ten large packets over the same 0->1 link back to back, from the
        # same source but with egress bandwidth effectively removed by
        # comparing against the uncontended network.
        for _ in range(6):
            net.send(0, 1, None, 56, CLASS_MISS)
        engine.run()
        deltas = [b - a for a, b in zip(times, times[1:])]
        assert all(d >= 8 for d in deltas)  # 64B / 8B-per-cycle links

    def test_disjoint_paths_do_not_interact(self):
        engine, net = self.make()
        times = {}
        net.register(1, lambda pkt: times.setdefault("right", engine.now))
        net.register(4, lambda pkt: times.setdefault("down", engine.now))
        net.send(0, 1, None, 8, CLASS_MISS)   # uses link (0,1)
        net.send(0, 4, None, 8, CLASS_MISS)   # uses link (0,4)
        engine.run()
        # Only the shared egress port delays the second packet; the links
        # themselves are independent, so both arrive promptly.
        assert abs(times["right"] - times["down"]) < 10

    def test_cross_traffic_through_shared_link_delays(self):
        engine, net = self.make()
        arrival = {}
        net.register(3, lambda pkt: arrival.setdefault(pkt.packet_id, engine.now))
        net.register(7, lambda pkt: arrival.setdefault(pkt.packet_id, engine.now))
        # Saturate the (2,3) link with traffic from node 2, then send a
        # packet from node 0 whose XY route also crosses (2,3).
        for _ in range(8):
            net.send(2, 3, None, 56, CLASS_MISS)
        victim = net.send(0, 7, None, 8, CLASS_MISS)  # route 0-1-2-3-7
        engine.run()
        quiet_engine = Engine()
        quiet = Interconnect(quiet_engine, 16, ordered=True,
                             link_contention=True, link_bytes_per_cycle=8,
                             link_latency=3, router_latency=1)
        quiet_times = []
        quiet.register(7, lambda pkt: quiet_times.append(quiet_engine.now))
        quiet.send(0, 7, None, 8, CLASS_MISS)
        quiet_engine.run()
        assert arrival[victim.packet_id] > quiet_times[0]


class TestSystemIntegration:
    def test_link_contention_config_runs_and_verifies(self):
        from repro import ScalableTCCSystem, SystemConfig
        from repro.workloads import CounterWorkload

        system = ScalableTCCSystem(
            SystemConfig(n_processors=8, link_contention=True)
        )
        result = system.run(
            CounterWorkload(increments_per_proc=6), max_cycles=50_000_000
        )
        assert result.committed_transactions == 48

    def test_contention_slows_hotspot_traffic(self):
        """Everyone hammers lines homed at node 0: the links around the
        hotspot saturate, so the contended model must cost cycles."""
        from repro import ScalableTCCSystem, SystemConfig, Transaction
        from repro.workloads.base import Workload

        class Hotspot(Workload):
            def schedule(self, proc, n_procs):
                for i in range(6):
                    # distinct lines, same home page (first touched by P0)
                    addr = (proc * 6 + i) * 32
                    yield Transaction(proc * 100 + i, [("c", 2), ("ld", addr)])

        cycles = {}
        for contention in (False, True):
            system = ScalableTCCSystem(
                SystemConfig(n_processors=16, link_contention=contention,
                             ordered_network=True)
            )
            result = system.run(Hotspot(), max_cycles=500_000_000)
            cycles[contention] = result.cycles
        # At system level the hotspot's *egress port* and directory
        # serialization dominate (modelled in both configurations), so
        # fabric contention is a second-order refinement: it must not
        # make anything meaningfully faster, and both runs verify.
        assert cycles[True] >= cycles[False] * 0.95
