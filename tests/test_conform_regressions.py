"""Regression loader: replay every checked-in conformance counterexample.

Any file under ``tests/fixtures/conform/`` — shrunk reproducers of
once-failing cases, plus hand-pinned sentinel programs — is replayed
through both the full simulator and the reference oracle on every run.
A case that ever regresses fails here with the file path and the
original recorded failure for context.
"""

import pathlib

import pytest

from repro.conform import (
    iter_counterexamples,
    load_counterexample,
    run_conform_case,
)

FIXTURES = pathlib.Path(__file__).parent / "fixtures" / "conform"


def fixture_paths():
    return sorted(FIXTURES.glob("*.json"))


def test_fixture_directory_is_populated():
    # The loader must never silently become a no-op because the
    # directory moved or the glob broke.
    assert fixture_paths(), f"no counterexample files under {FIXTURES}"


def test_iter_counterexamples_covers_every_file():
    listed = [path for path, _, _ in iter_counterexamples(FIXTURES)]
    assert listed == fixture_paths()


@pytest.mark.parametrize("path", fixture_paths(),
                         ids=lambda p: p.stem)
def test_replay_conforms(path):
    case, recorded = load_counterexample(path)
    case.program.validate()
    result = run_conform_case(case)
    assert result.ok, (
        f"{path.name}: {case.describe()} diverged again — "
        f"{result.outcome} ({result.detail}); originally recorded "
        f"failure: {recorded.get('outcome')} ({recorded.get('detail')})"
    )
    assert result.committed == case.program.tx_count
