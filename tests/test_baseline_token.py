"""Focused tests for the token (small-scale TCC) baseline engine."""

import pytest

from repro import ScalableTCCSystem, SystemConfig, Transaction
from repro.baseline import TokenCommitEngine
from repro.workloads.base import Workload


class Scripted(Workload):
    def __init__(self, schedules):
        self.schedules = schedules

    def schedule(self, proc, n_procs):
        return iter(self.schedules[proc])


def run(schedules, **kwargs):
    kwargs.setdefault("n_processors", len(schedules))
    kwargs.setdefault("commit_backend", "token")
    system = ScalableTCCSystem(SystemConfig(**kwargs))
    result = system.run(Scripted(schedules), max_cycles=50_000_000)
    return system, result


def test_token_engine_selected_by_config():
    system = ScalableTCCSystem(
        SystemConfig(n_processors=2, commit_backend="token")
    )
    assert all(
        isinstance(p.commit_engine, TokenCommitEngine) for p in system.processors
    )


def test_commit_data_reaches_memory_immediately():
    """Token commits are write-through: memory holds the data right after
    commit; no lines stay dirty, no owners exist."""
    schedules = [[Transaction(1, [("c", 10), ("st", 0, 5)])]]
    system, result = run(schedules)
    assert result.memory_image[0][0] == 5
    for directory in system.directories:
        for entry in directory.state.entries():
            assert not entry.owned


def test_broadcast_invalidation_reaches_every_other_processor():
    """Every processor snoops every commit — including ones that never
    touched the data (no directory filtering on the bus)."""
    from repro.core.messages import TokenInv

    seen = []
    schedules = [
        [Transaction(1, [("c", 10), ("st", 0, 1)])],
        [Transaction(2, [("c", 2000)])],
        [Transaction(3, [("c", 2000)])],
    ]
    system = ScalableTCCSystem(
        SystemConfig(n_processors=3, commit_backend="token")
    )
    originals = [p.commit_engine._on_token_inv for p in system.processors]

    def spy(engine, orig):
        def inner(msg):
            seen.append(engine.proc.node)
            orig(msg)
        return inner

    for proc, orig in zip(system.processors, originals):
        proc.commit_engine._on_token_inv = spy(proc.commit_engine, orig)
    system.run(Scripted(schedules), max_cycles=50_000_000)
    assert sorted(seen) == [1, 2]


def test_conflicting_rmw_exact_under_token():
    schedules = [
        [Transaction(p * 10 + i, [("c", 5), ("add", 0, 1)]) for i in range(6)]
        for p in range(4)
    ]
    system, result = run(schedules)
    assert result.memory_image[0][0] == 24


def test_read_only_transaction_holds_token_briefly():
    schedules = [
        [Transaction(1, [("c", 10), ("ld", 0)])],
        [Transaction(2, [("c", 10), ("ld", 4096)])],
    ]
    system, result = run(schedules)
    assert result.committed_transactions == 2
    assert system.token.total_acquisitions == 2


def test_token_never_left_held():
    schedules = [
        [Transaction(p * 10 + i, [("c", 5), ("add", 0, 1)]) for i in range(4)]
        for p in range(4)
    ]
    system, result = run(schedules)
    assert not system.token.held
    assert system.token.queue_length == 0


def test_violated_waiter_releases_token_without_committing():
    """A processor violated while waiting for the token must release it
    immediately and retry (the check-after-acquire path)."""
    schedules = [
        [Transaction(p * 10 + i, [("c", 2), ("add", 0, 1)]) for i in range(8)]
        for p in range(6)
    ]
    system, result = run(schedules)
    assert result.memory_image[0][0] == 48
    # acquisitions >= commits, with the surplus being aborted holds
    assert system.token.total_acquisitions >= result.committed_transactions


def test_token_mode_unordered_network():
    schedules = [
        [Transaction(p * 10 + i, [("c", 2), ("add", 0, 1)]) for i in range(6)]
        for p in range(4)
    ]
    system, result = run(schedules, ordered_network=False, network_jitter=5)
    assert result.memory_image[0][0] == 24
