"""Tests for the machine-wide invariant checker and paranoid mode."""

import pytest

from repro import ScalableTCCSystem, SystemConfig
from repro.verify import InvariantViolation, check_system_invariants
from repro.workloads import CounterWorkload, PrivateWorkload


def fresh_system(**kwargs):
    kwargs.setdefault("n_processors", 4)
    return ScalableTCCSystem(SystemConfig(**kwargs))


def test_clean_system_passes():
    system = fresh_system()
    check_system_invariants(system)


def test_post_run_system_passes():
    system = fresh_system()
    system.run(CounterWorkload(increments_per_proc=5), max_cycles=50_000_000)
    check_system_invariants(system)


def test_detects_sm_on_dirty_line():
    system = fresh_system()
    hier = system.processors[0].hierarchy
    hier.fill(0, [0] * 8, dirty=True)
    hier.l2.lookup(0).sm_mask = 1  # corrupt: dirty line with SM
    with pytest.raises(InvariantViolation, match="I3"):
        check_system_invariants(system, strict_sharers=False)


def test_detects_sr_on_invalid_words():
    system = fresh_system()
    hier = system.processors[0].hierarchy
    hier.fill(0, [0] * 8)
    entry = hier.l2.lookup(0)
    entry.valid_mask = 0b1
    entry.sr_mask = 0b10  # SR on an invalid word
    with pytest.raises(InvariantViolation, match="I3"):
        check_system_invariants(system, strict_sharers=False)


def test_detects_owner_not_in_sharers():
    system = fresh_system()
    entry = system.directories[0].state.entry(5)
    entry.owner = 2  # owner without sharer membership
    with pytest.raises(InvariantViolation, match="I1"):
        check_system_invariants(system, strict_sharers=False)


def test_detects_mark_tid_mismatch():
    system = fresh_system()
    entry = system.directories[0].state.entry(5)
    entry.mark(7, 0b1)  # directory is serving TID 1, mark claims 7
    with pytest.raises(InvariantViolation, match="I4"):
        check_system_invariants(system, strict_sharers=False)


def test_detects_nstid_overrun():
    system = fresh_system()
    system.directories[0].skipvec._nstid = 99
    with pytest.raises(InvariantViolation, match="I5"):
        check_system_invariants(system, strict_sharers=False)


def test_detects_uncovered_sharer():
    system = fresh_system()
    hier = system.processors[3].hierarchy
    hier.fill(42, [0] * 8)  # cached but never registered at the home
    with pytest.raises(InvariantViolation, match="I2"):
        check_system_invariants(system, strict_sharers=True)
    # non-strict mode skips I2
    check_system_invariants(system, strict_sharers=False)


def test_paranoid_mode_runs_clean():
    system = fresh_system(paranoid=True, paranoid_interval=200)
    result = system.run(
        CounterWorkload(increments_per_proc=5), max_cycles=50_000_000
    )
    assert result.committed_transactions == 20


def test_paranoid_mode_matches_normal_results():
    results = {}
    for paranoid in (False, True):
        system = fresh_system(paranoid=paranoid, ordered_network=True)
        results[paranoid] = system.run(
            PrivateWorkload(tx_per_proc=4), max_cycles=50_000_000
        )
    assert results[True].cycles == results[False].cycles
    assert results[True].memory_image == results[False].memory_image
