"""Unit tests for the serial-replay checker itself.

The checker guards the whole project; these tests prove it actually
catches the bug classes it claims to (stale reads, lost updates, bad
final state) and accepts correct histories.
"""

import pytest

from repro.memory import AddressMap
from repro.verify import CommitRecord, ReplayMismatch, SerializabilityChecker
from repro.workloads import Transaction


@pytest.fixture
def checker():
    return SerializabilityChecker(AddressMap())


def record(tid, tx_id, ops, reads, proc=0):
    return CommitRecord(tid=tid, tx=Transaction(tx_id, ops), proc=proc, reads=reads)


def test_empty_log_passes(checker):
    checker.check([], {})


def test_correct_serial_history_passes(checker):
    log = [
        record(1, 1, [("st", 0, 5)], []),
        record(2, 2, [("ld", 0)], [(0, 0, 5)]),
        record(3, 3, [("add", 0, 1)], [(0, 0, 5)]),
    ]
    checker.check(log, {0: [6, 0, 0, 0, 0, 0, 0, 0]})


def test_stale_read_detected(checker):
    log = [
        record(1, 1, [("st", 0, 5)], []),
        record(2, 2, [("ld", 0)], [(0, 0, 0)]),  # observed pre-commit value
    ]
    with pytest.raises(ReplayMismatch, match="observed 0"):
        checker.replay(log)


def test_lost_update_detected(checker):
    # two increments, but the second observed the pre-first value
    log = [
        record(1, 1, [("add", 0, 1)], [(0, 0, 0)]),
        record(2, 2, [("add", 0, 1)], [(0, 0, 0)]),  # lost update!
    ]
    with pytest.raises(ReplayMismatch):
        checker.replay(log)


def test_wrong_final_memory_detected(checker):
    log = [record(1, 1, [("st", 0, 5)], [])]
    with pytest.raises(ReplayMismatch, match="final memory"):
        checker.check(log, {0: [4, 0, 0, 0, 0, 0, 0, 0]})


def test_missing_final_line_treated_as_zero(checker):
    log = [record(1, 1, [("st", 0, 0)], [])]
    checker.check(log, {})  # value 0 matches implicit zero memory


def test_duplicate_tids_detected(checker):
    log = [
        record(3, 1, [("st", 0, 1)], []),
        record(3, 2, [("st", 4, 1)], []),
    ]
    with pytest.raises(ReplayMismatch, match="duplicate TID"):
        checker.replay(log)


def test_reads_on_wrong_address_detected(checker):
    log = [record(1, 1, [("ld", 0)], [(9, 9, 0)])]
    with pytest.raises(ReplayMismatch, match="recorded"):
        checker.replay(log)


def test_too_few_recorded_reads_detected(checker):
    log = [record(1, 1, [("ld", 0), ("ld", 4)], [(0, 0, 0)])]
    with pytest.raises(ReplayMismatch, match="fewer recorded reads"):
        checker.replay(log)


def test_tid_order_not_log_order_governs(checker):
    # Log appended out of TID order (commit completion order can differ);
    # the replay must sort by TID.
    log = [
        record(2, 2, [("ld", 0)], [(0, 0, 5)]),
        record(1, 1, [("st", 0, 5)], []),
    ]
    checker.check(log, {0: [5, 0, 0, 0, 0, 0, 0, 0]})


def test_rmw_chain_value_tracking(checker):
    log = [
        record(tid, tid, [("add", 0, 2)], [(0, 0, (tid - 1) * 2)])
        for tid in range(1, 6)
    ]
    checker.check(log, {0: [10, 0, 0, 0, 0, 0, 0, 0]})


class TestAdversarialRealLog:
    """The checker against a *real* machine's commit log, deliberately
    corrupted after the fact.

    The unit tests above feed the checker hand-built histories; these
    prove it also rejects tampering with the genuine artifact — the log
    a full contended simulation produced — so a protocol bug that
    corrupts the log in-flight cannot slip past.  A fresh run is
    corrupted per test (CommitRecord is mutable; no sharing).
    """

    def run_real(self):
        import random

        from repro import ScalableTCCSystem, SystemConfig
        from repro.workloads.base import Workload

        class HotCounters(Workload):
            def schedule(self, proc, n_procs):
                rng = random.Random(proc)
                txs = []
                for i in range(4):
                    ops = [("add", 0, 1), ("ld", 4)]
                    if rng.random() < 0.5:
                        ops.append(("st", 4, proc * 10 + i))
                    txs.append(Transaction(proc * 100 + i, ops))
                return iter(txs)

        system = ScalableTCCSystem(SystemConfig(
            n_processors=4, seed=17, network_jitter=4,
            ordered_network=False,
        ))
        # verify=False: we corrupt and re-check by hand below.
        result = system.run(HotCounters(), max_cycles=50_000_000,
                            verify=False)
        checker = SerializabilityChecker(AddressMap())
        checker.check(result.commit_log, result.memory_image)  # sanity
        return result, SerializabilityChecker(AddressMap())

    def test_pristine_log_passes(self):
        result, checker = self.run_real()
        checker.check(result.commit_log, result.memory_image)

    def test_corrupted_read_value_rejected(self):
        result, checker = self.run_real()
        rec = next(r for r in result.commit_log if r.reads)
        line, word, value = rec.reads[0]
        rec.reads[0] = (line, word, value + 1)
        with pytest.raises(ReplayMismatch):
            checker.check(result.commit_log, result.memory_image)

    def test_swapped_tids_rejected(self):
        # Two same-word RMW transactions with exchanged TIDs replay in
        # the wrong serial order, so their observed values cannot fit.
        result, checker = self.run_real()
        rmws = [r for r in result.commit_log
                if any(op[0] == "add" for op in r.tx.ops)]
        rmws.sort(key=lambda r: r.tid)
        a, b = rmws[0], rmws[-1]
        a.tid, b.tid = b.tid, a.tid
        with pytest.raises(ReplayMismatch):
            checker.check(result.commit_log, result.memory_image)

    def test_dropped_commit_rejected(self):
        # Remove one increment: the surviving reads and the final
        # memory image no longer tell one consistent story.
        result, checker = self.run_real()
        rmws = sorted((r for r in result.commit_log
                       if any(op[0] == "add" for op in r.tx.ops)),
                      key=lambda r: r.tid)
        result.commit_log.remove(rmws[0])
        with pytest.raises(ReplayMismatch):
            checker.check(result.commit_log, result.memory_image)

    def test_tampered_final_memory_rejected(self):
        result, checker = self.run_real()
        result.memory_image[0][0] += 1
        with pytest.raises(ReplayMismatch, match="final memory"):
            checker.check(result.commit_log, result.memory_image)
