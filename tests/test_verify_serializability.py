"""Unit tests for the serial-replay checker itself.

The checker guards the whole project; these tests prove it actually
catches the bug classes it claims to (stale reads, lost updates, bad
final state) and accepts correct histories.
"""

import pytest

from repro.memory import AddressMap
from repro.verify import CommitRecord, ReplayMismatch, SerializabilityChecker
from repro.workloads import Transaction


@pytest.fixture
def checker():
    return SerializabilityChecker(AddressMap())


def record(tid, tx_id, ops, reads, proc=0):
    return CommitRecord(tid=tid, tx=Transaction(tx_id, ops), proc=proc, reads=reads)


def test_empty_log_passes(checker):
    checker.check([], {})


def test_correct_serial_history_passes(checker):
    log = [
        record(1, 1, [("st", 0, 5)], []),
        record(2, 2, [("ld", 0)], [(0, 0, 5)]),
        record(3, 3, [("add", 0, 1)], [(0, 0, 5)]),
    ]
    checker.check(log, {0: [6, 0, 0, 0, 0, 0, 0, 0]})


def test_stale_read_detected(checker):
    log = [
        record(1, 1, [("st", 0, 5)], []),
        record(2, 2, [("ld", 0)], [(0, 0, 0)]),  # observed pre-commit value
    ]
    with pytest.raises(ReplayMismatch, match="observed 0"):
        checker.replay(log)


def test_lost_update_detected(checker):
    # two increments, but the second observed the pre-first value
    log = [
        record(1, 1, [("add", 0, 1)], [(0, 0, 0)]),
        record(2, 2, [("add", 0, 1)], [(0, 0, 0)]),  # lost update!
    ]
    with pytest.raises(ReplayMismatch):
        checker.replay(log)


def test_wrong_final_memory_detected(checker):
    log = [record(1, 1, [("st", 0, 5)], [])]
    with pytest.raises(ReplayMismatch, match="final memory"):
        checker.check(log, {0: [4, 0, 0, 0, 0, 0, 0, 0]})


def test_missing_final_line_treated_as_zero(checker):
    log = [record(1, 1, [("st", 0, 0)], [])]
    checker.check(log, {})  # value 0 matches implicit zero memory


def test_duplicate_tids_detected(checker):
    log = [
        record(3, 1, [("st", 0, 1)], []),
        record(3, 2, [("st", 4, 1)], []),
    ]
    with pytest.raises(ReplayMismatch, match="duplicate TID"):
        checker.replay(log)


def test_reads_on_wrong_address_detected(checker):
    log = [record(1, 1, [("ld", 0)], [(9, 9, 0)])]
    with pytest.raises(ReplayMismatch, match="recorded"):
        checker.replay(log)


def test_too_few_recorded_reads_detected(checker):
    log = [record(1, 1, [("ld", 0), ("ld", 4)], [(0, 0, 0)])]
    with pytest.raises(ReplayMismatch, match="fewer recorded reads"):
        checker.replay(log)


def test_tid_order_not_log_order_governs(checker):
    # Log appended out of TID order (commit completion order can differ);
    # the replay must sort by TID.
    log = [
        record(2, 2, [("ld", 0)], [(0, 0, 5)]),
        record(1, 1, [("st", 0, 5)], []),
    ]
    checker.check(log, {0: [5, 0, 0, 0, 0, 0, 0, 0]})


def test_rmw_chain_value_tracking(checker):
    log = [
        record(tid, tid, [("add", 0, 2)], [(0, 0, (tid - 1) * 2)])
        for tid in range(1, 6)
    ]
    checker.check(log, {0: [10, 0, 0, 0, 0, 0, 0, 0]})
