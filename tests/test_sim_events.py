"""Unit tests for events, timeouts, and combinators."""

import pytest

from repro.sim import AllOf, AnyOf, Engine, Event, Timeout
from repro.sim.engine import SimulationError
from repro.sim.events import maybe_timeout


def test_event_fire_wakes_subscriber_with_value():
    engine = Engine()
    event = Event(engine)
    seen = []
    event.subscribe(seen.append)
    event.fire("payload")
    engine.run()
    assert seen == ["payload"]


def test_subscribe_after_fire_still_delivers():
    engine = Engine()
    event = Event(engine)
    event.fire(17)
    seen = []
    event.subscribe(seen.append)
    engine.run()
    assert seen == [17]


def test_double_fire_rejected():
    engine = Engine()
    event = Event(engine)
    event.fire()
    with pytest.raises(SimulationError):
        event.fire()


def test_value_before_fire_rejected():
    event = Event(Engine())
    with pytest.raises(SimulationError):
        _ = event.value


def test_fire_in_delays_delivery():
    engine = Engine()
    event = Event(engine)
    times = []
    event.subscribe(lambda _v: times.append(engine.now))
    event.fire_in(25, "later")
    engine.run()
    assert times == [25]
    assert event.value == "later"


def test_timeout_fires_after_delay():
    engine = Engine()
    timeout = Timeout(engine, 8, value="t")
    engine.run()
    assert timeout.fired
    assert timeout.value == "t"
    assert engine.now == 8


def test_all_of_waits_for_slowest():
    engine = Engine()
    fast = Timeout(engine, 1, value="fast")
    slow = Timeout(engine, 10, value="slow")
    combo = AllOf(engine, [fast, slow])
    times = []
    combo.subscribe(lambda _v: times.append(engine.now))
    engine.run()
    assert combo.value == ["fast", "slow"]
    assert times == [10]


def test_all_of_empty_fires_immediately():
    engine = Engine()
    combo = AllOf(engine, [])
    engine.run()
    assert combo.fired
    assert combo.value == []
    assert engine.now == 0


def test_any_of_fires_on_first():
    engine = Engine()
    fast = Timeout(engine, 2, value="fast")
    slow = Timeout(engine, 9, value="slow")
    combo = AnyOf(engine, [fast, slow])
    times = []
    combo.subscribe(lambda _v: times.append(engine.now))
    engine.run()
    assert combo.value == (0, "fast")
    assert times == [2]


def test_any_of_ignores_later_events():
    engine = Engine()
    a = Timeout(engine, 3)
    b = Timeout(engine, 3)
    combo = AnyOf(engine, [a, b])
    engine.run()
    assert combo.fired  # second fire at the same cycle must not raise


def test_maybe_timeout_zero_is_none():
    engine = Engine()
    assert maybe_timeout(engine, 0) is None
    t = maybe_timeout(engine, 3)
    assert isinstance(t, Timeout)
