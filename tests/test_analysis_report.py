"""Tests for the markdown report generator and commit-phase breakdown."""

import pytest

from repro import ScalableTCCSystem, SystemConfig
from repro.analysis import render_report
from repro.workloads import CounterWorkload, PrivateWorkload


@pytest.fixture(scope="module")
def run():
    system = ScalableTCCSystem(SystemConfig(n_processors=4))
    result = system.run(
        CounterWorkload(n_counters=2, increments_per_proc=6),
        max_cycles=50_000_000,
    )
    return system, result


def test_report_contains_all_sections(run):
    system, result = run
    text = render_report("counters", result, system.tape.report())
    for heading in (
        "# Simulation report — counters",
        "## Machine",
        "## Outcome",
        "## Execution-time breakdown",
        "## Commit-phase breakdown",
        "## Transactional characteristics",
        "## Remote traffic",
        "## TAPE profile",
    ):
        assert heading in text


def test_report_numbers_are_rendered(run):
    system, result = run
    text = render_report("counters", result)
    assert f"{result.cycles:,}" in text
    assert str(result.committed_transactions) in text


def test_report_without_tape_omits_section(run):
    _, result = run
    text = render_report("counters", result)
    assert "TAPE profile" not in text


def test_commit_phase_cycles_populated(run):
    _, result = run
    tid = sum(s.commit_tid_cycles for s in result.proc_stats)
    probe = sum(s.commit_probe_cycles for s in result.proc_stats)
    ack = sum(s.commit_ack_cycles for s in result.proc_stats)
    assert tid > 0      # every commit fetches a TID over the network
    assert probe > 0    # and probes directories
    assert ack > 0      # and waits for commit acks (write transactions)


def test_commit_phase_breakdown_accessor(run):
    _, result = run
    breakdown = result.proc_stats[0].commit_phase_breakdown()
    assert set(breakdown) == {"tid", "probe", "ack"}


def test_commit_phases_sum_close_to_commit_cycles(run):
    # The three phases partition the successful-commit wait (aborted
    # commit attempts land in violation time instead).
    _, result = run
    for stats in result.proc_stats:
        phases = sum(stats.commit_phase_breakdown().values())
        assert phases <= stats.commit_cycles + stats.violation_cycles


def test_cli_report_flag(tmp_path, capsys):
    from repro.cli import main

    out = tmp_path / "report.md"
    code = main([
        "run", "barnes", "-n", "2", "--scale", "0.05",
        "--report", str(out),
    ])
    assert code == 0
    text = out.read_text()
    assert "# Simulation report — barnes" in text
    assert "## Remote traffic" in text
