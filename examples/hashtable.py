#!/usr/bin/env python3
"""Concurrent transactional hash table.

Every processor inserts keys into a shared chained hash table laid out
in flat memory: a bucket directory holds per-bucket element counts, and
each bucket has a fixed array of slots.  An insert is one transaction:

    read  count[bucket]          (data-dependent!)
    write slot[bucket][count]
    write count[bucket] + 1

Two processors inserting into the same bucket race on the count word —
a lost update would overwrite a slot or leave a gap.  With TCC the
read-modify-write is atomic by construction; the example validates the
final table exhaustively.

Run:  python examples/hashtable.py
"""

import random

from repro import ScalableTCCSystem, SystemConfig, Transaction
from repro.workloads.base import Workload

N_BUCKETS = 16
SLOTS_PER_BUCKET = 64
WORD = 4
BASE = 1 << 25


def count_addr(bucket: int) -> int:
    # one count word per cache line, all counts on one page
    return BASE + bucket * 32


def slot_addr(bucket: int, index: int) -> int:
    # bucket arrays on their own pages
    return BASE + 4096 * (1 + bucket) + index * WORD


class HashTableWorkload(Workload):
    def __init__(self, inserts_per_proc: int = 16, seed: int = 7) -> None:
        self.inserts_per_proc = inserts_per_proc
        self.seed = seed

    def schedule(self, proc: int, n_procs: int):
        rng = random.Random(self.seed * 911 + proc)
        for i in range(self.inserts_per_proc):
            key = rng.randrange(1, 1 << 20)
            bucket = key % N_BUCKETS
            # The count read feeds the slot address, which a trace-based
            # transaction cannot express directly; instead we reserve the
            # slot with an atomic counter increment and write the key to
            # the slot we (transactionally) observed.  To keep the whole
            # insert atomic we put both ops in one transaction and let the
            # replay checker validate every observed count.
            ops = [
                ("c", 30),
                ("add", count_addr(bucket), 1),
            ]
            # the slot write is made unique per (proc, i) so a lost update
            # is visible as a missing key
            ops.append(("st", slot_addr(bucket, (proc * self.inserts_per_proc + i) % SLOTS_PER_BUCKET), key))
            yield Transaction(proc * 10_000 + i, ops, label=f"insert b{bucket}")


def main() -> None:
    n_procs = 8
    inserts = 16
    workload = HashTableWorkload(inserts_per_proc=inserts)
    system = ScalableTCCSystem(SystemConfig(n_processors=n_procs))
    result = system.run(workload)

    # Validate: per-bucket counts must sum to the number of inserts.
    total = 0
    print("bucket  count")
    for bucket in range(N_BUCKETS):
        line = count_addr(bucket) // 32
        count = result.memory_image.get(line, [0] * 8)[0]
        total += count
        print(f"{bucket:6d}  {count:5d}")
    expected = n_procs * inserts
    print(f"\ninserted elements: {total} (expected {expected})")
    assert total == expected, "lost update — atomicity broken!"

    print(f"conflicts retried: {result.total_violations}")
    print(f"cycles           : {result.cycles:,}")
    print("\nEvery racing increment was atomic; counts are exact.")


if __name__ == "__main__":
    main()
