#!/usr/bin/env python3
"""Bank transfers: transactional atomicity on a concurrent workload.

Each processor repeatedly transfers money between random accounts with a
read-modify-write transaction (debit one account, credit another).  With
locks this workload needs careful ordering to avoid deadlock; with TCC
every transfer is simply a transaction — the protocol's lazy conflict
detection aborts and retries the losers, and the committer-wins rule
(lowest TID first) guarantees the system never livelocks.

At the end the example asserts conservation of money: the sum over all
accounts must equal the initial total, no matter how the transfers raced.

Run:  python examples/bank.py
"""

import random

from repro import ScalableTCCSystem, SystemConfig, Transaction
from repro.workloads.base import Workload

N_ACCOUNTS = 16
INITIAL_BALANCE = 1000
LINE_SIZE = 32
PAGE = 4096


def account_addr(index: int) -> int:
    """One account per cache line, four accounts per page — adjacent
    accounts share a directory but not a line (no false sharing at word
    granularity anyway)."""
    return (1 << 21) + index * LINE_SIZE


class BankWorkload(Workload):
    """Processor 0 first funds every account, then everyone transfers."""

    def __init__(self, transfers_per_proc: int = 20, seed: int = 2026) -> None:
        self.transfers_per_proc = transfers_per_proc
        self.seed = seed

    def schedule(self, proc: int, n_procs: int):
        from repro.workloads.base import BARRIER

        if proc == 0:
            ops = [("c", 10)]
            for account in range(N_ACCOUNTS):
                ops.append(("st", account_addr(account), INITIAL_BALANCE))
            yield Transaction(1, ops, label="fund-accounts")
        yield BARRIER

        rng = random.Random(self.seed * 257 + proc)
        for i in range(self.transfers_per_proc):
            src, dst = rng.sample(range(N_ACCOUNTS), 2)
            amount = rng.randint(1, 50)
            ops = [
                ("c", 40),                              # validate, fees, etc.
                ("add", account_addr(src), -amount),    # debit
                ("add", account_addr(dst), +amount),    # credit
            ]
            yield Transaction(
                100 + proc * 1000 + i, ops, label=f"transfer {src}->{dst}"
            )


def main() -> None:
    n_processors = 8
    workload = BankWorkload(transfers_per_proc=20)
    system = ScalableTCCSystem(SystemConfig(n_processors=n_processors))
    result = system.run(workload)

    balances = [
        result.memory_image.get(account_addr(i) // LINE_SIZE, [0] * 8)[0]
        for i in range(N_ACCOUNTS)
    ]
    total = sum(balances)
    expected = N_ACCOUNTS * INITIAL_BALANCE

    print(f"{n_processors} processors, "
          f"{result.committed_transactions - 1} transfers committed, "
          f"{result.total_violations} conflicts retried")
    print()
    print("Final balances:")
    for i, balance in enumerate(balances):
        print(f"  account {i:2d}: {balance:5d}")
    print()
    print(f"Total money: {total} (expected {expected})")
    assert total == expected, "conservation violated — transactional bug!"
    print("Conservation holds: every racing transfer was atomic.")


if __name__ == "__main__":
    main()
