#!/usr/bin/env python3
"""Scaling study: Figure 7 in miniature.

Runs a chosen application at 1/8/16/32 processors with fixed total work
and prints the paper-style stacked breakdown plus speedups.  Use the app
name as an argument to explore the suite, e.g.:

    python examples/scaling_study.py specjbb2000
    python examples/scaling_study.py volrend       # commit-bound
    python examples/scaling_study.py cluster_ga    # violation-bound
"""

import sys

from repro import APP_PROFILES, SystemConfig
from repro.analysis import format_breakdown_figure, run_scaling
from repro.stats import speedup


def main() -> None:
    app = sys.argv[1] if len(sys.argv) > 1 else "barnes"
    if app not in APP_PROFILES:
        raise SystemExit(f"unknown app {app!r}; choose from {sorted(APP_PROFILES)}")

    counts = (1, 8, 16, 32)
    print(f"Running {app} at {counts} processors (fixed total work)...")
    results = run_scaling(app, counts, scale=0.5)

    series = {}
    speedups = {}
    for n, result in results.items():
        label = f"{app}@{n}"
        series[label] = result.breakdown_fractions()
        speedups[label] = speedup(results[1], result)

    print()
    print(format_breakdown_figure(
        f"Execution-time breakdown, {app} (cf. Figure 7)", series, speedups
    ))
    print()
    for n, result in results.items():
        print(f"  {n:>2} CPUs: {result.cycles:>12,} cycles, "
              f"{result.total_violations:>4} violations, "
              f"{result.committed_transactions} commits")


if __name__ == "__main__":
    main()
