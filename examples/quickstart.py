#!/usr/bin/env python3
"""Quickstart: simulate the Scalable TCC machine on one application.

Builds a 16-processor directory-based machine with the paper's Table 2
parameters, runs a scaled-down `barnes` workload, and prints the
execution-time breakdown (the five components of Figures 6/7) plus the
speedup over a single processor.

Run:  python examples/quickstart.py
"""

from repro import ScalableTCCSystem, SystemConfig, app_workload
from repro.stats import speedup


def main() -> None:
    app = "barnes"
    scale = 0.25

    print("Simulated machine (Table 2):")
    print(SystemConfig(n_processors=16).describe())
    print()

    results = {}
    for n_processors in (1, 16):
        config = SystemConfig(n_processors=n_processors)
        system = ScalableTCCSystem(config)
        # Every run is checked for serializability by serial replay.
        results[n_processors] = system.run(app_workload(app, scale=scale))

    base, parallel = results[1], results[16]
    print(f"{app} @ 1 CPU : {base.cycles:>10,} cycles")
    print(f"{app} @ 16 CPUs: {parallel.cycles:>10,} cycles "
          f"(speedup {speedup(base, parallel):.1f}x)")
    print()

    print("Execution-time breakdown @ 16 CPUs:")
    for component, fraction in parallel.breakdown_fractions().items():
        bar = "#" * round(fraction * 50)
        print(f"  {component:<10} {fraction * 100:5.1f}%  {bar}")
    print()

    print(f"Committed transactions : {parallel.committed_transactions}")
    print(f"Violations (re-runs)   : {parallel.total_violations}")
    print(f"Remote traffic         : "
          f"{sum(parallel.bytes_per_instruction().values()):.3f} bytes/instruction")


if __name__ == "__main__":
    main()
