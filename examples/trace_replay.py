#!/usr/bin/env python3
"""Trace capture and replay: bring-your-own-workload support.

Materializes a generated workload into a JSON trace file, then replays
the *identical* transaction schedule on two different machines — the
scalable directory protocol and the small-scale token baseline — for an
apples-to-apples architecture comparison.

Run:  python examples/trace_replay.py
"""

import tempfile
from pathlib import Path

from repro import ScalableTCCSystem, SystemConfig, app_workload
from repro.workloads.trace import TraceWorkload, save_trace

N_PROCS = 16
APP = "water_nsquared"


def main() -> None:
    with tempfile.TemporaryDirectory() as tmp:
        trace_path = Path(tmp) / f"{APP}.json"

        workload = app_workload(APP, scale=0.25)
        save_trace(str(trace_path), workload, n_procs=N_PROCS, name=APP)
        size_kb = trace_path.stat().st_size / 1024
        print(f"captured {APP} @ {N_PROCS} procs -> "
              f"{trace_path.name} ({size_kb:.0f} KB)")

        results = {}
        for backend in ("scalable", "token"):
            replay = TraceWorkload.load(str(trace_path))
            system = ScalableTCCSystem(
                SystemConfig(n_processors=N_PROCS, commit_backend=backend)
            )
            results[backend] = system.run(replay)

        print(f"\nidentical schedule, two machines:")
        for backend, result in results.items():
            breakdown = result.breakdown_fractions()
            print(f"  {backend:9s}: {result.cycles:>10,} cycles "
                  f"(commit {breakdown['commit'] * 100:.1f}%, "
                  f"violations {result.total_violations})")
        ratio = results["token"].cycles / results["scalable"].cycles
        print(f"\ntoken/scalable: {ratio:.2f}x at {N_PROCS} processors")


if __name__ == "__main__":
    main()
