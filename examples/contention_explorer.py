#!/usr/bin/env python3
"""Contention explorer: livelock-freedom under extreme conflict.

All processors hammer read-modify-writes on a progressively smaller pool
of shared counters.  Eager-conflict-detection TM systems livelock here
without a user-level contention manager; Scalable TCC's committer-wins
rule (the lowest TID always commits) plus TID retention for starving
transactions guarantees forward progress — every run finishes with the
exact expected counter total, however violent the conflict rate.

Run:  python examples/contention_explorer.py
"""

from repro import ScalableTCCSystem, SystemConfig
from repro.workloads import CounterWorkload

N_PROCESSORS = 8
INCREMENTS = 12


def main() -> None:
    print(f"{N_PROCESSORS} processors x {INCREMENTS} increments, "
          f"shrinking counter pool:\n")
    print(f"{'counters':>9} {'violations':>11} {'retentions':>11} "
          f"{'cycles':>10}  outcome")
    for n_counters in (16, 8, 4, 2, 1):
        workload = CounterWorkload(
            n_counters=n_counters, increments_per_proc=INCREMENTS
        )
        system = ScalableTCCSystem(SystemConfig(n_processors=N_PROCESSORS))
        result = system.run(workload)

        total = sum(
            result.memory_image.get(workload.counter_addr(i) // 32, [0] * 8)[0]
            for i in range(n_counters)
        )
        expected = workload.expected_total(N_PROCESSORS)
        retentions = sum(s.tid_retentions for s in result.proc_stats)
        outcome = "exact" if total == expected else "WRONG"
        print(f"{n_counters:>9} {result.total_violations:>11} "
              f"{retentions:>11} {result.cycles:>10,}  "
              f"{total}/{expected} {outcome}")
        assert total == expected
    print("\nEvery configuration completed with the exact total: "
          "non-blocking and livelock-free, no contention manager needed.")


if __name__ == "__main__":
    main()
