#!/usr/bin/env python3
"""Link-latency sensitivity: Figure 8 in miniature.

Sweeps the mesh cycles-per-hop at a fixed processor count for a
communication-heavy application (equake) and a compute-local one
(specjbb2000).  The paper's result: equake/volrend degrade by ~50% going
to 8 cycles/hop while SPECjbb2000 and swim barely notice.

Run:  python examples/latency_sensitivity.py
"""

from repro.analysis import run_latency_sweep

LATENCIES = (1, 3, 6, 8)
N_PROCESSORS = 32


def main() -> None:
    for app in ("equake", "specjbb2000"):
        print(f"{app} @ {N_PROCESSORS} CPUs:")
        results = run_latency_sweep(
            app, LATENCIES, n_processors=N_PROCESSORS, scale=0.5
        )
        base = results[LATENCIES[0]].cycles
        for latency, result in results.items():
            slowdown = result.cycles / base
            bar = "#" * round(slowdown * 30)
            print(f"  {latency} cycles/hop: {result.cycles:>12,} cycles "
                  f"({slowdown:4.2f}x)  {bar}")
        print()


if __name__ == "__main__":
    main()
